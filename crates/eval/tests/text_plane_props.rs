//! Property tests for the interned text plane (PR 8).
//!
//! The store interns every text-shaped payload (text, attribute, comment,
//! PI content) into a shared pool and hands out borrowed / `Arc`-shared
//! views instead of freshly rendered `String`s.  These tests pin the
//! observable semantics to what the pre-interning representation gave:
//!
//! * every string-value accessor (`string_value`, `string_value_ref`,
//!   `untyped_value`) agrees with an independently computed reference
//!   concatenation, byte for byte;
//! * `Untyped` atoms backed by shared pool handles behave exactly like
//!   plain `String` atoms under comparison, general equality and EBV —
//!   including the numeric coercion path for numeric-looking payloads;
//! * serialize → reparse over interned payloads is a fixpoint, and a
//!   reparsed store answers string-shaped queries identically.
//!
//! Randomness is a deterministic splitmix64 stream — failures reproduce.

use xqy_eval::Evaluator;
use xqy_xdm::serialize::serialize_node;
use xqy_xdm::{AtomicValue, Axis, Item, NodeId, NodeKind, NodeStore, NodeTest};

/// Deterministic splitmix64 stream; good enough to drive test-case shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, choices: &[&'a str]) -> &'a str {
        choices[self.below(choices.len())]
    }
}

/// Payload vocabulary: numeric-looking strings (exercising the untyped →
/// double coercion), markup-significant characters (exercising escaping),
/// whitespace shapes, and repeats (exercising pool sharing).
const TEXTS: &[&str] = &[
    "10",
    "3.5",
    "-2",
    "0",
    "NaN-ish",
    "alpha",
    "beta",
    "alpha",
    "v1",
    "a &amp; b",
    "x &lt; y",
    "  spaced  ",
];
const ATTR_VALUES: &[&str] = &["v1", "v2", "10", "3.5", "", "a &amp; b", "alpha"];
const ELEMENT_NAMES: &[&str] = &["a", "b", "c"];

fn gen_element(rng: &mut Rng, depth: usize, out: &mut String) {
    let name = rng.pick(ELEMENT_NAMES);
    out.push('<');
    out.push_str(name);
    if rng.below(2) == 0 {
        out.push_str(" k=\"");
        out.push_str(rng.pick(ATTR_VALUES));
        out.push('"');
    }
    if rng.below(4) == 0 {
        out.push_str(" m=\"");
        out.push_str(rng.pick(ATTR_VALUES));
        out.push('"');
    }
    let children = if depth >= 3 { 0 } else { rng.below(4) };
    if children == 0 && rng.below(2) == 0 {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for _ in 0..children {
        match rng.below(6) {
            0 | 1 => gen_element(rng, depth + 1, out),
            2 | 3 => out.push_str(rng.pick(TEXTS)),
            4 => {
                out.push_str("<!-- ");
                out.push_str(rng.pick(&["note", "10", "alpha"]));
                out.push_str(" -->");
            }
            _ => {
                out.push_str("<?pi ");
                out.push_str(rng.pick(&["data", "10"]));
                out.push_str("?>");
            }
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

fn gen_doc(rng: &mut Rng) -> String {
    let mut out = String::new();
    gen_element(rng, 0, &mut out);
    out
}

/// The string value computed the slow, obviously-correct way: leaves give
/// their payload, containers the concatenation of descendant *text* nodes.
fn reference_string_value(store: &NodeStore, node: NodeId) -> String {
    fn texts(store: &NodeStore, node: NodeId, out: &mut String) {
        for child in store.children(node) {
            match store.kind(child) {
                NodeKind::Text(t) => out.push_str(store.resolve_text(*t)),
                NodeKind::Element(_) => texts(store, child, out),
                _ => {}
            }
        }
    }
    match store.kind(node) {
        NodeKind::Attribute(_, v)
        | NodeKind::Text(v)
        | NodeKind::Comment(v)
        | NodeKind::ProcessingInstruction(_, v) => store.resolve_text(*v).to_string(),
        NodeKind::Element(_) | NodeKind::Document => {
            let mut out = String::new();
            texts(store, node, &mut out);
            out
        }
    }
}

/// Every node of `doc`'s tree, attributes included.
fn all_nodes(store: &NodeStore, root: NodeId) -> Vec<NodeId> {
    let mut nodes = store.axis_nodes(root, Axis::DescendantOrSelf, &NodeTest::AnyNode);
    let elements: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| matches!(store.kind(n), NodeKind::Element(_)))
        .collect();
    for e in elements {
        nodes.extend(store.axis_nodes(e, Axis::Attribute, &NodeTest::Attribute(None)));
    }
    nodes
}

#[test]
fn interned_string_values_match_reference_concatenation() {
    let mut rng = Rng(0x5eed);
    for _ in 0..40 {
        let xml = gen_doc(&mut rng);
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let docnode = store.document_node(doc).unwrap();
        for node in all_nodes(&store, docnode) {
            let expect = reference_string_value(&store, node);
            let rendered = store.string_value(node);
            assert_eq!(rendered, expect, "string_value diverged in {xml}");
            let view = store.string_value_ref(node);
            assert_eq!(view.as_str(), expect, "string_value_ref diverged");
            assert_eq!(view.len(), expect.len());
            assert_eq!(format!("{view}"), expect, "Display diverged");
            let untyped = store.untyped_value(node);
            assert_eq!(untyped.as_str(), expect, "untyped_value diverged");
        }
    }
}

#[test]
fn untyped_atoms_are_indistinguishable_from_string_atoms() {
    let mut rng = Rng(0xca11ab1e);
    for _ in 0..40 {
        let xml = gen_doc(&mut rng);
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let docnode = store.document_node(doc).unwrap();
        let nodes = all_nodes(&store, docnode);
        for &node in &nodes {
            let untyped = AtomicValue::Untyped(store.untyped_value(node));
            let string = AtomicValue::String(store.string_value(node));
            assert_eq!(untyped.string_value(), string.string_value());
            assert_eq!(untyped.as_str(), string.as_str());
            assert_eq!(untyped.effective_boolean(), string.effective_boolean());
            // to_double is NaN for non-numeric payloads; compare bitwise
            // through the NaN case.
            assert_eq!(
                untyped.to_double().to_bits(),
                string.to_double().to_bits(),
                "numeric view diverged for {:?}",
                untyped.as_str()
            );
            // Untyped coerces numerically against numeric operands — same
            // outcome whether the payload is pool-shared or owned.
            for operand in [AtomicValue::Integer(10), AtomicValue::Double(3.5)] {
                assert_eq!(untyped.compare(&operand), string.compare(&operand));
                assert_eq!(untyped.general_eq(&operand), string.general_eq(&operand));
            }
            // And another random node's value as the other operand.
            let other = nodes[rng.below(nodes.len())];
            let other_untyped = AtomicValue::Untyped(store.untyped_value(other));
            let other_string = AtomicValue::String(store.string_value(other));
            assert_eq!(
                untyped.compare(&other_untyped),
                string.compare(&other_string)
            );
            assert_eq!(
                untyped.general_eq(&other_untyped),
                string.general_eq(&other_string)
            );
        }
    }
}

#[test]
fn serialize_reparse_roundtrip_over_interned_payloads() {
    let mut rng = Rng(0x0dd5eed);
    for _ in 0..40 {
        let xml = gen_doc(&mut rng);
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let docnode = store.document_node(doc).unwrap();
        let once = serialize_node(&store, docnode);

        let mut store2 = NodeStore::new();
        let doc2 = store2.parse_document(&once).unwrap();
        let docnode2 = store2.document_node(doc2).unwrap();
        let twice = serialize_node(&store2, docnode2);
        assert_eq!(once, twice, "serialize → reparse not a fixpoint for {xml}");

        // The reparsed tree has fresh identities and its own pool, but the
        // same shape and string values node for node.
        let a = all_nodes(&store, docnode);
        let b = all_nodes(&store2, docnode2);
        assert_eq!(a.len(), b.len());
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(store.string_value(x), store2.string_value(y));
        }
    }
}

#[test]
fn reparsed_store_answers_string_queries_identically() {
    const QUERIES: &[&str] = &[
        "string(doc('g.xml'))",
        "count(doc('g.xml')//a[@k = 'v1'])",
        "count(doc('g.xml')//*[@k])",
        "doc('g.xml')//b = '10'",
        "doc('g.xml')//b = 10",
        "count(doc('g.xml')//a[. = .//text()])",
        "string-length(string(doc('g.xml')))",
    ];

    fn rendered_answers(xml: &str) -> Vec<String> {
        let mut store = NodeStore::new();
        store.parse_document_with_uri("g.xml", xml).unwrap();
        let mut evaluator = Evaluator::new(&mut store);
        QUERIES
            .iter()
            .map(|q| {
                let result = evaluator.eval_query_str(q).unwrap();
                result
                    .items()
                    .iter()
                    .map(|item| match item {
                        Item::Atomic(a) => a.string_value(),
                        Item::Node(_) => unreachable!("queries return atomics"),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    }

    let mut rng = Rng(0xf00d);
    for _ in 0..15 {
        let xml = gen_doc(&mut rng);
        let original = rendered_answers(&xml);

        // Round-trip the document through serialize → reparse and re-ask.
        let mut store = NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let docnode = store.document_node(doc).unwrap();
        let roundtripped = serialize_node(&store, docnode);
        assert_eq!(original, rendered_answers(&roundtripped), "for {xml}");
    }
}
