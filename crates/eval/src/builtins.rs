//! The built-in function library.
//!
//! Coverage follows what the paper's queries and the LiXQuery fragment
//! need: cardinality and boolean functions, node/value accessors, string
//! functions, numeric aggregates, sequence manipulation, document access
//! (`fn:doc`), ID lookup (`fn:id`) and the Formal-Semantics helper
//! `fs:ddo` (distinct document order).

use xqy_xdm::{ddo, AtomicValue, Item, NodeKind, Sequence};

use crate::compare::effective_boolean_value;
use crate::context::Focus;
use crate::error::EvalError;
use crate::evaluator::Evaluator;
use crate::Result;

/// Names of every supported built-in (without namespace prefixes).
pub const BUILTIN_NAMES: &[&str] = &[
    "count",
    "empty",
    "exists",
    "not",
    "boolean",
    "true",
    "false",
    "position",
    "last",
    "data",
    "string",
    "number",
    "string-length",
    "normalize-space",
    "concat",
    "contains",
    "starts-with",
    "ends-with",
    "substring",
    "substring-before",
    "substring-after",
    "string-join",
    "upper-case",
    "lower-case",
    "name",
    "local-name",
    "node-name",
    "root",
    "doc",
    "id",
    "idref",
    "distinct-values",
    "deep-equal",
    "sum",
    "min",
    "max",
    "avg",
    "abs",
    "floor",
    "ceiling",
    "round",
    "reverse",
    "subsequence",
    "index-of",
    "insert-before",
    "remove",
    "exactly-one",
    "zero-or-one",
    "one-or-more",
    "ddo",
    "distinct-doc-order",
    "integer",
    "double",
    "decimal",
];

/// Is `name` (already prefix-stripped) a built-in function?
pub fn is_builtin(name: &str) -> bool {
    BUILTIN_NAMES.contains(&name)
}

/// Invoke a built-in function on already-evaluated argument sequences.
pub fn call_builtin(
    eval: &mut Evaluator<'_>,
    name: &str,
    args: &[Sequence],
    focus: Option<&Focus>,
) -> Result<Sequence> {
    match (name, args.len()) {
        ("count", 1) => Ok(Sequence::singleton(Item::integer(args[0].len() as i64))),
        ("empty", 1) => Ok(Sequence::singleton(Item::boolean(args[0].is_empty()))),
        ("exists", 1) => Ok(Sequence::singleton(Item::boolean(!args[0].is_empty()))),
        ("not", 1) => Ok(Sequence::singleton(Item::boolean(
            !effective_boolean_value(&args[0])?,
        ))),
        ("boolean", 1) => Ok(Sequence::singleton(Item::boolean(effective_boolean_value(
            &args[0],
        )?))),
        ("true", 0) => Ok(Sequence::singleton(Item::boolean(true))),
        ("false", 0) => Ok(Sequence::singleton(Item::boolean(false))),
        ("position", 0) => focus
            .map(|f| Sequence::singleton(Item::integer(f.position as i64)))
            .ok_or(EvalError::MissingContextItem),
        ("last", 0) => focus
            .map(|f| Sequence::singleton(Item::integer(f.size as i64)))
            .ok_or(EvalError::MissingContextItem),
        ("data", 1) => Ok(eval
            .atomize(&args[0])
            .into_iter()
            .map(Item::Atomic)
            .collect()),
        ("string", 0) => {
            let focus = focus.ok_or(EvalError::MissingContextItem)?;
            Ok(Sequence::singleton(Item::string(
                eval.item_string(&focus.item),
            )))
        }
        ("string", 1) => {
            if args[0].is_empty() {
                return Ok(Sequence::singleton(Item::string("")));
            }
            Ok(Sequence::singleton(Item::string(
                eval.item_string(&args[0].items()[0]),
            )))
        }
        ("number", 1) => {
            let atoms = eval.atomize(&args[0]);
            let value = match atoms.first() {
                Some(a) => a.to_double(),
                None => f64::NAN,
            };
            Ok(Sequence::singleton(Item::double(value)))
        }
        ("integer" | "decimal", 1) => {
            let atoms = eval.atomize(&args[0]);
            match atoms.first() {
                Some(a) => Ok(Sequence::singleton(Item::integer(a.to_integer()?))),
                None => Ok(Sequence::empty()),
            }
        }
        ("double", 1) => {
            let atoms = eval.atomize(&args[0]);
            match atoms.first() {
                Some(a) => Ok(Sequence::singleton(Item::double(a.to_double()))),
                None => Ok(Sequence::empty()),
            }
        }
        ("string-length", 1) => {
            let s = args[0]
                .items()
                .first()
                .map(|i| eval.item_string(i))
                .unwrap_or_default();
            Ok(Sequence::singleton(Item::integer(s.chars().count() as i64)))
        }
        ("normalize-space", 1) => {
            let s = args[0]
                .items()
                .first()
                .map(|i| eval.item_string(i))
                .unwrap_or_default();
            Ok(Sequence::singleton(Item::string(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            )))
        }
        ("concat", _) if args.len() >= 2 => {
            let mut out = String::new();
            for a in args {
                if let Some(item) = a.items().first() {
                    out.push_str(&eval.item_string(item));
                }
            }
            Ok(Sequence::singleton(Item::string(out)))
        }
        ("contains", 2) => {
            let hay = string_arg(eval, &args[0]);
            let needle = string_arg(eval, &args[1]);
            Ok(Sequence::singleton(Item::boolean(hay.contains(&needle))))
        }
        ("starts-with", 2) => {
            let hay = string_arg(eval, &args[0]);
            let needle = string_arg(eval, &args[1]);
            Ok(Sequence::singleton(Item::boolean(hay.starts_with(&needle))))
        }
        ("ends-with", 2) => {
            let hay = string_arg(eval, &args[0]);
            let needle = string_arg(eval, &args[1]);
            Ok(Sequence::singleton(Item::boolean(hay.ends_with(&needle))))
        }
        ("substring", 2 | 3) => {
            let s: Vec<char> = string_arg(eval, &args[0]).chars().collect();
            let start = numeric_arg(eval, &args[1])?.round() as i64;
            let len = if args.len() == 3 {
                numeric_arg(eval, &args[2])?.round() as i64
            } else {
                s.len() as i64
            };
            let begin = (start - 1).max(0) as usize;
            let end = ((start - 1 + len).max(0) as usize).min(s.len());
            let out: String = if begin < end {
                s[begin..end].iter().collect()
            } else {
                String::new()
            };
            Ok(Sequence::singleton(Item::string(out)))
        }
        ("substring-before", 2) => {
            let hay = string_arg(eval, &args[0]);
            let needle = string_arg(eval, &args[1]);
            let out = hay.split_once(&needle).map(|(a, _)| a).unwrap_or("");
            Ok(Sequence::singleton(Item::string(out)))
        }
        ("substring-after", 2) => {
            let hay = string_arg(eval, &args[0]);
            let needle = string_arg(eval, &args[1]);
            let out = hay.split_once(&needle).map(|(_, b)| b).unwrap_or("");
            Ok(Sequence::singleton(Item::string(out)))
        }
        ("string-join", 2) => {
            let sep = string_arg(eval, &args[1]);
            let parts: Vec<String> = args[0].iter().map(|i| eval.item_string(i)).collect();
            Ok(Sequence::singleton(Item::string(parts.join(&sep))))
        }
        ("upper-case", 1) => Ok(Sequence::singleton(Item::string(
            string_arg(eval, &args[0]).to_uppercase(),
        ))),
        ("lower-case", 1) => Ok(Sequence::singleton(Item::string(
            string_arg(eval, &args[0]).to_lowercase(),
        ))),
        ("name" | "local-name" | "node-name", 0 | 1) => {
            let item = if args.is_empty() {
                focus
                    .map(|f| f.item.clone())
                    .ok_or(EvalError::MissingContextItem)?
            } else if args[0].is_empty() {
                return Ok(Sequence::singleton(Item::string("")));
            } else {
                args[0].items()[0].clone()
            };
            let name = match item.as_node() {
                Some(n) => match eval.store.kind(n) {
                    NodeKind::Element(q) | NodeKind::Attribute(q, _) => {
                        if name == "local-name" {
                            q.local.clone()
                        } else {
                            q.to_string()
                        }
                    }
                    NodeKind::ProcessingInstruction(t, _) => {
                        eval.store.resolve_text(*t).to_string()
                    }
                    _ => String::new(),
                },
                None => {
                    return Err(EvalError::Type(format!(
                        "{name}() requires a node argument"
                    )))
                }
            };
            Ok(Sequence::singleton(Item::string(name)))
        }
        ("root", 0 | 1) => {
            let item = if args.is_empty() {
                focus
                    .map(|f| f.item.clone())
                    .ok_or(EvalError::MissingContextItem)?
            } else if args[0].is_empty() {
                return Ok(Sequence::empty());
            } else {
                args[0].items()[0].clone()
            };
            match item.as_node() {
                Some(n) => Ok(Sequence::from_nodes(vec![eval.store.tree_root(n)])),
                None => Err(EvalError::Type("root() requires a node argument".into())),
            }
        }
        ("doc", 1) => {
            let uri = string_arg(eval, &args[0]);
            match eval.store.doc(&uri) {
                Some(doc) => {
                    let node = eval
                        .store
                        .document_node(doc)
                        .ok_or_else(|| EvalError::DocumentNotFound(uri.clone()))?;
                    Ok(Sequence::from_nodes(vec![node]))
                }
                None => Err(EvalError::DocumentNotFound(uri)),
            }
        }
        ("id" | "idref", 1 | 2) => {
            // id(values) uses the context node's document; id(values, node)
            // uses the supplied node's document.
            let anchor =
                if args.len() == 2 {
                    args[1].nodes().first().copied().ok_or_else(|| {
                        EvalError::Type("id(): second argument must be a node".into())
                    })?
                } else {
                    focus
                        .and_then(|f| f.item.as_node())
                        .ok_or(EvalError::MissingContextItem)?
                };
            let values = eval.atomize(&args[0]);
            let nodes = eval.lookup_ids(anchor, &values);
            Ok(Sequence::from_nodes(nodes))
        }
        ("distinct-values", 1) => {
            let atoms = eval.atomize(&args[0]);
            let mut seen: Vec<AtomicValue> = Vec::new();
            for a in atoms {
                if !seen.iter().any(|s| s.general_eq(&a)) {
                    seen.push(a);
                }
            }
            Ok(seen.into_iter().map(Item::Atomic).collect())
        }
        ("deep-equal", 2) => {
            let equal = deep_equal(eval, &args[0], &args[1]);
            Ok(Sequence::singleton(Item::boolean(equal)))
        }
        ("sum", 1) => {
            let atoms = eval.atomize(&args[0]);
            if atoms.is_empty() {
                return Ok(Sequence::singleton(Item::integer(0)));
            }
            aggregate(&atoms, |acc, v| acc + v, 0.0)
        }
        ("avg", 1) => {
            let atoms = eval.atomize(&args[0]);
            if atoms.is_empty() {
                return Ok(Sequence::empty());
            }
            let sum: f64 = atoms.iter().map(|a| a.to_double()).sum();
            Ok(Sequence::singleton(Item::double(sum / atoms.len() as f64)))
        }
        ("min" | "max", 1) => {
            let atoms = eval.atomize(&args[0]);
            if atoms.is_empty() {
                return Ok(Sequence::empty());
            }
            let mut best = atoms[0].to_double();
            for a in &atoms[1..] {
                let v = a.to_double();
                if (name == "min" && v < best) || (name == "max" && v > best) {
                    best = v;
                }
            }
            if atoms.iter().all(|a| matches!(a, AtomicValue::Integer(_))) {
                Ok(Sequence::singleton(Item::integer(best as i64)))
            } else {
                Ok(Sequence::singleton(Item::double(best)))
            }
        }
        ("abs", 1) => numeric_unary(eval, &args[0], f64::abs),
        ("floor", 1) => numeric_unary(eval, &args[0], f64::floor),
        ("ceiling", 1) => numeric_unary(eval, &args[0], f64::ceil),
        ("round", 1) => numeric_unary(eval, &args[0], f64::round),
        ("reverse", 1) => {
            let mut items: Vec<Item> = args[0].items().to_vec();
            items.reverse();
            Ok(Sequence::from_items(items))
        }
        ("subsequence", 2 | 3) => {
            let start = numeric_arg(eval, &args[1])?.round() as i64;
            let len = if args.len() == 3 {
                numeric_arg(eval, &args[2])?.round() as i64
            } else {
                i64::MAX
            };
            let items: Vec<Item> = args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = *i as i64 + 1;
                    pos >= start && (len == i64::MAX || pos < start + len)
                })
                .map(|(_, item)| item.clone())
                .collect();
            Ok(Sequence::from_items(items))
        }
        ("index-of", 2) => {
            let atoms = eval.atomize(&args[0]);
            let needle = eval
                .atomize(&args[1])
                .into_iter()
                .next()
                .ok_or_else(|| EvalError::Type("index-of(): empty search value".into()))?;
            Ok(atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| a.general_eq(&needle))
                .map(|(i, _)| Item::integer(i as i64 + 1))
                .collect())
        }
        ("insert-before", 3) => {
            let pos = numeric_arg(eval, &args[1])?.round() as usize;
            let mut items: Vec<Item> = args[0].items().to_vec();
            let at = pos.saturating_sub(1).min(items.len());
            let mut out: Vec<Item> = items.drain(..at).collect();
            out.extend(args[2].items().to_vec());
            out.extend(items);
            Ok(Sequence::from_items(out))
        }
        ("remove", 2) => {
            let pos = numeric_arg(eval, &args[1])?.round() as usize;
            Ok(args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| i + 1 != pos)
                .map(|(_, item)| item.clone())
                .collect())
        }
        ("exactly-one", 1) => {
            if args[0].len() == 1 {
                Ok(args[0].clone())
            } else {
                Err(EvalError::Type(format!(
                    "exactly-one(): sequence has {} items",
                    args[0].len()
                )))
            }
        }
        ("zero-or-one", 1) => {
            if args[0].len() <= 1 {
                Ok(args[0].clone())
            } else {
                Err(EvalError::Type("zero-or-one(): more than one item".into()))
            }
        }
        ("one-or-more", 1) => {
            if !args[0].is_empty() {
                Ok(args[0].clone())
            } else {
                Err(EvalError::Type("one-or-more(): empty sequence".into()))
            }
        }
        ("ddo" | "distinct-doc-order", 1) => {
            if !args[0].all_nodes() {
                return Err(EvalError::Type("ddo(): argument must be nodes".into()));
            }
            let ordered = ddo(&eval.store, &args[0].nodes());
            Ok(Sequence::from_nodes(ordered))
        }
        _ => Err(EvalError::UndefinedFunction {
            name: name.to_string(),
            arity: args.len(),
        }),
    }
}

fn string_arg(eval: &Evaluator<'_>, seq: &Sequence) -> String {
    seq.items()
        .first()
        .map(|i| eval.item_string(i))
        .unwrap_or_default()
}

fn numeric_arg(eval: &Evaluator<'_>, seq: &Sequence) -> Result<f64> {
    let atoms = eval.atomize(seq);
    atoms
        .first()
        .map(|a| a.to_double())
        .ok_or_else(|| EvalError::Type("expected a numeric argument".into()))
}

fn numeric_unary(eval: &Evaluator<'_>, seq: &Sequence, f: impl Fn(f64) -> f64) -> Result<Sequence> {
    let atoms = eval.atomize(seq);
    match atoms.first() {
        None => Ok(Sequence::empty()),
        Some(a) => {
            let v = f(a.to_double());
            // Integer inputs, and doubles that land on a whole finite
            // value, come back as integers.
            if matches!(a, AtomicValue::Integer(_)) || (v.fract() == 0.0 && v.is_finite()) {
                Ok(Sequence::singleton(Item::integer(v as i64)))
            } else {
                Ok(Sequence::singleton(Item::double(v)))
            }
        }
    }
}

fn aggregate(atoms: &[AtomicValue], f: impl Fn(f64, f64) -> f64, init: f64) -> Result<Sequence> {
    let all_integer = atoms.iter().all(|a| matches!(a, AtomicValue::Integer(_)));
    let mut acc = init;
    for a in atoms {
        acc = f(acc, a.to_double());
    }
    if all_integer && acc.fract() == 0.0 {
        Ok(Sequence::singleton(Item::integer(acc as i64)))
    } else {
        Ok(Sequence::singleton(Item::double(acc)))
    }
}

/// `fn:deep-equal` over two sequences: pairwise, atomics by value, nodes by
/// name/attributes/children recursively (ignoring node identity).
fn deep_equal(eval: &Evaluator<'_>, a: &Sequence, b: &Sequence) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
        (Item::Atomic(u), Item::Atomic(v)) => u.general_eq(v),
        (Item::Node(m), Item::Node(n)) => deep_equal_nodes(eval, *m, *n),
        _ => false,
    })
}

fn deep_equal_nodes(eval: &Evaluator<'_>, a: xqy_xdm::NodeId, b: xqy_xdm::NodeId) -> bool {
    let (ka, kb) = (eval.store.kind(a).clone(), eval.store.kind(b).clone());
    match (&ka, &kb) {
        (NodeKind::Text(x), NodeKind::Text(y)) => x == y,
        (NodeKind::Comment(x), NodeKind::Comment(y)) => x == y,
        (NodeKind::Attribute(nx, vx), NodeKind::Attribute(ny, vy)) => nx == ny && vx == vy,
        (NodeKind::Element(nx), NodeKind::Element(ny)) => {
            if nx != ny {
                return false;
            }
            let attrs_a = eval.store.attributes(a);
            let attrs_b = eval.store.attributes(b);
            if attrs_a.len() != attrs_b.len() {
                return false;
            }
            // Attribute order is irrelevant for deep equality.  Both nodes
            // live in the evaluator's store, so payload symbols compare
            // directly: equal syms ⇔ equal strings within one pool.
            for attr in &attrs_a {
                if let NodeKind::Attribute(name, value) = eval.store.kind(*attr) {
                    match eval.store.attribute_value_sym(b, &name.local) {
                        Some(v) if v == *value => {}
                        _ => return false,
                    }
                }
            }
            let ca = eval.store.children(a);
            let cb = eval.store.children(b);
            ca.len() == cb.len()
                && ca
                    .iter()
                    .zip(cb.iter())
                    .all(|(x, y)| deep_equal_nodes(eval, *x, *y))
        }
        (NodeKind::Document, NodeKind::Document) => {
            let ca = eval.store.children(a);
            let cb = eval.store.children(b);
            ca.len() == cb.len()
                && ca
                    .iter()
                    .zip(cb.iter())
                    .all(|(x, y)| deep_equal_nodes(eval, *x, *y))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::NodeStore;

    fn eval(src: &str) -> Sequence {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.eval_query_str(src).unwrap()
    }

    fn eval_doc(doc: &str, src: &str) -> Sequence {
        let mut store = NodeStore::new();
        store.parse_document_with_uri("d.xml", doc).unwrap();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.eval_query_str(src).unwrap()
    }

    fn one_string(seq: &Sequence) -> String {
        seq.items()[0].as_atomic().unwrap().string_value()
    }

    fn one_int(seq: &Sequence) -> i64 {
        seq.items()[0].as_atomic().unwrap().to_integer().unwrap()
    }

    #[test]
    fn cardinality_functions() {
        assert_eq!(one_int(&eval("count((1, 2, 3))")), 3);
        assert_eq!(eval("empty(())").items()[0], Item::boolean(true));
        assert_eq!(eval("exists((1))").items()[0], Item::boolean(true));
        assert_eq!(eval("not(1 = 1)").items()[0], Item::boolean(false));
    }

    #[test]
    fn string_functions() {
        assert_eq!(one_string(&eval("concat('a', 'b', 'c')")), "abc");
        assert_eq!(one_string(&eval("upper-case('abc')")), "ABC");
        assert_eq!(one_string(&eval("substring('abcde', 2, 3)")), "bcd");
        assert_eq!(one_string(&eval("substring-before('a-b', '-')")), "a");
        assert_eq!(one_string(&eval("substring-after('a-b', '-')")), "b");
        assert_eq!(one_string(&eval("string-join(('a', 'b'), '/')")), "a/b");
        assert_eq!(one_string(&eval("normalize-space('  a   b ')")), "a b");
        assert_eq!(
            eval("contains('abc', 'bc')").items()[0],
            Item::boolean(true)
        );
        assert_eq!(
            eval("starts-with('abc', 'ab')").items()[0],
            Item::boolean(true)
        );
        assert_eq!(one_int(&eval("string-length('abcd')")), 4);
    }

    #[test]
    fn numeric_functions_and_aggregates() {
        assert_eq!(one_int(&eval("sum((1, 2, 3))")), 6);
        assert_eq!(one_int(&eval("sum(())")), 0);
        assert_eq!(one_int(&eval("max((3, 9, 2))")), 9);
        assert_eq!(one_int(&eval("min((3, 9, 2))")), 2);
        assert_eq!(eval("avg((1, 2, 3, 4))").items()[0], Item::double(2.5));
        assert_eq!(one_int(&eval("abs(-5)")), 5);
        assert_eq!(one_int(&eval("floor(2.9)")), 2);
        assert_eq!(one_int(&eval("ceiling(2.1)")), 3);
        assert_eq!(one_int(&eval("round(2.5)")), 3);
        assert!(eval("number('x')").items()[0]
            .as_atomic()
            .unwrap()
            .to_double()
            .is_nan());
    }

    #[test]
    fn sequence_functions() {
        assert_eq!(one_int(&eval("count(distinct-values((1, 2, 2, 1)))")), 2);
        assert_eq!(one_int(&eval("count(reverse((1, 2, 3)))")), 3);
        assert_eq!(one_int(&eval("count(subsequence((1, 2, 3, 4), 2, 2))")), 2);
        assert_eq!(one_int(&eval("index-of((10, 20, 30), 20)")), 2);
        assert_eq!(one_int(&eval("count(insert-before((1, 2), 2, (9, 9)))")), 4);
        assert_eq!(one_int(&eval("count(remove((1, 2, 3), 2))")), 2);
        assert_eq!(one_int(&eval("exactly-one((7))")), 7);
    }

    #[test]
    fn cardinality_assertions_error() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        assert!(evaluator.eval_query_str("exactly-one((1, 2))").is_err());
        assert!(evaluator.eval_query_str("zero-or-one((1, 2))").is_err());
        assert!(evaluator.eval_query_str("one-or-more(())").is_err());
    }

    #[test]
    fn node_accessors() {
        let doc = "<r><a id=\"1\">x</a></r>";
        assert_eq!(one_string(&eval_doc(doc, "name(doc('d.xml')/r/a)")), "a");
        assert_eq!(
            one_string(&eval_doc(doc, "local-name(doc('d.xml')/r/a/@id)")),
            "id"
        );
        assert_eq!(one_string(&eval_doc(doc, "string(doc('d.xml')/r)")), "x");
        assert_eq!(
            one_string(&eval_doc(doc, "data(doc('d.xml')/r/a/@id)")),
            "1"
        );
        let roots = eval_doc(doc, "count(root(doc('d.xml')/r/a))");
        assert_eq!(one_int(&roots), 1);
    }

    #[test]
    fn id_lookup_uses_id_typed_attributes() {
        let doc = "<r><a id=\"n1\"><ref>n2</ref></a><a id=\"n2\"/></r>";
        let result = eval_doc(doc, "doc('d.xml')/r/a[1]/id(./ref)");
        assert_eq!(result.len(), 1);
        let result = eval_doc(doc, "doc('d.xml')/r/a[1]/id('n1 n2')");
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn deep_equal_ignores_identity_but_not_structure() {
        let doc = "<r><a><b x=\"1\">t</b></a><a><b x=\"1\">t</b></a><a><b x=\"2\">t</b></a></r>";
        assert_eq!(
            eval_doc(doc, "deep-equal(doc('d.xml')/r/a[1], doc('d.xml')/r/a[2])").items()[0],
            Item::boolean(true)
        );
        assert_eq!(
            eval_doc(doc, "deep-equal(doc('d.xml')/r/a[1], doc('d.xml')/r/a[3])").items()[0],
            Item::boolean(false)
        );
        assert_eq!(
            eval_doc(doc, "deep-equal((1, 'a'), (1, 'a'))").items()[0],
            Item::boolean(true)
        );
        assert_eq!(
            eval_doc(doc, "deep-equal((1), (1, 1))").items()[0],
            Item::boolean(false)
        );
    }

    #[test]
    fn ddo_sorts_and_deduplicates() {
        let doc = "<r><a/><b/><c/></r>";
        let result = eval_doc(
            doc,
            "count(ddo((doc('d.xml')/r/c, doc('d.xml')/r/a, doc('d.xml')/r/a)))",
        );
        assert_eq!(one_int(&result), 2);
    }

    #[test]
    fn casts() {
        assert_eq!(one_int(&eval("xs:integer('42')")), 42);
        assert_eq!(eval("xs:double('1.5')").items()[0], Item::double(1.5));
        assert_eq!(one_string(&eval("fn:string(7)")), "7");
    }
}
