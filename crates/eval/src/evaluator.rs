//! The tree-walking evaluator.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use xqy_parser::ast::{
    Expr, FunctionDecl, Literal, Occurrence, QueryModule, SequenceType, UnaryOp,
};
use xqy_parser::{parse_query, BinaryOp};
use xqy_xdm::{
    ddo, intersect, node_except, node_union, AtomicValue, Interner, Item, NodeId, NodeKind,
    NodeStore, Sequence, StoreMut, StrId,
};

use crate::compare::{arithmetic, effective_boolean_value, general_pair_compare, value_compare};
use crate::context::{Environment, Focus};
use crate::error::EvalError;
use crate::fixpoint::{self, FixpointInterceptor, FixpointStats, FixpointStrategy};
use crate::Result;

/// Tunable evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Which algorithm the `with … seeded by … recurse` form uses.
    pub fixpoint_strategy: FixpointStrategy,
    /// When `false` (the default) the IFP follows Definition 2.1 literally:
    /// the accumulation starts from `e_rec(e_seed)` and the seed nodes are
    /// only part of the result if the recursion re-discovers them (this is
    /// what makes `e+`, the *non*-reflexive transitive closure, expressible).
    ///
    /// When `true` the accumulation starts from the seed itself, which is the
    /// reading used by the paper's worked Example 2.4 (its iteration table
    /// lists the seed as the iteration-0 result) and corresponds to the
    /// reflexive closure `e*`.
    pub seed_in_result: bool,
    /// Abort an IFP after this many iterations (the IFP is then *undefined*,
    /// per Definition 2.1 of the paper).
    pub max_fixpoint_iterations: usize,
    /// Abort an IFP once the accumulated result exceeds this many nodes.
    pub max_fixpoint_nodes: usize,
    /// Maximum user-defined function recursion depth.
    pub max_recursion_depth: usize,
    /// Shard count for the per-seed phases of **batched** fixpoint runs —
    /// the image folds of the shared driver and the final result
    /// materializations.  `1` (the default) is fully sequential.  Body
    /// evaluations themselves always run on the interpreter thread (the
    /// evaluator holds the store mutably); the algebraic back-end is where
    /// body-level parallelism lives.
    pub fixpoint_threads: usize,
    /// Cooperative deadline: fixpoint drivers check it at every iteration
    /// barrier (the same place the iteration / node-count limits are
    /// enforced) and abort with [`EvalError::DeadlineExceeded`] once the
    /// instant has passed.  `None` (the default) never times out.
    pub deadline: Option<std::time::Instant>,
    /// Per-query result-size budget (`ResourceLimits::max_result_nodes`):
    /// unlike the engine-wide `max_fixpoint_nodes` safety net (whose breach
    /// means "the IFP is undefined", [`EvalError::NoFixpoint`]), exceeding
    /// this caller-supplied cap is a *resource* verdict —
    /// [`EvalError::BudgetExceeded`] with `budget = "result-nodes"`.
    pub max_result_nodes: Option<usize>,
    /// Per-query iteration budget (`ResourceLimits::max_iterations`),
    /// checked before the engine-wide `max_fixpoint_iterations`; breach is
    /// [`EvalError::BudgetExceeded`] with `budget = "iterations"`.
    pub budget_iterations: Option<usize>,
    /// Per-query approximate memory budget.  Growth points in the data
    /// model charge it (see [`xqy_xdm::budget`]); the fixpoint drivers
    /// check it at the iteration barrier, degrade once (drop store memos,
    /// fall back to sequential sharding) and then fail with
    /// [`EvalError::BudgetExceeded`] (`budget = "memory"`).
    pub memory_budget: Option<std::sync::Arc<xqy_xdm::QueryBudget>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fixpoint_strategy: FixpointStrategy::Naive,
            seed_in_result: false,
            max_fixpoint_iterations: 100_000,
            max_fixpoint_nodes: 50_000_000,
            max_recursion_depth: 4_096,
            fixpoint_threads: 1,
            deadline: None,
            max_result_nodes: None,
            budget_iterations: None,
            memory_budget: None,
        }
    }
}

/// The XQuery interpreter.
///
/// An `Evaluator` holds a [`StoreMut`] handle for the duration of a query
/// run: either exclusive access to a [`NodeStore`] (the classic single-query
/// path) or a session's [copy-on-write store](xqy_xdm::CowStore) (the
/// concurrent service path, where node constructors clone the shared store
/// privately instead of mutating it).  Document order / ID indexes are
/// refreshed lazily on access either way.
pub struct Evaluator<'s> {
    pub(crate) store: StoreMut<'s>,
    /// Name pool: every variable, parameter and function name the evaluator
    /// touches is interned once, so environments and the function registry
    /// key on `Copy` [`StrId`] symbols instead of `String`s.
    names: Interner,
    /// User-defined functions, shared so a call clones an `Arc` handle
    /// instead of the declaration's whole AST.
    functions: HashMap<(StrId, usize), Arc<FunctionDecl>>,
    globals: Vec<(StrId, Sequence)>,
    options: EvalOptions,
    fixpoint_runs: Vec<FixpointStats>,
    recursion_depth: usize,
    /// Per-occurrence settings overrides, keyed by the occurrence's
    /// `(recursion variable, body)` pair.  Looked up structurally so the
    /// same occurrence matches however many times it is evaluated (per-seed
    /// loops, function bodies cloned at call time, …).  The bodies are
    /// shared `Arc`s so installing overrides is O(occurrences), not
    /// O(AST size).
    occurrence_overrides: Vec<((String, Arc<Expr>), OccurrenceOverrides)>,
    /// Optional hook that may take over fixpoint evaluation (e.g. to drive a
    /// pre-compiled algebraic plan on the relational back-end).
    interceptor: Option<Box<dyn FixpointInterceptor>>,
}

/// The per-occurrence settings a higher layer can install on an evaluator
/// (one record per `(var, body)` pair; see
/// [`Evaluator::set_fixpoint_strategy_for`],
/// [`Evaluator::set_fixpoint_batch_sharing_for`] and
/// [`Evaluator::set_fixpoint_observer_for`]).
#[derive(Clone, Default)]
struct OccurrenceOverrides {
    /// Algorithm override; `None` falls back to the global
    /// [`EvalOptions::fixpoint_strategy`].
    strategy: Option<FixpointStrategy>,
    /// Batch-sharing grant for the batched source-level driver.
    share: bool,
    /// Observer notified with the [`FixpointStats`] of every recorded run
    /// of this occurrence (the cost model's feedback channel).
    observer: Option<Arc<dyn crate::fixpoint::FixpointObserver>>,
}

impl std::fmt::Debug for OccurrenceOverrides {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OccurrenceOverrides")
            .field("strategy", &self.strategy)
            .field("share", &self.share)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<'s> Evaluator<'s> {
    /// Create an evaluator over `store` with default options.
    ///
    /// Accepts anything convertible into a [`StoreMut`] handle: a classic
    /// `&mut NodeStore`, or a `&mut CowStore` for copy-on-write execution
    /// over a shared store.
    pub fn new(store: impl Into<StoreMut<'s>>) -> Self {
        Evaluator {
            store: store.into(),
            names: Interner::new(),
            functions: HashMap::new(),
            globals: Vec::new(),
            options: EvalOptions::default(),
            fixpoint_runs: Vec::new(),
            recursion_depth: 0,
            occurrence_overrides: Vec::new(),
            interceptor: None,
        }
    }

    /// Borrow the underlying node store mutably (a copy-on-write handle
    /// clones the shared store on first use — see [`xqy_xdm::CowStore`]).
    pub fn store(&mut self) -> &mut NodeStore {
        self.store.write()
    }

    /// Borrow the underlying node store for reading (never copies).
    pub fn store_ref(&self) -> &NodeStore {
        self.store.read()
    }

    /// Current options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Mutable access to the options.
    pub fn options_mut(&mut self) -> &mut EvalOptions {
        &mut self.options
    }

    /// Select the IFP evaluation algorithm (Naïve or Delta).
    pub fn set_fixpoint_strategy(&mut self, strategy: FixpointStrategy) {
        self.options.fixpoint_strategy = strategy;
    }

    /// Override the IFP algorithm for one occurrence, identified by its
    /// `(recursion variable, body)` pair.  Occurrences without an override
    /// use the global [`EvalOptions::fixpoint_strategy`].  This is how the
    /// prepared-query layer applies a *per-occurrence* strategy decision —
    /// Delta for distributive bodies, Naïve for the rest — within one query.
    pub fn set_fixpoint_strategy_for(
        &mut self,
        var: &str,
        body: Arc<Expr>,
        strategy: FixpointStrategy,
    ) {
        self.occurrence_overrides_for(var, body).strategy = Some(strategy);
    }

    /// The mutable override record for `(var, body)`, created on first use.
    fn occurrence_overrides_for(&mut self, var: &str, body: Arc<Expr>) -> &mut OccurrenceOverrides {
        if let Some(idx) = self
            .occurrence_overrides
            .iter()
            .position(|((v, b), _)| v == var && **b == *body)
        {
            return &mut self.occurrence_overrides[idx].1;
        }
        self.occurrence_overrides
            .push(((var.to_string(), body), OccurrenceOverrides::default()));
        &mut self.occurrence_overrides.last_mut().expect("just pushed").1
    }

    /// Grant (or revoke) **batch sharing** for the occurrence `(var, body)`:
    /// when `true`, [`Evaluator::run_fixpoint_batched`]'s source-level
    /// driver may evaluate the recursion body once per *distinct* frontier
    /// node and distribute the images to every owning seed.  Only sound for
    /// **distributive** bodies (`e(X) = ⋃ₓ e({x})`, Theorem 3.2 of the
    /// paper) — the caller certifies distributivity (the prepared-query
    /// layer grants this from its per-occurrence distributivity reports);
    /// the driver additionally refuses to share bodies that construct nodes
    /// or call undefined functions, whatever the grant says.  Occurrences
    /// without a grant run group-wise (one body evaluation per seed per
    /// iteration), which is exact for every body.
    pub fn set_fixpoint_batch_sharing_for(&mut self, var: &str, body: Arc<Expr>, share: bool) {
        self.occurrence_overrides_for(var, body).share = share;
    }

    /// `true` when batch sharing has been granted for `(var, body)` via
    /// [`set_fixpoint_batch_sharing_for`](Self::set_fixpoint_batch_sharing_for).
    pub fn fixpoint_batch_sharing_for(&self, var: &str, body: &Expr) -> bool {
        self.occurrence_overrides
            .iter()
            .find(|((v, b), _)| v == var && b.as_ref() == body)
            .map(|(_, o)| o.share)
            .unwrap_or(false)
    }

    /// Attach an observer to the occurrence `(var, body)`: it is handed the
    /// [`FixpointStats`] of every run of that occurrence right after the
    /// run is recorded — whichever back-end (interpreted or intercepted)
    /// produced it.  The prepared-query layer installs its cost-model
    /// feedback cells through this.
    pub fn set_fixpoint_observer_for(
        &mut self,
        var: &str,
        body: Arc<Expr>,
        observer: Arc<dyn crate::fixpoint::FixpointObserver>,
    ) {
        self.occurrence_overrides_for(var, body).observer = Some(observer);
    }

    /// Install a [`FixpointInterceptor`] that may take over the evaluation
    /// of IFP occurrences (see the trait docs).
    pub fn set_fixpoint_interceptor(&mut self, interceptor: Box<dyn FixpointInterceptor>) {
        self.interceptor = Some(interceptor);
    }

    /// The strategy that will evaluate the occurrence `(var, body)`.
    pub fn fixpoint_strategy_for(&self, var: &str, body: &Expr) -> FixpointStrategy {
        self.occurrence_overrides
            .iter()
            .find(|((v, b), _)| v == var && b.as_ref() == body)
            .and_then(|(_, o)| o.strategy)
            .unwrap_or(self.options.fixpoint_strategy)
    }

    /// Statistics of every fixed point computation executed so far, in
    /// execution order.
    pub fn fixpoint_runs(&self) -> &[FixpointStats] {
        &self.fixpoint_runs
    }

    /// Statistics of the most recent fixed point computation, if any.
    pub fn last_fixpoint_stats(&self) -> Option<&FixpointStats> {
        self.fixpoint_runs.last()
    }

    /// Record a run attributed to the occurrence `(var, body)`, notifying
    /// the occurrence's observer (if any) first.
    pub(crate) fn record_fixpoint_run_for(&mut self, var: &str, body: &Expr, stats: FixpointStats) {
        if let Some(observer) = self
            .occurrence_overrides
            .iter()
            .find(|((v, b), _)| v == var && b.as_ref() == body)
            .and_then(|(_, o)| o.observer.clone())
        {
            observer.observe(&stats);
        }
        self.fixpoint_runs.push(stats);
    }

    /// Register additional user-defined functions (callable from any
    /// subsequently evaluated expression).  Names are interned here, once;
    /// calls look them up by symbol.
    pub fn register_functions(&mut self, functions: &[FunctionDecl]) {
        for f in functions {
            let name = self.names.intern(strip_prefix(&f.name));
            self.functions
                .insert((name, f.params.len()), Arc::new(f.clone()));
        }
    }

    /// Bind a global variable visible to every evaluated expression.  The
    /// name is resolved to its symbol once, here.
    pub fn bind_global(&mut self, name: impl Into<String>, value: Sequence) {
        let name = self.names.intern(&name.into());
        self.globals.push((name, value));
    }

    /// A fresh environment pre-loaded with the global bindings.  Cloning a
    /// global's value is cheap for node sequences (a shared handle); nothing
    /// else is copied — this replaces the old whole-`globals` clone that
    /// every `eval_module`/`eval_expr_str` call paid.
    fn env_with_globals(&self) -> Environment {
        let mut env = Environment::with_capacity(self.globals.len());
        for (name, value) in &self.globals {
            env.push(*name, value.clone());
        }
        env
    }

    /// Run **one inflationary fixpoint per seed** of `seeds` for the
    /// occurrence `(var, body)`, returning the per-seed node lists
    /// (index-aligned with `seeds`) and whether they were computed by a
    /// single *batched* multi-source run.
    ///
    /// This is the batched dispatch point of the eval layer.  Routing, in
    /// order:
    ///
    /// 1. the installed [`FixpointInterceptor`]'s
    ///    [`run_fixpoint_batched`](FixpointInterceptor::run_fixpoint_batched)
    ///    hook — one shared fixpoint over the `(seed, node)` relation on
    ///    the relational back-end (returns `(groups, true)`);
    /// 2. per seed: the interceptor's single-source
    ///    [`run_fixpoint`](FixpointInterceptor::run_fixpoint) hook — one
    ///    algebraic fixpoint per seed for occurrences that compile but are
    ///    not seed-local;
    /// 3. the **batched source-level driver**
    ///    ([`fixpoint::evaluate_fixpoint_batched`]) for occurrences the
    ///    interceptor declines entirely (bodies outside the algebraic
    ///    subset, or no interceptor installed): one shared Figure-3 loop
    ///    over all seeds under the strategy
    ///    [`fixpoint_strategy_for`](Self::fixpoint_strategy_for) reports,
    ///    with the globals bound via [`bind_global`](Self::bind_global) in
    ///    scope.  Distributive bodies (granted via
    ///    [`set_fixpoint_batch_sharing_for`](Self::set_fixpoint_batch_sharing_for))
    ///    additionally evaluate each distinct frontier node once and share
    ///    the image across seeds.
    ///
    /// Every run is recorded in [`fixpoint_runs`](Self::fixpoint_runs):
    /// one entry with [`FixpointStats::batch_seeds`]` > 0` on routes 1 and
    /// 3, one entry per seed on route 2.  `seeds` must be distinct; callers
    /// deduplicate and re-expand.
    pub fn run_fixpoint_batched(
        &mut self,
        var: &str,
        body: &Expr,
        seeds: &[NodeId],
    ) -> Result<(Vec<Vec<NodeId>>, bool)> {
        if seeds.is_empty() {
            // Zero seeds means zero fixpoints: nothing runs, nothing is
            // recorded (matching a per-seed loop over an empty set).
            return Ok((Vec::new(), false));
        }
        if let Some(mut interceptor) = self.interceptor.take() {
            let outcome = interceptor.run_fixpoint_batched(
                self.store.reborrow(),
                var,
                body,
                seeds,
                self.options.seed_in_result,
            );
            self.interceptor = Some(interceptor);
            if let Some(result) = outcome {
                let (groups, stats) = result?;
                debug_assert_eq!(groups.len(), seeds.len());
                self.record_fixpoint_run_for(var, body, stats);
                return Ok((groups, true));
            }
        }
        let mut groups = Vec::with_capacity(seeds.len());
        for (idx, &seed) in seeds.iter().enumerate() {
            let mut handled = None;
            if let Some(mut interceptor) = self.interceptor.take() {
                let outcome = interceptor.run_fixpoint(
                    self.store.reborrow(),
                    var,
                    body,
                    &[seed],
                    self.options.seed_in_result,
                );
                self.interceptor = Some(interceptor);
                if let Some(result) = outcome {
                    let (nodes, stats) = result?;
                    self.record_fixpoint_run_for(var, body, stats);
                    handled = Some(nodes);
                }
            }
            match handled {
                Some(nodes) => groups.push(nodes),
                None if idx == 0 => {
                    // The interceptor matches occurrences by `(var, body)`,
                    // so a decline is seed-independent: the whole batch is
                    // source-level.  Run it as one batched fixpoint instead
                    // of one interpreter loop per seed.
                    return self
                        .run_fixpoint_batched_source(var, body, seeds)
                        .map(|groups| (groups, true));
                }
                None => {
                    // Defensive: an interceptor that accepts some seeds but
                    // declines others (none of ours does) still gets exact
                    // per-seed semantics.
                    let mut env = self.env_with_globals();
                    let strategy = self.fixpoint_strategy_for(var, body);
                    let seed_seq = Sequence::from_nodes(vec![seed]);
                    let nodes = fixpoint::evaluate_fixpoint(
                        self, var, &seed_seq, body, &mut env, strategy,
                    )?
                    .nodes();
                    groups.push(nodes);
                }
            }
        }
        Ok((groups, false))
    }

    /// Route 3 of [`run_fixpoint_batched`](Self::run_fixpoint_batched): the
    /// batched **source-level** driver.  Sharing is enabled only when the
    /// occurrence holds a distributivity grant *and* the body passes the
    /// purity screen ([`body_shares_safely`](Self::body_shares_safely)).
    fn run_fixpoint_batched_source(
        &mut self,
        var: &str,
        body: &Expr,
        seeds: &[NodeId],
    ) -> Result<Vec<Vec<NodeId>>> {
        let mut env = self.env_with_globals();
        let strategy = self.fixpoint_strategy_for(var, body);
        let share = self.fixpoint_batch_sharing_for(var, body) && self.body_shares_safely(body);
        fixpoint::evaluate_fixpoint_batched(self, var, seeds, body, &mut env, strategy, share)
    }

    /// Purity screen for batch sharing: a body may be evaluated per
    /// *distinct* frontier node (instead of per seed) only if re-evaluating
    /// it on the same input is guaranteed to reproduce the same value.
    /// Node **constructors** break that (fresh identities per invocation),
    /// so any constructor in the body — or in a user-defined function the
    /// body can reach — refuses sharing.  Unresolvable function calls
    /// refuse too (they would error at run time anyway; stay conservative).
    pub(crate) fn body_shares_safely(&self, body: &Expr) -> bool {
        let mut pending: Vec<&Expr> = vec![body];
        let mut visited: HashSet<(StrId, usize)> = HashSet::new();
        while let Some(expr) = pending.pop() {
            let mut pure = true;
            let mut calls: Vec<(StrId, usize)> = Vec::new();
            expr.walk(&mut |e| match e {
                Expr::DirectElement { .. }
                | Expr::ComputedElement { .. }
                | Expr::ComputedAttribute { .. }
                | Expr::ComputedText { .. } => pure = false,
                Expr::FunctionCall { name, args } => {
                    let local = strip_prefix(name);
                    if !crate::builtins::is_builtin(local) {
                        match self.names.get(local) {
                            Some(id) => calls.push((id, args.len())),
                            None => pure = false,
                        }
                    }
                }
                _ => {}
            });
            if !pure {
                return false;
            }
            for key in calls {
                match self.functions.get(&key) {
                    Some(decl) => {
                        if visited.insert(key) {
                            pending.push(&decl.body);
                        }
                    }
                    None => return false,
                }
            }
        }
        true
    }

    /// Parse and evaluate a complete query.
    pub fn eval_query_str(&mut self, source: &str) -> Result<Sequence> {
        let module = parse_query(source)?;
        self.eval_module(&module)
    }

    /// Evaluate a parsed query module: register its functions, evaluate its
    /// global variables, then evaluate the body.
    pub fn eval_module(&mut self, module: &QueryModule) -> Result<Sequence> {
        self.register_functions(&module.functions);
        let mut env = self.env_with_globals();
        for (name, expr) in &module.variables {
            let value = self.eval_expr(expr, &mut env, None)?;
            let id = self.names.intern(name);
            env.push(id, value.clone());
            self.globals.push((id, value));
        }
        self.eval_expr(&module.body, &mut env, None)
    }

    /// Evaluate a standalone expression with an empty environment.
    pub fn eval_expr_str(&mut self, source: &str) -> Result<Sequence> {
        let expr = xqy_parser::parse_expr(source)?;
        let mut env = self.env_with_globals();
        self.eval_expr(&expr, &mut env, None)
    }

    /// Evaluate `expr` under `env` with optional focus.
    pub fn eval_expr(
        &mut self,
        expr: &Expr,
        env: &mut Environment,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        match expr {
            Expr::Literal(lit) => Ok(Sequence::singleton(literal_item(lit))),
            Expr::EmptySequence => Ok(Sequence::empty()),
            Expr::VarRef(name) => self
                .names
                .get(name)
                .and_then(|id| env.lookup(id))
                .cloned()
                .ok_or_else(|| EvalError::UndefinedVariable(name.clone())),
            Expr::ContextItem => focus
                .map(|f| Sequence::singleton(f.item.clone()))
                .ok_or(EvalError::MissingContextItem),
            Expr::Sequence(items) => {
                let mut out = Sequence::empty();
                for item in items {
                    out.extend(self.eval_expr(item, env, focus)?);
                }
                Ok(out)
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let test = self.eval_expr(cond, env, focus)?;
                if effective_boolean_value(&test)? {
                    self.eval_expr(then_branch, env, focus)
                } else {
                    self.eval_expr(else_branch, env, focus)
                }
            }
            Expr::For {
                var,
                pos_var,
                seq,
                body,
            } => {
                let input = self.eval_expr(seq, env, focus)?;
                let var_id = self.names.intern(var);
                let pos_id = pos_var.as_ref().map(|p| self.names.intern(p));
                let mut out = Sequence::empty();
                for (i, item) in input.into_iter().enumerate() {
                    let depth = env.depth();
                    env.push(var_id, Sequence::singleton(item));
                    if let Some(p) = pos_id {
                        env.push(p, Sequence::singleton(Item::integer(i as i64 + 1)));
                    }
                    let result = self.eval_expr(body, env, focus);
                    env.truncate(depth);
                    out.extend(result?);
                }
                Ok(out)
            }
            Expr::Let { var, value, body } => {
                let bound = self.eval_expr(value, env, focus)?;
                let depth = env.depth();
                let var_id = self.names.intern(var);
                env.push(var_id, bound);
                let result = self.eval_expr(body, env, focus);
                env.truncate(depth);
                result
            }
            Expr::Quantified {
                every,
                var,
                seq,
                cond,
            } => {
                let input = self.eval_expr(seq, env, focus)?;
                let var_id = self.names.intern(var);
                let mut result = *every;
                for item in input.into_iter() {
                    let depth = env.depth();
                    env.push(var_id, Sequence::singleton(item));
                    let holds = self
                        .eval_expr(cond, env, focus)
                        .and_then(|s| effective_boolean_value(&s));
                    env.truncate(depth);
                    let holds = holds?;
                    if *every && !holds {
                        result = false;
                        break;
                    }
                    if !*every && holds {
                        result = true;
                        break;
                    }
                }
                Ok(Sequence::singleton(Item::boolean(result)))
            }
            Expr::Typeswitch { operand, cases } => {
                let value = self.eval_expr(operand, env, focus)?;
                for case in cases {
                    let matches = match &case.seq_type {
                        Some(t) => self.matches_sequence_type(&value, t),
                        None => true, // default branch
                    };
                    if matches {
                        let depth = env.depth();
                        if let Some(v) = &case.var {
                            let v = self.names.intern(v);
                            env.push(v, value.clone());
                        }
                        let result = self.eval_expr(&case.body, env, focus);
                        env.truncate(depth);
                        return result;
                    }
                }
                Ok(Sequence::empty())
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, env, focus),
            Expr::Unary { op, expr } => {
                let value = self.eval_expr(expr, env, focus)?;
                let atoms = self.atomize(&value);
                if atoms.is_empty() {
                    return Ok(Sequence::empty());
                }
                if atoms.len() > 1 {
                    return Err(EvalError::Type("unary operator on a sequence".into()));
                }
                let n = atoms[0].to_double();
                let value = match op {
                    UnaryOp::Minus => -n,
                    UnaryOp::Plus => n,
                };
                if value.fract() == 0.0 && matches!(atoms[0], AtomicValue::Integer(_)) {
                    Ok(Sequence::singleton(Item::integer(value as i64)))
                } else {
                    Ok(Sequence::singleton(Item::double(value)))
                }
            }
            Expr::Path { input, step } => {
                let input_seq = self.eval_expr(input, env, focus)?;
                self.eval_path_step(&input_seq, step, env)
            }
            Expr::RootPath { step } => {
                let focus = focus.ok_or(EvalError::MissingContextItem)?;
                let node = focus
                    .item
                    .as_node()
                    .ok_or_else(|| EvalError::Type("'/' requires a node context item".into()))?;
                let root = self.store.tree_root(node);
                let root_seq = Sequence::from_nodes(vec![root]);
                match step {
                    None => Ok(root_seq),
                    Some(s) => self.eval_path_step(&root_seq, s, env),
                }
            }
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => {
                let focus = focus.ok_or(EvalError::MissingContextItem)?;
                let node = focus.item.as_node().ok_or_else(|| {
                    EvalError::Type(format!(
                        "axis step {}::{} requires a node context item",
                        axis.name(),
                        test
                    ))
                })?;
                let candidates = self.store.axis_nodes(node, *axis, test);
                let mut seq = Sequence::from_nodes(candidates);
                for pred in predicates {
                    seq = self.apply_predicate(seq, pred, env)?;
                }
                let ordered = ddo(&self.store, &seq.nodes());
                Ok(Sequence::from_nodes(ordered))
            }
            Expr::Filter { input, predicates } => {
                let mut seq = self.eval_expr(input, env, focus)?;
                for pred in predicates {
                    seq = self.apply_predicate(seq, pred, env)?;
                }
                Ok(seq)
            }
            Expr::FunctionCall { name, args } => self.eval_function_call(name, args, env, focus),
            Expr::DirectElement { .. }
            | Expr::ComputedElement { .. }
            | Expr::ComputedAttribute { .. }
            | Expr::ComputedText { .. } => crate::construct::construct(self, expr, env, focus),
            Expr::Fixpoint { var, seed, body } => {
                let seed_value = self.eval_expr(seed, env, focus)?;
                // Offer node-seeded occurrences to the interceptor first
                // (non-node seeds fall through to evaluate_fixpoint, which
                // reports the type error).  The box is taken out for the
                // call so the interceptor can receive `self.store` mutably;
                // it is restored before any nested occurrence evaluates.
                if seed_value.all_nodes() {
                    if let Some(mut interceptor) = self.interceptor.take() {
                        let outcome = interceptor.run_fixpoint(
                            self.store.reborrow(),
                            var,
                            body,
                            &seed_value.nodes(),
                            self.options.seed_in_result,
                        );
                        self.interceptor = Some(interceptor);
                        if let Some(result) = outcome {
                            let (nodes, stats) = result?;
                            self.record_fixpoint_run_for(var, body, stats);
                            return Ok(Sequence::from_nodes(nodes));
                        }
                    }
                }
                let strategy = self.fixpoint_strategy_for(var, body);
                fixpoint::evaluate_fixpoint(self, var, &seed_value, body, env, strategy)
            }
        }
    }

    // ------------------------------------------------------------------
    // Paths, predicates
    // ------------------------------------------------------------------

    /// Evaluate a path step: for every item of `input` (as the focus), run
    /// `step`, then combine.  If all results are nodes the combined result
    /// is returned in distinct document order, mirroring `fs:ddo`.
    pub(crate) fn eval_path_step(
        &mut self,
        input: &Sequence,
        step: &Expr,
        env: &mut Environment,
    ) -> Result<Sequence> {
        let size = input.len();
        // Fused fast path: a predicate-free axis step over a node-backed
        // focus sequence needs neither per-focus `Focus` frames nor a
        // per-focus result `Sequence` — every axis traversal appends into
        // one buffer and a single `ddo` orders the union.  (Equivalent to
        // the general path: for predicate-free steps, `ddo` of the
        // concatenation equals `ddo` of concatenated per-focus `ddo`s —
        // `ddo` is idempotent and the outer pass fixes order either way.)
        if let (
            Expr::AxisStep {
                axis,
                test,
                predicates,
            },
            Some(ids),
        ) = (step, input.node_ids())
        {
            if predicates.is_empty() {
                let mut raw = Vec::new();
                for &node in ids {
                    self.store.axis_nodes_into(node, *axis, test, &mut raw);
                }
                let ordered = ddo(&self.store, &raw);
                return Ok(Sequence::from_nodes(ordered));
            }
        }
        let mut out = Sequence::empty();
        if let Some(ids) = input.node_ids() {
            // Node-backed input: iterate the id buffer directly, never
            // materializing an `Item` view of the (possibly large) frontier.
            for (i, &node) in ids.iter().enumerate() {
                let focus = Focus {
                    item: Item::Node(node),
                    position: i + 1,
                    size,
                };
                let result = self.eval_expr(step, env, Some(&focus))?;
                out.extend(result);
            }
        } else {
            for i in 0..size {
                let focus = Focus {
                    item: input.items()[i].clone(),
                    position: i + 1,
                    size,
                };
                let result = self.eval_expr(step, env, Some(&focus))?;
                out.extend(result);
            }
        }
        if let Some(ids) = out.node_ids() {
            let ordered = ddo(&self.store, ids);
            Ok(Sequence::from_nodes(ordered))
        } else if out.all_nodes() {
            let ordered = ddo(&self.store, &out.nodes());
            Ok(Sequence::from_nodes(ordered))
        } else if out.nodes().is_empty() {
            Ok(out)
        } else {
            Err(EvalError::Type(
                "path step result mixes nodes and atomic values".into(),
            ))
        }
    }

    fn apply_predicate(
        &mut self,
        input: Sequence,
        pred: &Expr,
        env: &mut Environment,
    ) -> Result<Sequence> {
        let size = input.len();
        let mut out = Sequence::empty();
        for (i, item) in input.iter().enumerate() {
            let focus = Focus {
                item: item.clone(),
                position: i + 1,
                size,
            };
            let value = self.eval_expr(pred, env, Some(&focus))?;
            // Numeric predicate selects by position; otherwise EBV filters.
            let keep = if value.len() == 1 {
                match value.first() {
                    Some(Item::Atomic(a)) if a.is_numeric() => {
                        (a.to_double() - (i as f64 + 1.0)).abs() < f64::EPSILON
                    }
                    _ => effective_boolean_value(&value)?,
                }
            } else {
                effective_boolean_value(&value)?
            };
            if keep {
                out.push(item.clone());
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Environment,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        match op {
            BinaryOp::Or => {
                let l = self.eval_expr(lhs, env, focus)?;
                if effective_boolean_value(&l)? {
                    return Ok(Sequence::singleton(Item::boolean(true)));
                }
                let r = self.eval_expr(rhs, env, focus)?;
                Ok(Sequence::singleton(Item::boolean(effective_boolean_value(
                    &r,
                )?)))
            }
            BinaryOp::And => {
                let l = self.eval_expr(lhs, env, focus)?;
                if !effective_boolean_value(&l)? {
                    return Ok(Sequence::singleton(Item::boolean(false)));
                }
                let r = self.eval_expr(rhs, env, focus)?;
                Ok(Sequence::singleton(Item::boolean(effective_boolean_value(
                    &r,
                )?)))
            }
            BinaryOp::Union | BinaryOp::Intersect | BinaryOp::Except => {
                let l = self.eval_expr(lhs, env, focus)?;
                let r = self.eval_expr(rhs, env, focus)?;
                if !l.all_nodes() || !r.all_nodes() {
                    return Err(EvalError::Type(format!(
                        "operands of '{}' must be node sequences",
                        op.symbol()
                    )));
                }
                // Borrow the id buffers where the operands are node-backed
                // (the common case — path results); fall back to extraction
                // for item-built all-node sequences.
                let (lv, rv);
                let ln = match l.node_ids() {
                    Some(ids) => ids,
                    None => {
                        lv = l.nodes();
                        &lv[..]
                    }
                };
                let rn = match r.node_ids() {
                    Some(ids) => ids,
                    None => {
                        rv = r.nodes();
                        &rv[..]
                    }
                };
                let result = match op {
                    BinaryOp::Union => node_union(&self.store, ln, rn),
                    BinaryOp::Intersect => intersect(&self.store, ln, rn),
                    BinaryOp::Except => node_except(&self.store, ln, rn),
                    _ => unreachable!(),
                };
                Ok(Sequence::from_nodes(result))
            }
            BinaryOp::Is | BinaryOp::Precedes | BinaryOp::Follows => {
                let l = self.eval_expr(lhs, env, focus)?;
                let r = self.eval_expr(rhs, env, focus)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::empty());
                }
                let (Some(a), Some(b)) = (l.first_node(), r.first_node()) else {
                    return Err(EvalError::Type(format!(
                        "operands of '{}' must be single nodes",
                        op.symbol()
                    )));
                };
                let result = match op {
                    BinaryOp::Is => a == b,
                    BinaryOp::Precedes => self.store.doc_order(a, b) == std::cmp::Ordering::Less,
                    BinaryOp::Follows => self.store.doc_order(a, b) == std::cmp::Ordering::Greater,
                    _ => unreachable!(),
                };
                Ok(Sequence::singleton(Item::boolean(result)))
            }
            BinaryOp::Range => {
                let l = self.eval_single_integer(lhs, env, focus)?;
                let r = self.eval_single_integer(rhs, env, focus)?;
                match (l, r) {
                    (Some(a), Some(b)) if a <= b => {
                        Ok((a..=b).map(Item::integer).collect::<Sequence>())
                    }
                    _ => Ok(Sequence::empty()),
                }
            }
            op if op.is_general_comparison() => {
                let l = self.eval_expr(lhs, env, focus)?;
                let r = self.eval_expr(rhs, env, focus)?;
                let latoms = self.atomize(&l);
                let ratoms = self.atomize(&r);
                let result = latoms
                    .iter()
                    .any(|a| ratoms.iter().any(|b| general_pair_compare(op, a, b)));
                Ok(Sequence::singleton(Item::boolean(result)))
            }
            BinaryOp::ValueEq
            | BinaryOp::ValueNe
            | BinaryOp::ValueLt
            | BinaryOp::ValueLe
            | BinaryOp::ValueGt
            | BinaryOp::ValueGe => {
                let l = self.eval_expr(lhs, env, focus)?;
                let r = self.eval_expr(rhs, env, focus)?;
                let latoms = self.atomize(&l);
                let ratoms = self.atomize(&r);
                if latoms.is_empty() || ratoms.is_empty() {
                    return Ok(Sequence::empty());
                }
                if latoms.len() > 1 || ratoms.len() > 1 {
                    return Err(EvalError::Type(format!(
                        "value comparison '{}' requires singleton operands",
                        op.symbol()
                    )));
                }
                Ok(Sequence::singleton(Item::boolean(value_compare(
                    op, &latoms[0], &ratoms[0],
                )?)))
            }
            BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::IDiv
            | BinaryOp::Mod => {
                let l = self.eval_expr(lhs, env, focus)?;
                let r = self.eval_expr(rhs, env, focus)?;
                let latoms = self.atomize(&l);
                let ratoms = self.atomize(&r);
                if latoms.is_empty() || ratoms.is_empty() {
                    return Ok(Sequence::empty());
                }
                if latoms.len() > 1 || ratoms.len() > 1 {
                    return Err(EvalError::Type(format!(
                        "arithmetic operator '{}' requires singleton operands",
                        op.symbol()
                    )));
                }
                Ok(Sequence::singleton(Item::Atomic(arithmetic(
                    op, &latoms[0], &ratoms[0],
                )?)))
            }
            other => Err(EvalError::Type(format!(
                "unsupported binary operator '{}'",
                other.symbol()
            ))),
        }
    }

    fn eval_single_integer(
        &mut self,
        expr: &Expr,
        env: &mut Environment,
        focus: Option<&Focus>,
    ) -> Result<Option<i64>> {
        let value = self.eval_expr(expr, env, focus)?;
        let atoms = self.atomize(&value);
        match atoms.len() {
            0 => Ok(None),
            1 => Ok(Some(atoms[0].to_integer()?)),
            _ => Err(EvalError::Type(
                "range operand must be a single integer".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Functions
    // ------------------------------------------------------------------

    fn eval_function_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Environment,
        focus: Option<&Focus>,
    ) -> Result<Sequence> {
        let local = strip_prefix(name);
        // User-defined functions shadow nothing from the built-in library —
        // built-ins win, matching how `fn:` functions cannot be redefined.
        if crate::builtins::is_builtin(local) {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(self.eval_expr(a, env, focus)?);
            }
            return crate::builtins::call_builtin(self, local, &values, focus);
        }
        let decl = self
            .names
            .get(local)
            .and_then(|id| self.functions.get(&(id, args.len())))
            .cloned();
        if let Some(decl) = decl {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(self.eval_expr(a, env, focus)?);
            }
            if self.recursion_depth >= self.options.max_recursion_depth {
                return Err(EvalError::RecursionLimit(self.options.max_recursion_depth));
            }
            self.recursion_depth += 1;
            // Function bodies see only their parameters and the globals.
            let mut call_env = self.env_with_globals();
            for (param, value) in decl.params.iter().zip(values) {
                let param = self.names.intern(param);
                call_env.push(param, value);
            }
            let result = self.eval_expr(&decl.body, &mut call_env, None);
            self.recursion_depth -= 1;
            return result;
        }
        Err(EvalError::UndefinedFunction {
            name: name.to_string(),
            arity: args.len(),
        })
    }

    // ------------------------------------------------------------------
    // Helpers shared with builtins / construct / fixpoint
    // ------------------------------------------------------------------

    /// Atomize a sequence: nodes become `xs:untypedAtomic` of their string
    /// value, atomic items pass through.  Node values are zero-copy: leaf
    /// payloads and memoized element concatenations come out as shared
    /// handles on the store's text pool, so repeated probes of the same
    /// node allocate nothing (see [`NodeStore::untyped_value`]).
    pub(crate) fn atomize(&self, seq: &Sequence) -> Vec<AtomicValue> {
        seq.iter()
            .map(|item| match item {
                Item::Atomic(a) => a.clone(),
                Item::Node(n) => AtomicValue::Untyped(self.store.untyped_value(*n)),
            })
            .collect()
    }

    /// The string value of a single item.
    pub(crate) fn item_string(&self, item: &Item) -> String {
        match item {
            Item::Atomic(a) => a.string_value(),
            Item::Node(n) => self.store.string_value(*n),
        }
    }

    /// Simple sequence-type matching for `typeswitch`.
    fn matches_sequence_type(&self, value: &Sequence, t: &SequenceType) -> bool {
        let occurrence_ok = match t.occurrence {
            Occurrence::One => value.len() == 1,
            Occurrence::Optional => value.len() <= 1,
            Occurrence::ZeroOrMore => true,
            Occurrence::OneOrMore => !value.is_empty(),
        };
        if !occurrence_ok {
            return false;
        }
        if t.item_type == "empty-sequence()" {
            return value.is_empty();
        }
        value
            .iter()
            .all(|item| self.item_matches_type(item, &t.item_type))
    }

    fn item_matches_type(&self, item: &Item, item_type: &str) -> bool {
        let base = item_type.trim();
        match item {
            Item::Node(n) => {
                let kind = self.store.kind(*n);
                match base {
                    "item()" | "node()" => true,
                    "text()" => kind.is_text(),
                    "comment()" => matches!(kind, NodeKind::Comment(_)),
                    "document-node()" => matches!(kind, NodeKind::Document),
                    _ if base.starts_with("element(") || base == "element()" => {
                        let inner = base
                            .trim_start_matches("element(")
                            .trim_end_matches(')')
                            .trim();
                        kind.is_element()
                            && (inner.is_empty()
                                || inner == "*"
                                || kind.name().map(|q| q.local == inner).unwrap_or(false))
                    }
                    _ if base.starts_with("attribute(") || base == "attribute()" => {
                        let inner = base
                            .trim_start_matches("attribute(")
                            .trim_end_matches(')')
                            .trim();
                        kind.is_attribute()
                            && (inner.is_empty()
                                || inner == "*"
                                || kind.name().map(|q| q.local == inner).unwrap_or(false))
                    }
                    _ => false,
                }
            }
            Item::Atomic(a) => match base {
                "item()" => true,
                "xs:integer" => matches!(a, AtomicValue::Integer(_)),
                "xs:double" | "xs:decimal" | "xs:float" => {
                    matches!(a, AtomicValue::Double(_) | AtomicValue::Integer(_))
                }
                "xs:string" => matches!(a, AtomicValue::String(_)),
                "xs:boolean" => matches!(a, AtomicValue::Boolean(_)),
                "xs:untypedAtomic" => matches!(a, AtomicValue::Untyped(_)),
                "xs:anyAtomicType" => true,
                _ => false,
            },
        }
    }

    /// Resolve `fn:id(values)` relative to `doc_node`'s document.
    pub(crate) fn lookup_ids(&mut self, doc_node: NodeId, values: &[AtomicValue]) -> Vec<NodeId> {
        let doc = xqy_xdm::DocId(doc_node.doc);
        let mut out = Vec::new();
        for value in values {
            // Borrow string-shaped values directly — atomized node values
            // already own their text; re-rendering would clone per probe.
            let rendered;
            let text: &str = match value.as_str() {
                Some(s) => s,
                None => {
                    rendered = value.string_value();
                    &rendered
                }
            };
            for token in text.split_whitespace() {
                if let Some(node) = self.store.lookup_id(doc, token) {
                    out.push(node);
                }
            }
        }
        ddo(&self.store, &out)
    }

    /// Evaluate the recursion body of an IFP with `var` bound to `value`
    /// (used by the fixpoint algorithms).
    pub(crate) fn eval_with_binding(
        &mut self,
        body: &Expr,
        env: &mut Environment,
        var: &str,
        value: Sequence,
    ) -> Result<Sequence> {
        let depth = env.depth();
        let var = self.names.intern(var);
        env.push(var, value);
        let result = self.eval_expr(body, env, None);
        env.truncate(depth);
        result
    }
}

/// Strip an (ignored) namespace prefix from a function name: `fn:count` →
/// `count`, `local:fix` → `fix`.
pub(crate) fn strip_prefix(name: &str) -> &str {
    match name.split_once(':') {
        Some((_, local)) => local,
        None => name,
    }
}

fn literal_item(lit: &Literal) -> Item {
    match lit {
        Literal::Integer(i) => Item::integer(*i),
        Literal::Double(d) => Item::double(*d),
        Literal::String(s) => Item::string(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Sequence {
        let mut store = NodeStore::new();
        let mut eval = Evaluator::new(&mut store);
        eval.eval_query_str(src).unwrap()
    }

    fn eval_err(src: &str) -> EvalError {
        let mut store = NodeStore::new();
        let mut eval = Evaluator::new(&mut store);
        eval.eval_query_str(src).unwrap_err()
    }

    fn eval_with_doc(doc: &str, src: &str) -> (NodeStore, Sequence) {
        let mut store = NodeStore::new();
        store.parse_document_with_uri("doc.xml", doc).unwrap();
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator.eval_query_str(src).unwrap();
        (store, result)
    }

    fn ints(seq: &Sequence) -> Vec<i64> {
        seq.iter()
            .map(|i| i.as_atomic().unwrap().to_integer().unwrap())
            .collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ints(&eval("1 + 2 * 3")), vec![7]);
        assert_eq!(ints(&eval("(1 + 2) * 3")), vec![9]);
        assert_eq!(ints(&eval("7 mod 4")), vec![3]);
        assert_eq!(ints(&eval("7 idiv 2")), vec![3]);
        assert_eq!(ints(&eval("-(3) + 5")), vec![2]);
    }

    #[test]
    fn sequences_and_ranges() {
        assert_eq!(ints(&eval("1 to 5")), vec![1, 2, 3, 4, 5]);
        assert_eq!(ints(&eval("(1, 2, (3, 4))")), vec![1, 2, 3, 4]);
        assert!(eval("()").is_empty());
        assert!(eval("5 to 1").is_empty());
    }

    #[test]
    fn flwor_evaluation() {
        assert_eq!(
            ints(&eval("for $x in 1 to 3 return $x * 10")),
            vec![10, 20, 30]
        );
        assert_eq!(
            ints(&eval("for $x at $i in (5, 6, 7) return $i")),
            vec![1, 2, 3]
        );
        assert_eq!(
            ints(&eval("for $x in 1 to 5 where $x mod 2 = 0 return $x")),
            vec![2, 4]
        );
        assert_eq!(ints(&eval("let $x := 4 return $x + 1")), vec![5]);
    }

    #[test]
    fn conditionals_and_quantifiers() {
        assert_eq!(ints(&eval("if (1 < 2) then 10 else 20")), vec![10]);
        assert_eq!(ints(&eval("if (()) then 10 else 20")), vec![20]);
        let t = eval("some $x in (1, 2, 3) satisfies $x > 2");
        assert_eq!(t.items()[0], Item::boolean(true));
        let f = eval("every $x in (1, 2, 3) satisfies $x > 2");
        assert_eq!(f.items()[0], Item::boolean(false));
    }

    #[test]
    fn comparisons_general_and_value() {
        assert_eq!(eval("(1, 2) = (2, 3)").items()[0], Item::boolean(true));
        assert_eq!(eval("(1, 2) = (5, 6)").items()[0], Item::boolean(false));
        assert_eq!(eval("1 eq 1").items()[0], Item::boolean(true));
        assert!(eval("() eq 1").is_empty());
        assert!(matches!(eval_err("(1, 2) eq 1"), EvalError::Type(_)));
    }

    #[test]
    fn logic_short_circuits() {
        // The rhs would raise an error if evaluated.
        assert_eq!(
            eval("false() and (1 idiv 0 = 1)").items()[0],
            Item::boolean(false)
        );
        assert_eq!(
            eval("true() or (1 idiv 0 = 1)").items()[0],
            Item::boolean(true)
        );
    }

    #[test]
    fn path_navigation_over_document() {
        let doc = "<curriculum><course code=\"c1\"><prerequisites><pre_code>c2</pre_code></prerequisites></course><course code=\"c2\"/></curriculum>";
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/curriculum/course");
        assert_eq!(result.len(), 2);
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')//pre_code");
        assert_eq!(result.len(), 1);
        let (store, result) = eval_with_doc(
            doc,
            "doc('doc.xml')//course[@code='c1']/prerequisites/pre_code",
        );
        assert_eq!(result.len(), 1);
        assert_eq!(store.string_value(result.nodes()[0]), "c2");
    }

    #[test]
    fn predicates_numeric_and_boolean() {
        let doc = "<r><i>1</i><i>2</i><i>3</i></r>";
        let (store, result) = eval_with_doc(doc, "doc('doc.xml')/r/i[2]");
        assert_eq!(store.string_value(result.nodes()[0]), "2");
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/i[. > 1]");
        assert_eq!(result.len(), 2);
        let (store, result) = eval_with_doc(doc, "(doc('doc.xml')/r/i)[last()]");
        assert_eq!(store.string_value(result.nodes()[0]), "3");
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/i[position() < 3]");
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn attribute_and_parent_axes() {
        let doc = "<r><a id=\"x\"><b/></a></r>";
        let (store, result) = eval_with_doc(doc, "doc('doc.xml')//a/@id");
        assert_eq!(result.len(), 1);
        assert_eq!(store.string_value(result.nodes()[0]), "x");
        let (store, result) = eval_with_doc(doc, "doc('doc.xml')//b/../@id");
        assert_eq!(store.string_value(result.nodes()[0]), "x");
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')//b/ancestor::r");
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn node_set_operations() {
        let doc = "<r><a/><b/><c/></r>";
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/a union doc('doc.xml')/r/b");
        assert_eq!(result.len(), 2);
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/* except doc('doc.xml')/r/b");
        assert_eq!(result.len(), 2);
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/* intersect doc('doc.xml')/r/b");
        assert_eq!(result.len(), 1);
        // Union removes duplicates and restores document order.
        let (store, result) = eval_with_doc(
            doc,
            "(doc('doc.xml')/r/c union doc('doc.xml')/r/a) union doc('doc.xml')/r/a",
        );
        assert_eq!(result.len(), 2);
        assert_eq!(store.name(result.nodes()[0]).unwrap().local, "a");
    }

    #[test]
    fn node_identity_and_order_comparisons() {
        let doc = "<r><a/><b/></r>";
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/a is doc('doc.xml')/r/a");
        assert_eq!(result.items()[0], Item::boolean(true));
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/a << doc('doc.xml')/r/b");
        assert_eq!(result.items()[0], Item::boolean(true));
        let (_, result) = eval_with_doc(doc, "doc('doc.xml')/r/a >> doc('doc.xml')/r/b");
        assert_eq!(result.items()[0], Item::boolean(false));
    }

    #[test]
    fn user_defined_functions_and_recursion() {
        let result = eval(
            "declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) };\nfact(5)",
        );
        assert_eq!(ints(&result), vec![120]);

        let result = eval("declare function twice($x) { ($x, $x) };\ncount(twice((1, 2, 3)))");
        assert_eq!(ints(&result), vec![6]);
    }

    #[test]
    fn runaway_recursion_is_bounded() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.options_mut().max_recursion_depth = 64;
        let err = evaluator
            .eval_query_str("declare function loop($n) { loop($n + 1) };\nloop(0)")
            .unwrap_err();
        assert!(matches!(err, EvalError::RecursionLimit(_)));
    }

    #[test]
    fn declared_variables_are_visible_in_functions() {
        let doc = "<r><a/></r>";
        let mut store = NodeStore::new();
        store.parse_document_with_uri("doc.xml", doc).unwrap();
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator
            .eval_query_str(
                "declare variable $d := doc('doc.xml');\n\
                 declare function f() { $d//a };\ncount(f())",
            )
            .unwrap();
        assert_eq!(ints(&result), vec![1]);
    }

    #[test]
    fn typeswitch_dispatches_on_kind() {
        let doc = "<r><a/>text</r>";
        let (_, result) = eval_with_doc(
            doc,
            "for $n in doc('doc.xml')/r/node() return typeswitch ($n) \
             case element(a) return 'elem' case text() return 'text' default return 'other'",
        );
        let strings: Vec<String> = result
            .iter()
            .map(|i| i.as_atomic().unwrap().string_value())
            .collect();
        assert_eq!(strings, vec!["elem", "text"]);
    }

    #[test]
    fn undefined_names_error_cleanly() {
        assert!(matches!(eval_err("$nope"), EvalError::UndefinedVariable(_)));
        assert!(matches!(
            eval_err("no-such-function(1)"),
            EvalError::UndefinedFunction { .. }
        ));
        assert!(matches!(
            eval_err("doc('missing.xml')"),
            EvalError::DocumentNotFound(_)
        ));
    }

    #[test]
    fn context_item_errors_when_absent() {
        assert!(matches!(eval_err("."), EvalError::MissingContextItem));
        assert!(matches!(eval_err("/r"), EvalError::MissingContextItem));
    }
}
