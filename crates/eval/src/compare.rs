//! Value/general comparisons, arithmetic, and the effective boolean value.
//!
//! These helpers are pure functions over atomized values; the evaluator
//! handles atomization and sequencing before calling in here.

use std::cmp::Ordering;

use xqy_parser::BinaryOp;
use xqy_xdm::{AtomicValue, Item, Sequence};

use crate::error::EvalError;
use crate::Result;

/// The effective boolean value of a sequence (XQuery `fn:boolean` rules):
/// empty → false; first item a node → true; a single atomic → its truth
/// value; anything else is a type error.
pub fn effective_boolean_value(seq: &Sequence) -> Result<bool> {
    if seq.is_empty() {
        return Ok(false);
    }
    // O(1) in both sequence representations (no item materialization).
    if seq.first_node().is_some() {
        return Ok(true);
    }
    if seq.len() == 1 {
        if let Some(Item::Atomic(a)) = seq.first() {
            return Ok(a.effective_boolean());
        }
    }
    Err(EvalError::Type(
        "effective boolean value of a sequence of multiple atomic values".into(),
    ))
}

/// Apply a value comparison (`eq`, `ne`, `lt`, `le`, `gt`, `ge`) to two
/// single atomic values.
pub fn value_compare(op: BinaryOp, lhs: &AtomicValue, rhs: &AtomicValue) -> Result<bool> {
    let ord = lhs.compare(rhs);
    let result = match op {
        BinaryOp::ValueEq => lhs.general_eq(rhs),
        BinaryOp::ValueNe => !lhs.general_eq(rhs),
        // NaN comparisons (ord == None): every ordered comparison is false.
        BinaryOp::ValueLt => ord == Some(Ordering::Less),
        BinaryOp::ValueLe => matches!(ord, Some(Ordering::Less | Ordering::Equal)),
        BinaryOp::ValueGt => ord == Some(Ordering::Greater),
        BinaryOp::ValueGe => matches!(ord, Some(Ordering::Greater | Ordering::Equal)),
        other => {
            return Err(EvalError::Type(format!(
                "operator {} is not a value comparison",
                other.symbol()
            )))
        }
    };
    Ok(result)
}

/// Apply a general comparison operator to two atomics (the per-pair test
/// inside the existential semantics of `=`, `<`, …).
pub fn general_pair_compare(op: BinaryOp, lhs: &AtomicValue, rhs: &AtomicValue) -> bool {
    match op {
        BinaryOp::GeneralEq => lhs.general_eq(rhs),
        BinaryOp::GeneralNe => !lhs.general_eq(rhs),
        BinaryOp::GeneralLt => matches!(lhs.compare(rhs), Some(Ordering::Less)),
        BinaryOp::GeneralLe => matches!(lhs.compare(rhs), Some(Ordering::Less | Ordering::Equal)),
        BinaryOp::GeneralGt => matches!(lhs.compare(rhs), Some(Ordering::Greater)),
        BinaryOp::GeneralGe => {
            matches!(lhs.compare(rhs), Some(Ordering::Greater | Ordering::Equal))
        }
        _ => false,
    }
}

/// Numeric binary arithmetic.  Integer arithmetic stays integral where the
/// XQuery type promotion rules allow it; `div` always yields a double,
/// `idiv` always an integer.
pub fn arithmetic(op: BinaryOp, lhs: &AtomicValue, rhs: &AtomicValue) -> Result<AtomicValue> {
    let both_integer =
        matches!(lhs, AtomicValue::Integer(_)) && matches!(rhs, AtomicValue::Integer(_));
    let l = lhs.to_double();
    let r = rhs.to_double();
    if l.is_nan() || r.is_nan() {
        // Arithmetic on non-numeric strings is a type error in XQuery.
        if !lhs.is_numeric()
            && !matches!(lhs, AtomicValue::Untyped(_))
            && !matches!(lhs, AtomicValue::String(_))
        {
            return Err(EvalError::Type(format!(
                "cannot apply {} to non-numeric value",
                op.symbol()
            )));
        }
    }
    let value = match op {
        BinaryOp::Add => {
            if both_integer {
                return int_arith(lhs, rhs, |a, b| a.checked_add(b), "+");
            }
            l + r
        }
        BinaryOp::Sub => {
            if both_integer {
                return int_arith(lhs, rhs, |a, b| a.checked_sub(b), "-");
            }
            l - r
        }
        BinaryOp::Mul => {
            if both_integer {
                return int_arith(lhs, rhs, |a, b| a.checked_mul(b), "*");
            }
            l * r
        }
        BinaryOp::Div => {
            if r == 0.0 {
                return Err(EvalError::Type("division by zero".into()));
            }
            l / r
        }
        BinaryOp::IDiv => {
            if r == 0.0 {
                return Err(EvalError::Type("integer division by zero".into()));
            }
            return Ok(AtomicValue::Integer((l / r).trunc() as i64));
        }
        BinaryOp::Mod => {
            if both_integer {
                return int_arith(
                    lhs,
                    rhs,
                    |a, b| if b == 0 { None } else { Some(a % b) },
                    "mod",
                );
            }
            if r == 0.0 {
                return Err(EvalError::Type("modulo by zero".into()));
            }
            l % r
        }
        other => {
            return Err(EvalError::Type(format!(
                "operator {} is not an arithmetic operator",
                other.symbol()
            )))
        }
    };
    Ok(AtomicValue::Double(value))
}

fn int_arith(
    lhs: &AtomicValue,
    rhs: &AtomicValue,
    f: impl Fn(i64, i64) -> Option<i64>,
    sym: &str,
) -> Result<AtomicValue> {
    let (AtomicValue::Integer(a), AtomicValue::Integer(b)) = (lhs, rhs) else {
        unreachable!("int_arith called with non-integer operands");
    };
    f(*a, *b)
        .map(AtomicValue::Integer)
        .ok_or_else(|| EvalError::Type(format!("integer overflow or division by zero in {sym}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebv_rules() {
        assert!(!effective_boolean_value(&Sequence::empty()).unwrap());
        assert!(effective_boolean_value(&Sequence::singleton(Item::boolean(true))).unwrap());
        assert!(!effective_boolean_value(&Sequence::singleton(Item::integer(0))).unwrap());
        assert!(effective_boolean_value(&Sequence::singleton(Item::string("x"))).unwrap());
        let multi = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(effective_boolean_value(&multi).is_err());
    }

    #[test]
    fn value_comparisons() {
        let a = AtomicValue::Integer(3);
        let b = AtomicValue::Integer(5);
        assert!(value_compare(BinaryOp::ValueLt, &a, &b).unwrap());
        assert!(value_compare(BinaryOp::ValueNe, &a, &b).unwrap());
        assert!(!value_compare(BinaryOp::ValueGe, &a, &b).unwrap());
        let s1 = AtomicValue::String("abc".into());
        let s2 = AtomicValue::String("abd".into());
        assert!(value_compare(BinaryOp::ValueLt, &s1, &s2).unwrap());
        // NaN never compares less/greater.
        let nan = AtomicValue::Double(f64::NAN);
        assert!(!value_compare(BinaryOp::ValueLt, &nan, &b).unwrap());
        assert!(!value_compare(BinaryOp::ValueGt, &nan, &b).unwrap());
    }

    #[test]
    fn general_pair_comparisons_promote_untyped() {
        let untyped = AtomicValue::Untyped("10".into());
        assert!(general_pair_compare(
            BinaryOp::GeneralEq,
            &untyped,
            &AtomicValue::Integer(10)
        ));
        assert!(general_pair_compare(
            BinaryOp::GeneralGt,
            &untyped,
            &AtomicValue::Integer(9)
        ));
        assert!(general_pair_compare(
            BinaryOp::GeneralNe,
            &AtomicValue::String("a".into()),
            &AtomicValue::String("b".into())
        ));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let a = AtomicValue::Integer(7);
        let b = AtomicValue::Integer(2);
        assert_eq!(
            arithmetic(BinaryOp::Add, &a, &b).unwrap(),
            AtomicValue::Integer(9)
        );
        assert_eq!(
            arithmetic(BinaryOp::Mul, &a, &b).unwrap(),
            AtomicValue::Integer(14)
        );
        assert_eq!(
            arithmetic(BinaryOp::Mod, &a, &b).unwrap(),
            AtomicValue::Integer(1)
        );
        assert_eq!(
            arithmetic(BinaryOp::IDiv, &a, &b).unwrap(),
            AtomicValue::Integer(3)
        );
        // div always yields a double.
        assert_eq!(
            arithmetic(BinaryOp::Div, &a, &b).unwrap(),
            AtomicValue::Double(3.5)
        );
    }

    #[test]
    fn arithmetic_errors() {
        let a = AtomicValue::Integer(1);
        let zero = AtomicValue::Integer(0);
        assert!(arithmetic(BinaryOp::Div, &a, &zero).is_err());
        assert!(arithmetic(BinaryOp::IDiv, &a, &zero).is_err());
        assert!(arithmetic(BinaryOp::Mod, &a, &zero).is_err());
        assert!(arithmetic(BinaryOp::Union, &a, &zero).is_err());
        let huge = AtomicValue::Integer(i64::MAX);
        assert!(arithmetic(BinaryOp::Add, &huge, &a).is_err());
    }

    #[test]
    fn untyped_strings_participate_in_arithmetic() {
        let untyped = AtomicValue::Untyped("4".into());
        let two = AtomicValue::Integer(2);
        assert_eq!(
            arithmetic(BinaryOp::Add, &untyped, &two).unwrap(),
            AtomicValue::Double(6.0)
        );
    }
}
