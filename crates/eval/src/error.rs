//! Evaluation (dynamic) errors.

use std::fmt;

use xqy_parser::ParseError;
use xqy_xdm::XdmError;

/// A dynamic error raised during query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to a variable that is not in scope.
    UndefinedVariable(String),
    /// Call to an unknown function, or with the wrong number of arguments.
    UndefinedFunction {
        /// The function name as written.
        name: String,
        /// The number of arguments supplied.
        arity: usize,
    },
    /// A type error: an operation received a value of the wrong kind
    /// (e.g. a path step applied to an atomic value).
    Type(String),
    /// `fn:doc` could not resolve a document URI.
    DocumentNotFound(String),
    /// The context item was required but absent.
    MissingContextItem,
    /// The inflationary fixed point did not converge within the configured
    /// iteration / node limits (Definition 2.1: the IFP is *undefined*).
    NoFixpoint {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Limit that was exceeded (`"iterations"` or `"nodes"`).
        limit: String,
    },
    /// An error bubbled up from the data-model layer.
    Xdm(String),
    /// An embedded query string failed to parse.
    Parse(String),
    /// Evaluation exceeded the configured recursion depth for user-defined
    /// functions.
    RecursionLimit(usize),
    /// A fixpoint interceptor (an alternative fixpoint back-end installed by
    /// a higher layer, e.g. the algebraic executor) failed.
    Backend(String),
    /// The cooperative deadline (`EvalOptions::deadline`) passed while a
    /// fixpoint driver was iterating.  Deadlines are checked at the same
    /// iteration barrier as the iteration / node-count limits, so a
    /// timed-out query aborts between iterations, never mid-mutation.
    DeadlineExceeded {
        /// Recursion variable of the fixpoint occurrence that hit the
        /// deadline (empty when the deadline fired outside any occurrence).
        occurrence: String,
        /// Iterations that occurrence had completed when the deadline hit.
        iterations: usize,
    },
    /// A per-query resource budget (`ResourceLimits`) was exhausted at an
    /// iteration barrier: approximate memory accounting, the result-node
    /// cap, or the budgeted iteration cap.  Raised only after graceful
    /// degradation (memo/cache release, sequential fallback) failed to
    /// bring usage back under the limit.
    BudgetExceeded {
        /// Which budget: `"memory"`, `"result-nodes"` or `"iterations"`.
        budget: String,
        /// Approximate usage when the check failed.
        used: u64,
        /// The configured limit.
        limit: u64,
        /// Recursion variable of the occurrence whose barrier tripped.
        occurrence: String,
        /// Iterations that occurrence had completed.
        iterations: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalError::UndefinedFunction { name, arity } => {
                write!(f, "undefined function {name}#{arity}")
            }
            EvalError::Type(msg) => write!(f, "type error: {msg}"),
            EvalError::DocumentNotFound(uri) => write!(f, "document not found: {uri}"),
            EvalError::MissingContextItem => write!(f, "context item is undefined"),
            EvalError::NoFixpoint { iterations, limit } => write!(
                f,
                "inflationary fixed point is undefined (exceeded {limit} limit after {iterations} iterations)"
            ),
            EvalError::Xdm(msg) => write!(f, "data model error: {msg}"),
            EvalError::Parse(msg) => write!(f, "parse error: {msg}"),
            EvalError::RecursionLimit(depth) => {
                write!(f, "user-defined function recursion exceeded depth {depth}")
            }
            EvalError::Backend(msg) => write!(f, "fixpoint back-end error: {msg}"),
            EvalError::DeadlineExceeded {
                occurrence,
                iterations,
            } => {
                write!(f, "query deadline exceeded")?;
                if !occurrence.is_empty() {
                    write!(f, " in fixpoint of ${occurrence} after {iterations} iterations")?;
                }
                Ok(())
            }
            EvalError::BudgetExceeded {
                budget,
                used,
                limit,
                occurrence,
                iterations,
            } => {
                write!(f, "{budget} budget exceeded ({used} used, limit {limit})")?;
                if !occurrence.is_empty() {
                    write!(f, " in fixpoint of ${occurrence} after {iterations} iterations")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<XdmError> for EvalError {
    fn from(value: XdmError) -> Self {
        EvalError::Xdm(value.to_string())
    }
}

impl From<ParseError> for EvalError {
    fn from(value: ParseError) -> Self {
        EvalError::Parse(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(EvalError::UndefinedVariable("x".into())
            .to_string()
            .contains("$x"));
        assert!(EvalError::UndefinedFunction {
            name: "foo".into(),
            arity: 2
        }
        .to_string()
        .contains("foo#2"));
        assert!(EvalError::NoFixpoint {
            iterations: 10,
            limit: "nodes".into()
        }
        .to_string()
        .contains("undefined"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let xdm = XdmError::DanglingNode("n".into());
        let err: EvalError = xdm.into();
        assert!(matches!(err, EvalError::Xdm(_)));
    }
}
