//! Node construction: direct and computed constructors.
//!
//! Every invocation of a constructor creates **fresh node identities** — the
//! property that makes constructors non-distributive (Section 3.2 of the
//! paper: `text { "c" }` is not set-equal to
//! `for $y in $x return text { "c" }`) and that can make an inflationary
//! fixed point undefined (the node domain keeps growing).

use xqy_parser::ast::{ConstructorContent, Expr};
use xqy_xdm::{Item, NodeId, NodeKind, QName, Sequence};

use crate::context::{Environment, Focus};
use crate::error::EvalError;
use crate::evaluator::Evaluator;
use crate::Result;

/// Evaluate a constructor expression.
pub fn construct(
    eval: &mut Evaluator<'_>,
    expr: &Expr,
    env: &mut Environment,
    focus: Option<&Focus>,
) -> Result<Sequence> {
    match expr {
        Expr::DirectElement {
            name,
            attributes,
            content,
        } => {
            let frag = eval.store.new_fragment();
            let element = eval.store.create_element(frag, QName::parse(name));
            for (attr_name, parts) in attributes {
                let value = constructor_parts_string(eval, parts, env, focus)?;
                eval.store
                    .add_attribute(element, QName::parse(attr_name), value)?;
            }
            for part in content {
                match part {
                    ConstructorContent::Text(text) => {
                        let t = eval.store.create_text(frag, text.clone());
                        eval.store.append_child(element, t)?;
                    }
                    ConstructorContent::Expr(e) => {
                        let value = eval.eval_expr(e, env, focus)?;
                        append_content(eval, element, &value)?;
                    }
                }
            }
            Ok(Sequence::from_nodes(vec![element]))
        }
        Expr::ComputedElement { name, content } => {
            let value = eval.eval_expr(content, env, focus)?;
            let frag = eval.store.new_fragment();
            let element = eval.store.create_element(frag, QName::parse(name));
            append_content(eval, element, &value)?;
            Ok(Sequence::from_nodes(vec![element]))
        }
        Expr::ComputedAttribute { name, content } => {
            let value = eval.eval_expr(content, env, focus)?;
            let text = sequence_to_string(eval, &value);
            let frag = eval.store.new_fragment();
            // A parentless attribute node: create a placeholder element to
            // own it is *not* correct (the attribute would get a parent), so
            // we store the attribute as the root of its own fragment.
            let attr = create_detached_attribute(eval, frag, name, text);
            Ok(Sequence::from_nodes(vec![attr]))
        }
        Expr::ComputedText { content } => {
            let value = eval.eval_expr(content, env, focus)?;
            let text = sequence_to_string(eval, &value);
            let frag = eval.store.new_fragment();
            let node = eval.store.create_text(frag, text);
            Ok(Sequence::from_nodes(vec![node]))
        }
        other => Err(EvalError::Type(format!(
            "not a constructor expression: {other:?}"
        ))),
    }
}

fn create_detached_attribute(
    eval: &mut Evaluator<'_>,
    frag: xqy_xdm::DocId,
    name: &str,
    value: String,
) -> NodeId {
    // The store only creates attributes attached to elements; emulate a
    // detached attribute by creating a scratch element and taking its
    // attribute node (the scratch element is unreachable from queries).
    let scratch = eval
        .store
        .create_element(frag, QName::local("fn:attr-holder"));
    eval.store
        .add_attribute(scratch, QName::parse(name), value)
        .expect("scratch element accepts attributes")
}

/// Append evaluated content to an element under construction: nodes are
/// deep-copied (fresh identities), attribute nodes become attributes,
/// adjacent atomic values merge into a single text node separated by spaces.
fn append_content(eval: &mut Evaluator<'_>, element: NodeId, value: &Sequence) -> Result<()> {
    let frag = xqy_xdm::DocId(element.doc);
    let mut pending_text = String::new();
    for item in value.iter() {
        match item {
            Item::Atomic(a) => {
                if !pending_text.is_empty() {
                    pending_text.push(' ');
                }
                match a.as_str() {
                    Some(s) => pending_text.push_str(s),
                    None => pending_text.push_str(&a.string_value()),
                }
            }
            Item::Node(n) => {
                if !pending_text.is_empty() {
                    let t = eval
                        .store
                        .create_text(frag, std::mem::take(&mut pending_text));
                    eval.store.append_child(element, t)?;
                }
                match eval.store.kind(*n).clone() {
                    NodeKind::Attribute(name, attr_value) => {
                        // The payload symbol already lives in this store's
                        // pool — re-attach it without resolving.
                        eval.store
                            .add_attribute_interned(element, name, attr_value)?;
                    }
                    NodeKind::Document => {
                        for child in eval.store.children(*n) {
                            let copy = eval.store.deep_copy(child, frag);
                            eval.store.append_child(element, copy)?;
                        }
                    }
                    _ => {
                        let copy = eval.store.deep_copy(*n, frag);
                        eval.store.append_child(element, copy)?;
                    }
                }
            }
        }
    }
    if !pending_text.is_empty() {
        let t = eval.store.create_text(frag, pending_text);
        eval.store.append_child(element, t)?;
    }
    Ok(())
}

fn constructor_parts_string(
    eval: &mut Evaluator<'_>,
    parts: &[ConstructorContent],
    env: &mut Environment,
    focus: Option<&Focus>,
) -> Result<String> {
    let mut out = String::new();
    for part in parts {
        match part {
            ConstructorContent::Text(t) => out.push_str(t),
            ConstructorContent::Expr(e) => {
                let value = eval.eval_expr(e, env, focus)?;
                out.push_str(&sequence_to_string(eval, &value));
            }
        }
    }
    Ok(out)
}

fn sequence_to_string(eval: &Evaluator<'_>, value: &Sequence) -> String {
    value
        .iter()
        .map(|item| eval.item_string(item))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::{serialize::serialize_node, NodeStore};

    fn eval_to_xml(src: &str) -> String {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator.eval_query_str(src).unwrap();
        let node = result.nodes()[0];
        serialize_node(&store, node)
    }

    #[test]
    fn direct_element_with_text_and_nested_elements() {
        assert_eq!(
            eval_to_xml("<a x=\"1\">hi<b/></a>"),
            "<a x=\"1\">hi<b/></a>"
        );
    }

    #[test]
    fn enclosed_expressions_are_evaluated() {
        assert_eq!(
            eval_to_xml("<a n=\"{ 1 + 1 }\">{ 2 + 3 }</a>"),
            "<a n=\"2\">5</a>"
        );
    }

    #[test]
    fn computed_constructors() {
        assert_eq!(eval_to_xml("element out { 1 + 1 }"), "<out>2</out>");
        assert_eq!(eval_to_xml("text { 'c' }"), "c");
    }

    #[test]
    fn attribute_content_nodes_become_attributes() {
        let xml = eval_to_xml("<p>{ attribute id { 42 } }</p>");
        assert_eq!(xml, "<p id=\"42\"/>");
    }

    #[test]
    fn adjacent_atomics_merge_with_spaces() {
        assert_eq!(eval_to_xml("<a>{ (1, 2, 3) }</a>"), "<a>1 2 3</a>");
    }

    #[test]
    fn copied_content_gets_fresh_identity() {
        let mut store = NodeStore::new();
        store
            .parse_document_with_uri("d.xml", "<r><x><y/></x></r>")
            .unwrap();
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator
            .eval_query_str(
                "let $x := doc('d.xml')/r/x return <wrap>{ $x }</wrap>/x is doc('d.xml')/r/x",
            )
            .unwrap();
        assert_eq!(result.items()[0], Item::boolean(false));
    }

    #[test]
    fn constructors_create_distinct_identities_each_time() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        // The same constructor evaluated twice yields different nodes; this
        // is what breaks distributivity for constructor payloads.
        let result = evaluator
            .eval_query_str("count(distinct-values((text { 'c' } is text { 'c' })))")
            .unwrap();
        assert_eq!(result.len(), 1);
        let result = evaluator
            .eval_query_str("text { 'c' } is text { 'c' }")
            .unwrap();
        assert_eq!(result.items()[0], Item::boolean(false));
    }
}
