//! The inflationary fixed point runtime: algorithms *Naïve* and *Delta*.
//!
//! This module implements Figure 3 of the paper:
//!
//! ```text
//! (a) Naïve                          (b) Delta
//! res ← e_rec(e_seed);               res ← e_rec(e_seed);
//! do                                 ∆ ← res;
//!   res ← e_rec(res) union res;      do
//! while res grows;                     ∆ ← e_rec(∆) except res;
//!                                      res ← ∆ union res;
//!                                    while res grows;
//! ```
//!
//! Both algorithms record the statistics Table 2 of the paper reports:
//! the recursion depth (number of iterations) and the **total number of
//! nodes fed back** into the recursion body `e_rec`.
//!
//! Delta is only a safe replacement for Naïve when the recursion body is
//! *distributive* for the recursion variable (Theorem 3.2); the runtime does
//! not check this — strategy selection is the caller's (or `xqy-ifp`'s
//! `Auto` mode's) responsibility.  Example 2.4 of the paper, where the two
//! algorithms genuinely differ, is reproduced in the tests below.

use xqy_parser::ast::Expr;
use xqy_xdm::{shard, NodeId, NodeSet, NodeStore, Sequence};

use crate::context::Environment;
use crate::error::EvalError;
use crate::evaluator::Evaluator;
use crate::Result;

/// Which algorithm evaluates `with … seeded by … recurse`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FixpointStrategy {
    /// Figure 3(a): feed the entire accumulated result back each iteration.
    #[default]
    Naive,
    /// Figure 3(b): feed only the newly discovered nodes back each iteration.
    Delta,
}

impl FixpointStrategy {
    /// Human-readable name (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            FixpointStrategy::Naive => "Naive",
            FixpointStrategy::Delta => "Delta",
        }
    }
}

/// Which engine actually drove one fixed point computation.
///
/// The interpreter runs fixpoints itself by default; a
/// [`FixpointInterceptor`] installed by a higher layer (the `xqy_ifp`
/// prepared-query machinery) may instead drive a pre-compiled algebraic plan
/// through the relational back-end.  The tag records which one happened so
/// per-occurrence statistics stay attributable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FixpointBackendTag {
    /// The source-level interpreter evaluated the recursion body per
    /// iteration (the paper's "Saxon role").
    #[default]
    Interpreted,
    /// A pre-compiled algebraic plan was driven by the relational executor
    /// (the paper's "MonetDB/Pathfinder role").
    Algebraic,
}

impl FixpointBackendTag {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FixpointBackendTag::Interpreted => "interpreted",
            FixpointBackendTag::Algebraic => "algebraic",
        }
    }
}

/// A hook that may take over the evaluation of an IFP occurrence.
///
/// The evaluator calls the hook once per `with … seeded by … recurse`
/// evaluation, after the seed expression has been evaluated to a node set.
/// Returning `None` declines the occurrence (the interpreter then runs the
/// Naïve/Delta algorithms itself); returning `Some(result)` supplies the
/// fixpoint result and its statistics.  `xqy_ifp` uses this to execute
/// occurrences whose bodies were pre-compiled to algebraic plans on the
/// relational back-end, without re-entering the interpreter per iteration.
pub trait FixpointInterceptor {
    /// Attempt to run the fixpoint for `(var, body)` seeded by `seed`.
    ///
    /// `store` is the evaluator's store handle — exclusive or copy-on-write
    /// (see [`StoreMut`](xqy_xdm::StoreMut)); implementors that construct
    /// nodes write through it like a `&mut NodeStore`.
    fn run_fixpoint(
        &mut self,
        store: xqy_xdm::StoreMut<'_>,
        var: &str,
        body: &Expr,
        seed: &[NodeId],
        seed_in_result: bool,
    ) -> Option<Result<(Vec<NodeId>, FixpointStats)>>;

    /// Attempt to run **one fixpoint per seed of `seeds`** as a single
    /// batched multi-source fixpoint (see
    /// [`Evaluator::run_fixpoint_batched`](crate::Evaluator::run_fixpoint_batched)).
    ///
    /// On success the result holds one node list per seed, index-aligned
    /// with `seeds`, each equal to what a separate
    /// [`run_fixpoint`](Self::run_fixpoint) over that singleton seed would
    /// return, plus one [`FixpointStats`] for the whole batch (with
    /// [`FixpointStats::batch_seeds`] set).  `seeds` are distinct — the
    /// caller deduplicates.
    ///
    /// The default declines every occurrence, which routes the evaluator to
    /// its per-seed fallback: per-seed interception where available, the
    /// source-level Naïve/Delta algorithms otherwise.  Implementors decline
    /// (return `None`) when the occurrence has no batchable plan — e.g. a
    /// body outside the seed-local subset, or an `id()`-using body whose
    /// seeds span documents.
    fn run_fixpoint_batched(
        &mut self,
        store: xqy_xdm::StoreMut<'_>,
        var: &str,
        body: &Expr,
        seeds: &[NodeId],
        seed_in_result: bool,
    ) -> Option<Result<(Vec<Vec<NodeId>>, FixpointStats)>> {
        let _ = (store, var, body, seeds, seed_in_result);
        None
    }
}

/// An observer a higher layer may attach to a fixpoint occurrence (see
/// [`Evaluator::set_fixpoint_observer_for`](crate::Evaluator::set_fixpoint_observer_for)):
/// it receives every recorded [`FixpointStats`] for that occurrence —
/// whichever back-end produced it — right after the run finishes.  The
/// `xqy_ifp` cost model uses this to feed observed iteration depth, result
/// size and wall time back into its per-occurrence feedback cells.
pub trait FixpointObserver: Send + Sync {
    /// Called once per recorded fixpoint run of the observed occurrence.
    fn observe(&self, stats: &FixpointStats);
}

/// Statistics of one fixed point computation.
#[derive(Debug, Clone, Eq, Default)]
pub struct FixpointStats {
    /// The strategy that was used.
    pub strategy: Option<FixpointStrategyTag>,
    /// Which back-end drove the computation.
    pub backend: FixpointBackendTag,
    /// Number of do-while iterations executed (the paper's
    /// "recursion depth").
    pub iterations: usize,
    /// Total number of nodes fed into the recursion body across all calls —
    /// the paper's "Total # of Nodes Fed Back" column.
    pub nodes_fed_back: u64,
    /// Number of invocations of the recursion body.
    pub payload_calls: usize,
    /// Size of the final result (number of nodes).
    pub result_size: usize,
    /// Static-cache hits during this run: rec-independent plan nodes whose
    /// table came back as a shared handle instead of being re-evaluated.
    /// Only the algebraic back-end has such a cache; interpreted runs
    /// report zero.
    pub static_cache_hits: u64,
    /// Rec-independent plan nodes actually evaluated during this run.  With
    /// a persistent executor this is non-zero only the first time a plan
    /// meets a store state; later runs (and later `execute()` calls of the
    /// same prepared query) report zero.
    pub static_plan_evals: u64,
    /// Number of seeds this run evaluated together as a **batched
    /// multi-source fixpoint** — `0` for an ordinary single-source run.
    /// When non-zero, `iterations` is the maximum per-seed recursion depth
    /// and `payload_calls` counts the *shared* body evaluations (one per
    /// batched iteration, however many seeds are still iterating).
    pub batch_seeds: usize,
    /// Nodes fed into each recursion-body call, in call order — the
    /// frontier-growth curve.  Deterministic for a given (query, store,
    /// seed) input at any thread count, so it takes part in equality.
    pub frontier_curve: Vec<u64>,
    /// Wall time of the run in microseconds.  **Excluded from equality**:
    /// the parallel ≡ sequential property tests compare whole stats
    /// structs, and wall time legitimately differs between runs.
    pub wall_micros: u64,
}

impl PartialEq for FixpointStats {
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy
            && self.backend == other.backend
            && self.iterations == other.iterations
            && self.nodes_fed_back == other.nodes_fed_back
            && self.payload_calls == other.payload_calls
            && self.result_size == other.result_size
            && self.static_cache_hits == other.static_cache_hits
            && self.static_plan_evals == other.static_plan_evals
            && self.batch_seeds == other.batch_seeds
            && self.frontier_curve == other.frontier_curve
    }
}

/// A copyable tag mirroring [`FixpointStrategy`] for inclusion in stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixpointStrategyTag {
    /// Naïve algorithm.
    Naive,
    /// Delta algorithm.
    Delta,
}

impl From<FixpointStrategy> for FixpointStrategyTag {
    fn from(value: FixpointStrategy) -> Self {
        match value {
            FixpointStrategy::Naive => FixpointStrategyTag::Naive,
            FixpointStrategy::Delta => FixpointStrategyTag::Delta,
        }
    }
}

/// Evaluate the IFP of `body` (with recursion variable `var`) seeded by
/// `seed`, using `strategy`.  Statistics are recorded on the evaluator.
pub fn evaluate_fixpoint(
    eval: &mut Evaluator<'_>,
    var: &str,
    seed: &Sequence,
    body: &Expr,
    env: &mut Environment,
    strategy: FixpointStrategy,
) -> Result<Sequence> {
    if !seed.all_nodes() {
        return Err(EvalError::Type(
            "the seed of an inflationary fixed point must be a node sequence".into(),
        ));
    }
    let started = std::time::Instant::now();
    let mut stats = FixpointStats {
        strategy: Some(strategy.into()),
        ..FixpointStats::default()
    };
    // Initial accumulation: Definition 2.1 starts from e_rec(e_seed); the
    // seed-inclusive reading (Example 2.4 / reflexive closure) starts from
    // the seed itself.  See `EvalOptions::seed_in_result`.
    let initial = if eval.options().seed_in_result {
        seed.nodes()
    } else {
        match call_payload(eval, var, &seed.nodes(), body, env, &mut stats) {
            Ok(nodes) => nodes,
            Err(err) => {
                stats.wall_micros = started.elapsed().as_micros() as u64;
                eval.record_fixpoint_run_for(var, body, stats);
                return Err(err);
            }
        }
    };
    let result = match strategy {
        FixpointStrategy::Naive => naive(eval, var, &initial, body, env, &mut stats),
        FixpointStrategy::Delta => delta(eval, var, &initial, body, env, &mut stats),
    };
    match result {
        Ok(nodes) => {
            stats.result_size = nodes.len();
            stats.wall_micros = started.elapsed().as_micros() as u64;
            eval.record_fixpoint_run_for(var, body, stats);
            Ok(Sequence::from_nodes(nodes))
        }
        Err(err) => {
            stats.wall_micros = started.elapsed().as_micros() as u64;
            eval.record_fixpoint_run_for(var, body, stats);
            Err(err)
        }
    }
}

/// One invocation of the recursion body: bind `var`, evaluate, require a
/// node-sequence result, update the fed-back counter.
fn call_payload(
    eval: &mut Evaluator<'_>,
    var: &str,
    input: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    stats: &mut FixpointStats,
) -> Result<Vec<NodeId>> {
    stats.nodes_fed_back += input.len() as u64;
    stats.frontier_curve.push(input.len() as u64);
    stats.payload_calls += 1;
    xqy_xdm::fail::point("alloc.sequence").map_err(|e| EvalError::Xdm(e.to_string()))?;
    let value =
        eval.eval_with_binding(body, env, var, Sequence::from_nodes(input.iter().copied()))?;
    if !value.all_nodes() {
        return Err(EvalError::Type(
            "the recursion body of an inflationary fixed point must return nodes".into(),
        ));
    }
    Ok(value.nodes())
}

fn check_limits(
    eval: &mut Evaluator<'_>,
    var: &str,
    stats: &FixpointStats,
    result_len: usize,
) -> Result<()> {
    xqy_xdm::fail::point("fixpoint.barrier").map_err(|e| EvalError::Backend(e.to_string()))?;
    let options = eval.options();
    if let Some(deadline) = options.deadline {
        if std::time::Instant::now() >= deadline {
            return Err(EvalError::DeadlineExceeded {
                occurrence: var.to_string(),
                iterations: stats.iterations,
            });
        }
    }
    if let Some(max) = options.budget_iterations {
        if stats.iterations >= max {
            return Err(EvalError::BudgetExceeded {
                budget: "iterations".into(),
                used: stats.iterations as u64,
                limit: max as u64,
                occurrence: var.to_string(),
                iterations: stats.iterations,
            });
        }
    }
    if stats.iterations >= options.max_fixpoint_iterations {
        return Err(EvalError::NoFixpoint {
            iterations: stats.iterations,
            limit: "iteration".into(),
        });
    }
    if let Some(max) = options.max_result_nodes {
        if result_len > max {
            return Err(EvalError::BudgetExceeded {
                budget: "result-nodes".into(),
                used: result_len as u64,
                limit: max as u64,
                occurrence: var.to_string(),
                iterations: stats.iterations,
            });
        }
    }
    if result_len > options.max_fixpoint_nodes {
        return Err(EvalError::NoFixpoint {
            iterations: stats.iterations,
            limit: "node".into(),
        });
    }
    if let Some(budget) = options.memory_budget.clone() {
        if budget.over_limit().is_some() {
            // Graceful degradation before failing (once per budget): trade
            // the store's recomputable memos for headroom and drop to
            // sequential sharding, then re-check.
            if budget.try_relieve() {
                let freed = eval.store_ref().release_memory();
                budget.credit(freed);
                eval.options_mut().fixpoint_threads = 1;
            }
            if let Some(used) = budget.over_limit() {
                return Err(EvalError::BudgetExceeded {
                    budget: "memory".into(),
                    used,
                    limit: budget.limit(),
                    occurrence: var.to_string(),
                    iterations: stats.iterations,
                });
            }
        }
    }
    Ok(())
}

/// Algorithm Naïve (Figure 3(a)), starting from the already-computed initial
/// accumulation `initial`.
///
/// The accumulator is a [`NodeSet`] bitset; `union` is word-parallel and
/// the `while res grows` test reduces to "did the step discover any node
/// outside `res`" — union with an inflationary operand changes the set
/// exactly when `step ∖ res` is non-empty, so no re-sort and no second
/// set is ever built.  The document-ordered `Vec` fed to the recursion
/// body is re-materialized only when the set actually grew.
fn naive(
    eval: &mut Evaluator<'_>,
    var: &str,
    initial: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    stats: &mut FixpointStats,
) -> Result<Vec<NodeId>> {
    let mut res = NodeSet::from_nodes(initial.iter().copied());
    let mut res_vec = res.to_vec(&eval.store);
    loop {
        check_limits(eval, var, stats, res.len())?;
        stats.iterations += 1;
        let step = call_payload(eval, var, &res_vec, body, env, stats)?;
        let mut fresh = NodeSet::from_nodes(step);
        fresh.except_in_place(&res);
        if fresh.is_empty() {
            return Ok(res_vec);
        }
        res.union_in_place(&fresh);
        res_vec = res.to_vec(&eval.store);
    }
}

/// Algorithm Delta (Figure 3(b)), starting from the already-computed initial
/// accumulation `initial`.
///
/// `∆ ← e_rec(∆) except res; res ← ∆ union res` — both on [`NodeSet`]
/// bitsets, so the per-iteration set algebra is word-parallel and the
/// termination test is an emptiness check.  Only the (usually small) `∆`
/// is materialized into document order per iteration, to feed the body.
fn delta(
    eval: &mut Evaluator<'_>,
    var: &str,
    initial: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    stats: &mut FixpointStats,
) -> Result<Vec<NodeId>> {
    let mut res = NodeSet::from_nodes(initial.iter().copied());
    let mut delta = res.clone();
    loop {
        check_limits(eval, var, stats, res.len())?;
        stats.iterations += 1;
        let delta_vec = delta.to_vec(&eval.store);
        let step = call_payload(eval, var, &delta_vec, body, env, stats)?;
        delta = NodeSet::from_nodes(step);
        delta.except_in_place(&res);
        if delta.is_empty() {
            return Ok(res.to_vec(&eval.store));
        }
        res.union_in_place(&delta);
    }
}

// ----------------------------------------------------------------------
// Batched multi-source source-level driver
// ----------------------------------------------------------------------

/// Evaluate **one inflationary fixpoint per seed of `seeds`** in a single
/// shared Figure-3 loop — the source-level counterpart of the algebraic
/// executor's batched `(seed, node)` driver.
///
/// Each seed keeps its own accumulator and frontier; one round of the
/// shared loop advances every still-growing seed by one iteration, and the
/// loop ends when every seed has reached its fixpoint.  Two evaluation
/// modes:
///
/// * **Shared** (`share_frontiers = true`, only sound for *distributive*
///   bodies — `e(X) = ⋃ₓ e({x})`, Theorem 3.2): the body is evaluated once
///   per **distinct** frontier node across all seeds and the images are
///   distributed to every owning seed.  Images are memoized across
///   iterations (the body is pure by precondition — the caller additionally
///   screens out constructor-containing bodies), so a node discovered by
///   several seeds in different rounds still costs one evaluation total.
/// * **Grouped** (`share_frontiers = false`): the body is evaluated on each
///   seed's own frontier, exactly as a per-seed loop would — correct for
///   every body, sharing only the environment setup and the loop
///   bookkeeping.
///
/// Returns one node list per seed, index-aligned with `seeds` (which must
/// be distinct — callers deduplicate), each equal to what
/// [`evaluate_fixpoint`] over that singleton seed returns.  One
/// [`FixpointStats`] entry is recorded for the whole batch:
/// [`FixpointStats::batch_seeds`]` = seeds.len()`, `iterations` is the
/// maximum per-seed recursion depth, `payload_calls` / `nodes_fed_back`
/// count the body evaluations actually performed (shared mode: one per
/// distinct frontier node; grouped mode: one per seed per round).
pub fn evaluate_fixpoint_batched(
    eval: &mut Evaluator<'_>,
    var: &str,
    seeds: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    strategy: FixpointStrategy,
    share_frontiers: bool,
) -> Result<Vec<Vec<NodeId>>> {
    let started = std::time::Instant::now();
    let mut stats = FixpointStats {
        strategy: Some(strategy.into()),
        backend: FixpointBackendTag::Interpreted,
        batch_seeds: seeds.len(),
        ..FixpointStats::default()
    };
    let result = if share_frontiers {
        batched_shared(eval, var, seeds, body, env, &mut stats)
    } else {
        batched_grouped(eval, var, seeds, body, env, strategy, &mut stats)
    };
    match result {
        Ok(groups) => {
            stats.result_size = groups.iter().map(Vec::len).sum();
            stats.wall_micros = started.elapsed().as_micros() as u64;
            eval.record_fixpoint_run_for(var, body, stats);
            Ok(groups)
        }
        Err(err) => {
            stats.wall_micros = started.elapsed().as_micros() as u64;
            eval.record_fixpoint_run_for(var, body, stats);
            Err(err)
        }
    }
}

/// The **shared** batched mode: distinct-frontier evaluation with a
/// cross-iteration image memo.  Precondition: the body is distributive and
/// pure (no constructors), so `e(X) = ⋃ₓ e({x})` and `e({x})` is stable
/// across re-evaluations — under which Naïve and Delta coincide, and
/// feeding each frontier node exactly once is equivalent to both.
fn batched_shared(
    eval: &mut Evaluator<'_>,
    var: &str,
    seeds: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    stats: &mut FixpointStats,
) -> Result<Vec<Vec<NodeId>>> {
    use std::collections::HashMap;

    /// One seed's loop state.
    struct SeedState {
        res: NodeSet,
        /// Nodes whose images have not been folded into `res` yet.
        frontier: Vec<NodeId>,
    }

    // node → image of the singleton body application, memoized for the
    // whole run (sound by the purity precondition).
    let mut images: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let ensure_image = |eval: &mut Evaluator<'_>,
                        env: &mut Environment,
                        stats: &mut FixpointStats,
                        node: NodeId,
                        images: &mut HashMap<NodeId, Vec<NodeId>>|
     -> Result<()> {
        if let std::collections::hash_map::Entry::Vacant(slot) = images.entry(node) {
            let img = call_payload(eval, var, &[node], body, env, stats)?;
            slot.insert(img);
        }
        Ok(())
    };

    // Initial accumulation per seed (see `evaluate_fixpoint`): the seed
    // itself under the seed-inclusive reading, e_rec({seed}) otherwise.
    let seed_in_result = eval.options().seed_in_result;
    let mut states = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let initial: Vec<NodeId> = if seed_in_result {
            vec![seed]
        } else {
            ensure_image(eval, env, stats, seed, &mut images)?;
            images[&seed].clone()
        };
        let res = NodeSet::from_nodes(initial.iter().copied());
        let frontier = res.iter().collect();
        states.push(SeedState { res, frontier });
    }

    loop {
        let active: Vec<usize> = (0..states.len())
            .filter(|&i| !states[i].frontier.is_empty())
            .collect();
        if active.is_empty() {
            break;
        }
        // The shared round counter stands in for each seed's iteration
        // count (a seed drops out the round it stabilizes, so its depth is
        // ≤ the rounds executed); the node limit applies to each seed's
        // accumulator individually — both as the per-seed loop enforces.
        let max_len = states.iter().map(|s| s.res.len()).max().unwrap_or(0);
        check_limits(eval, var, stats, max_len)?;
        stats.iterations += 1;
        // Evaluate every distinct frontier node not yet memoized, once.
        for &i in &active {
            for idx in 0..states[i].frontier.len() {
                let node = states[i].frontier[idx];
                ensure_image(eval, env, stats, node, &mut images)?;
            }
        }
        // Fold the images per seed: ∆ ← (⋃ images of frontier) ∖ res.
        // The memo is read-only during the fold, so the per-seed folds
        // shard across threads when `fixpoint_threads > 1` (a seed with an
        // empty frontier — i.e. not in `active` — is a no-op either way);
        // `threads == 1` runs inline on the caller thread.
        let threads = eval.options().fixpoint_threads;
        shard::for_each_shard(threads, &mut states, |_, chunk| {
            for state in chunk {
                if state.frontier.is_empty() {
                    continue;
                }
                let mut step = NodeSet::new();
                for node in &state.frontier {
                    step.extend(images[node].iter().copied());
                }
                step.except_in_place(&state.res);
                state.res.union_in_place(&step);
                state.frontier = step.iter().collect();
            }
        });
    }

    Ok(materialize_states(
        eval.options().fixpoint_threads,
        &eval.store,
        states.iter().map(|s| &s.res),
    ))
}

/// Materialize every seed's accumulator into document order, sharded
/// across `threads` when asked to (the store is only read here).
fn materialize_states<'a>(
    threads: usize,
    store: &NodeStore,
    sets: impl Iterator<Item = &'a NodeSet>,
) -> Vec<Vec<NodeId>> {
    let sets: Vec<&NodeSet> = sets.collect();
    shard::map_sharded(threads, &sets, |set| set.to_vec(store))
}

/// The **grouped** batched mode: per-seed body evaluations advanced in
/// lockstep rounds — exact for arbitrary (also non-distributive, also
/// constructing) bodies, since each seed sees precisely the evaluation
/// sequence its own per-seed loop would have performed.
fn batched_grouped(
    eval: &mut Evaluator<'_>,
    var: &str,
    seeds: &[NodeId],
    body: &Expr,
    env: &mut Environment,
    strategy: FixpointStrategy,
    stats: &mut FixpointStats,
) -> Result<Vec<Vec<NodeId>>> {
    /// One seed's loop state.
    struct SeedState {
        res: NodeSet,
        /// What the next body call is fed: the whole accumulator (Naïve) or
        /// the last iteration's novelty (Delta), in document order.
        frontier: Vec<NodeId>,
        done: bool,
    }

    let seed_in_result = eval.options().seed_in_result;
    let mut states = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let initial: Vec<NodeId> = if seed_in_result {
            vec![seed]
        } else {
            call_payload(eval, var, &[seed], body, env, stats)?
        };
        let res = NodeSet::from_nodes(initial.iter().copied());
        let frontier = res.to_vec(&eval.store);
        states.push(SeedState {
            res,
            frontier,
            done: false,
        });
    }

    loop {
        if states.iter().all(|s| s.done) {
            break;
        }
        // Same limit conventions as the shared mode: rounds stand in for
        // per-seed iterations, node limit per seed accumulator.
        let max_len = states.iter().map(|s| s.res.len()).max().unwrap_or(0);
        check_limits(eval, var, stats, max_len)?;
        stats.iterations += 1;
        for state in states.iter_mut().filter(|s| !s.done) {
            let step = call_payload(eval, var, &state.frontier, body, env, stats)?;
            let mut fresh = NodeSet::from_nodes(step);
            fresh.except_in_place(&state.res);
            if fresh.is_empty() {
                state.done = true;
                continue;
            }
            state.res.union_in_place(&fresh);
            state.frontier = match strategy {
                FixpointStrategy::Naive => state.res.to_vec(&eval.store),
                FixpointStrategy::Delta => fresh.to_vec(&eval.store),
            };
        }
    }

    Ok(materialize_states(
        eval.options().fixpoint_threads,
        &eval.store,
        states.iter().map(|s| &s.res),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::NodeStore;

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
        <course code="c5"><prerequisites><pre_code>c1</pre_code></prerequisites></course>
    </curriculum>"#;

    fn curriculum_store() -> NodeStore {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document_with_uri("curriculum.xml", CURRICULUM)
            .unwrap();
        store.register_id_attribute(doc, "code");
        store
    }

    const Q1: &str = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
                      recurse $x/id(./prerequisites/pre_code)";

    fn codes(store: &NodeStore, seq: &Sequence) -> Vec<String> {
        seq.nodes()
            .iter()
            .map(|&n| store.attribute_value(n, "code").unwrap().to_string())
            .collect()
    }

    #[test]
    fn naive_computes_transitive_prerequisites() {
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.set_fixpoint_strategy(FixpointStrategy::Naive);
        let result = evaluator.eval_query_str(Q1).unwrap();
        assert_eq!(codes(&store, &result), vec!["c2", "c3", "c4"]);
    }

    #[test]
    fn delta_matches_naive_on_distributive_body() {
        let mut store = curriculum_store();
        let naive_result = {
            let mut evaluator = Evaluator::new(&mut store);
            evaluator.set_fixpoint_strategy(FixpointStrategy::Naive);
            evaluator.eval_query_str(Q1).unwrap()
        };
        let mut store2 = curriculum_store();
        let delta_result = {
            let mut evaluator = Evaluator::new(&mut store2);
            evaluator.set_fixpoint_strategy(FixpointStrategy::Delta);
            evaluator.eval_query_str(Q1).unwrap()
        };
        assert_eq!(codes(&store, &naive_result), codes(&store2, &delta_result));
    }

    #[test]
    fn delta_feeds_fewer_nodes_than_naive() {
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.set_fixpoint_strategy(FixpointStrategy::Naive);
        evaluator.eval_query_str(Q1).unwrap();
        let naive_fed = evaluator.last_fixpoint_stats().unwrap().nodes_fed_back;

        let mut store2 = curriculum_store();
        let mut evaluator2 = Evaluator::new(&mut store2);
        evaluator2.set_fixpoint_strategy(FixpointStrategy::Delta);
        evaluator2.eval_query_str(Q1).unwrap();
        let delta_fed = evaluator2.last_fixpoint_stats().unwrap().nodes_fed_back;

        assert!(
            delta_fed < naive_fed,
            "Delta ({delta_fed}) should feed back fewer nodes than Naive ({naive_fed})"
        );
    }

    #[test]
    fn seed_node_in_a_cycle_is_included_when_reachable() {
        // c5 -> c1 -> {c2, c3}; c1 is in a cycle with nothing, but seeding
        // from c5 must reach c1 and its closure.
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator
            .eval_query_str(
                "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c5'] \
                 recurse $x/id(./prerequisites/pre_code)",
            )
            .unwrap();
        assert_eq!(codes(&store, &result), vec!["c1", "c2", "c3", "c4"]);
    }

    /// Example 2.4 / Query Q2 of the paper: a non-distributive recursion
    /// body on which Naïve and Delta genuinely disagree.
    const Q2: &str = "let $seed := (<a/>,<b><c><d/></c></b>) \
                      return with $x seeded by $seed \
                      recurse if (count($x/self::a)) then $x/* else ()";

    #[test]
    fn example_2_4_naive_and_delta_differ() {
        // The worked table of Example 2.4 accumulates from the seed itself
        // (its iteration-0 row lists (a,b)); enable that reading.
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.options_mut().seed_in_result = true;
        evaluator.set_fixpoint_strategy(FixpointStrategy::Naive);
        let naive_result = evaluator.eval_query_str(Q2).unwrap();
        // Naïve computes (a, b, c, d): 4 nodes.
        assert_eq!(naive_result.len(), 4);

        let mut store2 = NodeStore::new();
        let mut evaluator2 = Evaluator::new(&mut store2);
        evaluator2.options_mut().seed_in_result = true;
        evaluator2.set_fixpoint_strategy(FixpointStrategy::Delta);
        let delta_result = evaluator2.eval_query_str(Q2).unwrap();
        // Delta returns only (a, b, c): 3 nodes.
        assert_eq!(delta_result.len(), 3);
    }

    #[test]
    fn iteration_counts_match_paper_table_for_q2() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.options_mut().seed_in_result = true;
        evaluator.set_fixpoint_strategy(FixpointStrategy::Naive);
        evaluator.eval_query_str(Q2).unwrap();
        let naive_stats = evaluator.last_fixpoint_stats().unwrap().clone();
        // Paper's table: Naïve stabilises at iteration 3 (res_3 = res_2).
        assert_eq!(naive_stats.iterations, 3);

        let mut store2 = NodeStore::new();
        let mut evaluator2 = Evaluator::new(&mut store2);
        evaluator2.options_mut().seed_in_result = true;
        evaluator2.set_fixpoint_strategy(FixpointStrategy::Delta);
        evaluator2.eval_query_str(Q2).unwrap();
        let delta_stats = evaluator2.last_fixpoint_stats().unwrap().clone();
        // Delta stops after iteration 2 (∆ becomes empty).
        assert_eq!(delta_stats.iterations, 2);
    }

    #[test]
    fn definition_2_1_literal_reading_hides_the_divergence_on_q2() {
        // Under the literal Definition 2.1 (res₀ = e_rec(e_seed)) Q2's seed
        // nodes never enter the result: both algorithms agree on (c).  This
        // test documents why the seed-inclusive option exists.
        for strategy in [FixpointStrategy::Naive, FixpointStrategy::Delta] {
            let mut store = NodeStore::new();
            let mut evaluator = Evaluator::new(&mut store);
            evaluator.set_fixpoint_strategy(strategy);
            let result = evaluator.eval_query_str(Q2).unwrap();
            assert_eq!(result.len(), 1, "strategy {}", strategy.name());
        }
    }

    #[test]
    fn non_node_seed_is_rejected() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        let err = evaluator
            .eval_query_str("with $x seeded by (1, 2) recurse $x")
            .unwrap_err();
        assert!(matches!(err, EvalError::Type(_)));
    }

    #[test]
    fn non_node_payload_result_is_rejected() {
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        let err = evaluator
            .eval_query_str(
                "with $x seeded by doc('curriculum.xml')/curriculum/course recurse count($x)",
            )
            .unwrap_err();
        assert!(matches!(err, EvalError::Type(_)));
    }

    #[test]
    fn diverging_fixpoint_with_constructors_is_reported_undefined() {
        let mut store = NodeStore::new();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.options_mut().max_fixpoint_iterations = 50;
        // Each iteration constructs a brand new element, so the result keeps
        // growing: the IFP is undefined (Definition 2.1).
        let err = evaluator
            .eval_query_str("with $x seeded by <seed/> recurse ($x, <grow/>)")
            .unwrap_err();
        assert!(matches!(err, EvalError::NoFixpoint { .. }));
    }

    #[test]
    fn stats_record_result_size_and_payload_calls() {
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.set_fixpoint_strategy(FixpointStrategy::Delta);
        evaluator.eval_query_str(Q1).unwrap();
        let stats = evaluator.last_fixpoint_stats().unwrap();
        assert_eq!(stats.result_size, 3);
        assert!(stats.payload_calls >= 2);
        assert_eq!(stats.strategy, Some(FixpointStrategyTag::Delta));
    }

    #[test]
    fn fixpoint_equivalent_to_user_defined_fix_function() {
        // Figure 2 of the paper: the fix()/rec() template is equivalent to
        // the IFP form.  (The termination test is written as
        // `empty($res except $x)` — "no new nodes discovered" — which is the
        // reading consistent with Definition 2.1; the literal operand order
        // printed in the paper's figure does not terminate.)
        let fix_src = "declare function rec($cs) as node()* { $cs/id(./prerequisites/pre_code) };\n\
             declare function fix($x) as node()* {\n\
               let $res := rec($x) return if (empty($res except $x)) then $x else fix($res union $x)\n\
             };\n\
             let $seed := doc('curriculum.xml')/curriculum/course[@code='c1']\n\
             return fix(rec($seed))";
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        let via_fix = evaluator.eval_query_str(fix_src).unwrap();
        let via_ifp = evaluator.eval_query_str(Q1).unwrap();
        assert_eq!(codes(&store, &via_fix), codes(&store, &via_ifp));
    }

    #[test]
    fn fixpoint_equivalent_to_user_defined_delta_function() {
        // Figure 4 of the paper: the delta(·,·) user-defined function is a
        // drop-in replacement for fix(·) on distributive bodies.  The initial
        // call seeds the accumulator with rec($seed) so that the level-0
        // result is part of the answer (Figure 3(b): res ← e_rec(e_seed),
        // ∆ ← res).
        let delta_src =
            "declare function rec($cs) as node()* { $cs/id(./prerequisites/pre_code) };\n\
             declare function delta($x, $res) as node()* {\n\
               let $delta := rec($x) except $res\n\
               return if (empty($delta)) then $res else delta($delta, $delta union $res)\n\
             };\n\
             let $seed := doc('curriculum.xml')/curriculum/course[@code='c1']\n\
             return delta(rec($seed), rec($seed))";
        let mut store = curriculum_store();
        let mut evaluator = Evaluator::new(&mut store);
        let via_delta_udf = evaluator.eval_query_str(delta_src).unwrap();
        evaluator.set_fixpoint_strategy(FixpointStrategy::Delta);
        let via_ifp = evaluator.eval_query_str(Q1).unwrap();
        assert_eq!(codes(&store, &via_delta_udf), codes(&store, &via_ifp));
    }
}
