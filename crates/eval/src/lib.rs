#![warn(missing_docs)]

//! # xqy-eval — XQuery interpreter and IFP runtime
//!
//! A tree-walking interpreter for the XQuery subset produced by
//! [`xqy-parser`](xqy_parser), playing the role the Saxon processor plays in
//! the reproduced paper: a "source-level" engine that evaluates recursive
//! user-defined functions and the `with … seeded by … recurse` form directly
//! over the [`xqy-xdm`](xqy_xdm) data model.
//!
//! The crate contributes two things to the reproduction:
//!
//! 1. a faithful implementation of the **dynamic semantics** of the subset
//!    (sequences, node identity, document order, effective boolean values,
//!    general vs. value comparisons, node construction with fresh
//!    identities, and the built-in function library the paper's queries
//!    use); and
//! 2. the **inflationary fixed point runtime** ([`fixpoint`]) implementing
//!    both the *Naïve* and the *Delta* algorithm of Figure 3, with the
//!    statistics (iterations, nodes fed back into the recursion body) that
//!    Table 2 of the paper reports.
//!
//! The evaluator is built to be *driven by a prepared query*: external
//! variables are supplied up front with [`Evaluator::bind_global`], the
//! fixpoint algorithm can be chosen **per IFP occurrence** with
//! [`Evaluator::set_fixpoint_strategy_for`], and a
//! [`FixpointInterceptor`] may take over occurrences entirely (the
//! `xqy_ifp` crate uses this to drive pre-compiled algebraic plans).  A
//! parsed module is evaluated with [`Evaluator::eval_module`], so the
//! parse happens once however many times the module runs.
//!
//! ```
//! use xqy_xdm::NodeStore;
//! use xqy_eval::{Evaluator, FixpointStrategy};
//! use xqy_parser::parse_query;
//!
//! let mut store = NodeStore::new();
//! store
//!     .parse_document_with_uri(
//!         "curriculum.xml",
//!         r#"<curriculum>
//!              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
//!              <course code="c2"><prerequisites/></course>
//!            </curriculum>"#,
//!     )
//!     .unwrap();
//! store.register_id_attribute(store.doc("curriculum.xml").unwrap(), "code");
//!
//! // Parse once …
//! let module = parse_query(
//!     "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)",
//! ).unwrap();
//!
//! // … evaluate with `$seed` bound externally.
//! let mut eval = Evaluator::new(&mut store);
//! eval.set_fixpoint_strategy(FixpointStrategy::Delta);
//! let seed = eval
//!     .eval_query_str("doc('curriculum.xml')/curriculum/course[@code='c1']")
//!     .unwrap();
//! eval.bind_global("seed", seed);
//! let result = eval.eval_module(&module).unwrap();
//! assert_eq!(result.len(), 1); // course c2
//! ```

pub mod builtins;
pub mod compare;
pub mod construct;
pub mod context;
pub mod error;
pub mod evaluator;
pub mod fixpoint;

pub use context::{Environment, Focus};
pub use error::EvalError;
pub use evaluator::{EvalOptions, Evaluator};
pub use fixpoint::{
    FixpointBackendTag, FixpointInterceptor, FixpointObserver, FixpointStats, FixpointStrategy,
    FixpointStrategyTag,
};

/// Result alias for evaluation.
pub type Result<T> = std::result::Result<T, EvalError>;
