//! Dynamic evaluation context: variable environment and focus.

use xqy_xdm::{Item, Sequence, StrId};

/// The *focus* of evaluation: context item, context position and context
/// size (the `.`, `fn:position()` and `fn:last()` triple).
#[derive(Debug, Clone, PartialEq)]
pub struct Focus {
    /// The context item.
    pub item: Item,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
}

impl Focus {
    /// A focus for a single item (`position = size = 1`).
    pub fn single(item: Item) -> Self {
        Focus {
            item,
            position: 1,
            size: 1,
        }
    }
}

/// Variable bindings, managed as a stack of scopes.
///
/// Names are **interned**: every binding is keyed by a [`StrId`] issued by
/// the owning [`Evaluator`](crate::Evaluator)'s name pool, so a scope push
/// stores a `Copy` word instead of a `String` and a lookup scans integer
/// keys instead of comparing bytes frame by frame.  The evaluator resolves
/// a variable's name to its symbol once per reference (a single hash over
/// the pool); binders intern on push, which is free after first sight.
///
/// The evaluator pushes a binding before evaluating a binder's body and pops
/// it afterwards; lookups scan from the innermost binding outwards, which
/// gives the usual lexical shadowing behaviour for nested `for`/`let`
/// re-using a variable name.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    bindings: Vec<(StrId, Sequence)>,
}

impl Environment {
    /// An empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// An empty environment with room for `capacity` bindings.
    pub fn with_capacity(capacity: usize) -> Self {
        Environment {
            bindings: Vec::with_capacity(capacity),
        }
    }

    /// Number of live bindings (used by the evaluator to restore scopes).
    pub fn depth(&self) -> usize {
        self.bindings.len()
    }

    /// Push a binding for the interned name `name`.
    pub fn push(&mut self, name: StrId, value: Sequence) {
        self.bindings.push((name, value));
    }

    /// Pop bindings until only `depth` remain.
    pub fn truncate(&mut self, depth: usize) {
        self.bindings.truncate(depth);
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: StrId) -> Option<&Sequence> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// `true` if `name` is bound.
    pub fn is_bound(&self, name: StrId) -> bool {
        self.lookup(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::{Interner, Item};

    #[test]
    fn lookup_finds_innermost_binding() {
        let mut names = Interner::new();
        let x = names.intern("x");
        let y = names.intern("y");
        let z = names.intern("z");
        let mut env = Environment::new();
        env.push(x, Sequence::singleton(Item::integer(1)));
        env.push(y, Sequence::singleton(Item::integer(2)));
        env.push(x, Sequence::singleton(Item::integer(3)));
        assert_eq!(
            env.lookup(x).unwrap().items()[0],
            Item::integer(3),
            "inner binding shadows outer"
        );
        assert_eq!(env.lookup(y).unwrap().items()[0], Item::integer(2));
        assert!(env.lookup(z).is_none());
    }

    #[test]
    fn truncate_restores_previous_scope() {
        let mut names = Interner::new();
        let x = names.intern("x");
        let mut env = Environment::new();
        env.push(x, Sequence::singleton(Item::integer(1)));
        let depth = env.depth();
        env.push(x, Sequence::singleton(Item::integer(2)));
        env.truncate(depth);
        assert_eq!(env.lookup(x).unwrap().items()[0], Item::integer(1));
        assert!(env.is_bound(x));
    }

    #[test]
    fn focus_single_has_position_and_size_one() {
        let focus = Focus::single(Item::integer(9));
        assert_eq!(focus.position, 1);
        assert_eq!(focus.size, 1);
    }
}
