//! Dynamic evaluation context: variable environment and focus.

use xqy_xdm::{Item, Sequence};

/// The *focus* of evaluation: context item, context position and context
/// size (the `.`, `fn:position()` and `fn:last()` triple).
#[derive(Debug, Clone, PartialEq)]
pub struct Focus {
    /// The context item.
    pub item: Item,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
}

impl Focus {
    /// A focus for a single item (`position = size = 1`).
    pub fn single(item: Item) -> Self {
        Focus {
            item,
            position: 1,
            size: 1,
        }
    }
}

/// Variable bindings, managed as a stack of scopes.
///
/// The evaluator pushes a binding before evaluating a binder's body and pops
/// it afterwards; lookups scan from the innermost binding outwards, which
/// gives the usual lexical shadowing behaviour for nested `for`/`let`
/// re-using a variable name.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    bindings: Vec<(String, Sequence)>,
}

impl Environment {
    /// An empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Number of live bindings (used by the evaluator to restore scopes).
    pub fn depth(&self) -> usize {
        self.bindings.len()
    }

    /// Push a binding for `name`.
    pub fn push(&mut self, name: impl Into<String>, value: Sequence) {
        self.bindings.push((name.into(), value));
    }

    /// Pop bindings until only `depth` remain.
    pub fn truncate(&mut self, depth: usize) {
        self.bindings.truncate(depth);
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Sequence> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// `true` if `name` is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::Item;

    #[test]
    fn lookup_finds_innermost_binding() {
        let mut env = Environment::new();
        env.push("x", Sequence::singleton(Item::integer(1)));
        env.push("y", Sequence::singleton(Item::integer(2)));
        env.push("x", Sequence::singleton(Item::integer(3)));
        assert_eq!(
            env.lookup("x").unwrap().items()[0],
            Item::integer(3),
            "inner binding shadows outer"
        );
        assert_eq!(env.lookup("y").unwrap().items()[0], Item::integer(2));
        assert!(env.lookup("z").is_none());
    }

    #[test]
    fn truncate_restores_previous_scope() {
        let mut env = Environment::new();
        env.push("x", Sequence::singleton(Item::integer(1)));
        let depth = env.depth();
        env.push("x", Sequence::singleton(Item::integer(2)));
        env.truncate(depth);
        assert_eq!(env.lookup("x").unwrap().items()[0], Item::integer(1));
        assert!(env.is_bound("x"));
    }

    #[test]
    fn focus_single_has_position_and_size_one() {
        let focus = Focus::single(Item::integer(9));
        assert_eq!(focus.position, 1);
        assert_eq!(focus.size, 1);
    }
}
