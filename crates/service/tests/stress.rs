//! Concurrency stress test: ≥ 8 reader sessions execute mixed queries
//! against one [`QueryService`] while a writer keeps loading documents and
//! republishing snapshots.  Afterwards every recorded execution is
//! re-checked **sequentially** against the retained snapshot of the same
//! revision — results must be bit-identical, which both proves
//! determinism under concurrency and that no query ever observed a
//! half-published store (a torn read could not reproduce sequentially).
//!
//! Honors `XQY_FIXPOINT_THREADS` (CI runs this under `=4`), so the
//! batched fixpoint shards run *inside* each of the 8 concurrent sessions
//! too.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use xqy_datagen::curriculum::{self, CurriculumConfig};
use xqy_datagen::Scale;
use xqy_ifp::xdm::CowStore;
use xqy_ifp::{Backend, Bindings, ExecOptions, Parallelism, PreparedQuery, Strategy};
use xqy_service::{QueryService, ServiceConfig, ServiceError};

const READERS: usize = 8;
const ITERATIONS: usize = 24;

/// Mixed workload: deep and shallow IFP closures, a plain path, and a
/// construction body.  All self-contained (no external bindings) so every
/// session reuses the same cached plans.
const QUERIES: &[&str] = &[
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c99'] \
     recurse $x/id(./prerequisites/pre_code)",
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c50'] \
     recurse $x/id(./prerequisites/pre_code)",
    "with $x seeded by doc('curriculum.xml')/curriculum/course \
     recurse $x/id(./prerequisites/pre_code)",
    "doc('curriculum.xml')/curriculum/course[@code='c42']/prerequisites/pre_code",
    "with $x seeded by <a/> recurse $x",
];

/// One observation: which query ran, against which snapshot revision, and
/// what it produced (length + serialized form — the bit-identity witness).
struct Observation {
    query: usize,
    revision: u64,
    len: usize,
    display: String,
}

#[test]
fn concurrent_sessions_match_sequential_execution_per_revision() {
    let parallelism = Parallelism::from_env().unwrap_or_default();
    let service = Arc::new(QueryService::new(ServiceConfig {
        max_concurrent: READERS,
        max_queue: READERS,
        parallelism,
        ..ServiceConfig::default()
    }));
    let xml = curriculum::generate(&CurriculumConfig::for_scale(Scale::Small));
    service
        .load_document_with_ids("curriculum.xml", &xml, &["code"])
        .unwrap();

    // Retain every published snapshot, keyed by revision, for the
    // sequential re-check.
    let snapshots = Arc::new(Mutex::new(BTreeMap::new()));
    let initial = service.publish().unwrap();
    snapshots
        .lock()
        .unwrap()
        .insert(initial.revision, initial.clone());

    // Writer: keeps loading fresh documents and republishing while the
    // readers run.  Every publish moves the load epoch, so this also
    // exercises plan-cache invalidation under load.
    let writer = {
        let service = Arc::clone(&service);
        let snapshots = Arc::clone(&snapshots);
        thread::spawn(move || {
            for i in 0..6 {
                thread::sleep(Duration::from_millis(3));
                service
                    .load_document(&format!("extra_{i}.xml"), &format!("<extra n=\"{i}\"/>"))
                    .unwrap();
                let published = service.publish().unwrap();
                snapshots
                    .lock()
                    .unwrap()
                    .insert(published.revision, published);
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut observations = Vec::with_capacity(ITERATIONS);
                for i in 0..ITERATIONS {
                    // Mid-run, every reader fires one over-budget query: a
                    // rec-dependent constructor diverges until its 5 ms
                    // deadline.  The typed rejection must not disturb the
                    // session's other queries.
                    if i == ITERATIONS / 2 {
                        let err = service
                            .execute_with(
                                "with $x seeded by <a/> recurse (for $y in $x return <b/>)",
                                &Bindings::new(),
                                Some(Duration::from_millis(5)),
                            )
                            .expect_err("diverging query must hit its deadline");
                        assert!(
                            matches!(err, ServiceError::DeadlineExceeded { .. }),
                            "expected DeadlineExceeded, got {err:?}"
                        );
                    }
                    let query = (reader + i) % QUERIES.len();
                    let outcome = service
                        .execute(QUERIES[query])
                        .unwrap_or_else(|e| panic!("reader {reader} query {query}: {e}"));
                    observations.push(Observation {
                        query,
                        revision: outcome.stats.snapshot_revision,
                        len: outcome.outcome.result.len(),
                        display: outcome.display(),
                    });
                }
                observations
            })
        })
        .collect();

    let mut observations = Vec::new();
    for reader in readers {
        observations.extend(reader.join().unwrap());
    }
    writer.join().unwrap();

    // Every execution pinned an actually-published snapshot — a query that
    // had observed a half-published store would carry a revision no
    // publication ever produced.
    let snapshots = Arc::try_unwrap(snapshots).unwrap().into_inner().unwrap();
    for obs in &observations {
        assert!(
            snapshots.contains_key(&obs.revision),
            "query {} observed unpublished revision {}",
            obs.query,
            obs.revision
        );
    }

    // Bit-identity: re-execute each distinct (query, revision) pair
    // sequentially on the retained snapshot and demand the identical
    // serialized result from every concurrent observation of that pair.
    let mut canonical: BTreeMap<(usize, u64), (usize, String)> = BTreeMap::new();
    for obs in &observations {
        let (len, display) = canonical
            .entry((obs.query, obs.revision))
            .or_insert_with(|| {
                let snapshot = &snapshots[&obs.revision];
                let prepared = PreparedQuery::prepare(
                    QUERIES[obs.query],
                    Strategy::Auto,
                    Backend::Auto,
                    parallelism,
                )
                .unwrap();
                let mut cow = CowStore::new(Arc::clone(&snapshot.store));
                let outcome = prepared
                    .execute_on(&mut cow, &Bindings::new(), &ExecOptions::default())
                    .unwrap();
                let store = cow.into_arc();
                (outcome.result.len(), outcome.result.display(&store))
            });
        assert_eq!(
            (obs.len, &obs.display),
            (*len, &*display),
            "query {} at revision {} diverged from sequential execution",
            obs.query,
            obs.revision
        );
    }

    let counters = service.counters();
    assert_eq!(counters.succeeded, (READERS * ITERATIONS) as u64);
    assert_eq!(counters.deadline_exceeded, READERS as u64);
    assert_eq!(counters.saturated, 0);
    assert_eq!(counters.failed, 0);
    assert_eq!(counters.active, 0);
    // With 8 sessions sharing 5 query texts, preparation happened once per
    // (text, epoch) and everyone else hit the shared cache.
    assert!(
        counters.cache.hits >= 1,
        "expected cross-session plan-cache hits, got {:?}",
        counters.cache
    );
}
