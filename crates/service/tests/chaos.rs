//! Chaos suite: the PR 10 failure-domain acceptance tests.
//!
//! Everything here drives the *real* service through the deterministic
//! failpoint registry (`xqy_ifp::xdm::fail`):
//!
//! * **Panic containment** — an injected mid-query panic surfaces as the
//!   typed [`ServiceError::Internal`], after which 100 mixed queries are
//!   bit-identical to a fresh service and the counters return to idle.
//! * **Atomic publication** — a fault mid-clone or mid-refresh leaves the
//!   previous snapshot installed and the plan cache un-invalidated.
//! * **Memory budgets** — `max_memory_bytes` stops a runaway accumulator
//!   with [`ServiceError::ResourceExhausted`]; the same query unbudgeted
//!   succeeds.
//! * **Chaos stress** — the 8-reader/writer mix from `stress.rs` under a
//!   seeded fault matrix (`XQY_CHAOS_SEED`): no deadlock, no poisoned
//!   service, bit-identical results for every query that succeeded, and
//!   ≥ 5 distinct failpoint sites demonstrably firing.  Set
//!   `XQY_FAULT_REPORT=<path>` to get the per-site hit/fired coverage
//!   report (CI uploads it as an artifact).
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`FAULT_LOCK`] and disarms with `fail::reset()` before returning.
//! Honors `XQY_FIXPOINT_THREADS` (CI runs this under `=4`).  The
//! `shard.worker` site lives inside the scoped worker threads of the
//! *batched* multi-source drivers, a path only
//! [`PreparedQuery::execute_batched`] reaches (a seeded `recurse` through
//! the service is one fixpoint, not a per-seed batch), so its coverage
//! comes from the dedicated engine-level scenario below rather than the
//! service matrix.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::thread;
use std::time::Duration;

use xqy_datagen::curriculum::{self, CurriculumConfig};
use xqy_datagen::Scale;
use xqy_ifp::xdm::{budget, fail, CowStore, QueryBudget};
use xqy_ifp::{Backend, Bindings, Engine, ExecOptions, Parallelism, PreparedQuery, Strategy};
use xqy_service::{
    QueryService, ResourceLimits, RetryPolicy, ServiceConfig, ServiceError, ServiceOutcome,
};

/// Serializes tests that arm the process-global failpoint registry.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    // A failed test leaves the lock poisoned; the registry is reset on
    // entry anyway, so recover rather than cascade failures.
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fail::reset();
    guard
}

/// Keep expected injected panics out of the test output; everything else
/// still reaches the default hook.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied());
            if message.is_some_and(|m| m.contains("injected fault at")) {
                return;
            }
            default(info);
        }));
    });
}

const CURRICULUM_QUERIES: &[&str] = &[
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c99'] \
     recurse $x/id(./prerequisites/pre_code)",
    "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c50'] \
     recurse $x/id(./prerequisites/pre_code)",
    "with $x seeded by doc('curriculum.xml')/curriculum/course \
     recurse $x/id(./prerequisites/pre_code)",
    "doc('curriculum.xml')/curriculum/course[@code='c42']/prerequisites/pre_code",
    "with $x seeded by <a/> recurse $x",
];

fn service_with_generated_curriculum(config: ServiceConfig) -> QueryService {
    let service = QueryService::new(config);
    let xml = curriculum::generate(&CurriculumConfig::for_scale(Scale::Small));
    service
        .load_document_with_ids("curriculum.xml", &xml, &["code"])
        .unwrap();
    service.publish().unwrap();
    service
}

fn default_config() -> ServiceConfig {
    ServiceConfig {
        parallelism: Parallelism::from_env().unwrap_or_default(),
        ..ServiceConfig::default()
    }
}

/// Acceptance: an injected mid-query panic is contained as a typed
/// `Internal` error, and the next 100 mixed queries produce results
/// bit-identical to a fresh, never-panicked service, with the admission
/// counters back at idle.
#[test]
fn contained_panic_leaves_service_bit_identical_to_fresh() {
    quiet_injected_panics();
    let _guard = fault_guard();

    let chaos = service_with_generated_curriculum(default_config());
    let fresh = service_with_generated_curriculum(default_config());

    // Warm the plan so the panic hits a pooled executor fork — the exact
    // artifact that must be discarded, not reused, afterwards.
    chaos.execute(CURRICULUM_QUERIES[0]).unwrap();

    fail::configure(
        "fixpoint.barrier",
        fail::FaultAction::Panic,
        fail::FaultTrigger::OnNthHit(1),
    );
    let err = chaos
        .execute(CURRICULUM_QUERIES[0])
        .expect_err("injected panic must fail the query");
    match &err {
        ServiceError::Internal { message, context } => {
            assert!(
                message.contains("injected fault at fixpoint.barrier"),
                "panic payload lost: {message}"
            );
            assert!(
                context.contains("query"),
                "panic context should name the boundary: {context}"
            );
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    fail::reset();

    // 100 mixed queries, interleaved on both services, must agree bitwise.
    for i in 0..100 {
        let query = CURRICULUM_QUERIES[i % CURRICULUM_QUERIES.len()];
        let after = chaos.execute(query).unwrap_or_else(|e| {
            panic!("query {i} failed on the panicked-then-recovered service: {e}")
        });
        let reference = fresh.execute(query).unwrap();
        assert_eq!(
            after.outcome.result.len(),
            reference.outcome.result.len(),
            "query {i} length diverged after the contained panic"
        );
        assert_eq!(
            after.display(),
            reference.display(),
            "query {i} serialization diverged after the contained panic"
        );
    }

    let counters = chaos.counters();
    assert_eq!(counters.contained_panics, 1);
    assert_eq!(counters.succeeded, 101);
    assert_eq!(counters.active, 0, "admission slot leaked by the panic");
    assert_eq!(counters.queued, 0);
    // The published snapshot never moved: the panic was contained inside
    // one query's private failure domain.
    assert_eq!(chaos.published().revision, fresh.published().revision);
}

/// Satellite (a): publication is all-or-nothing.  A fault mid-clone or
/// mid-refresh must leave the previous snapshot installed and the plan
/// cache un-invalidated — including when the failure is a panic.
#[test]
fn failed_publish_leaves_previous_snapshot_and_cache_intact() {
    quiet_injected_panics();
    let _guard = fault_guard();

    let service = service_with_generated_curriculum(default_config());
    service.execute(CURRICULUM_QUERIES[0]).unwrap(); // seed the plan cache
    let before = service.published();
    let cached_before = service.counters().cache.entries;
    assert!(cached_before >= 1);

    // The writer moves the load epoch; were the failed publish not atomic,
    // the cache would be invalidated or a half-built snapshot installed.
    service.load_document("late.xml", "<late/>").unwrap();

    for (site, action) in [
        ("publish.clone", fail::FaultAction::Error),
        ("publish.refresh", fail::FaultAction::Error),
        ("publish.clone", fail::FaultAction::Panic),
        ("publish.refresh", fail::FaultAction::Panic),
    ] {
        fail::reset();
        fail::configure(site, action, fail::FaultTrigger::OnNthHit(1));
        let err = service
            .publish()
            .expect_err("injected publish fault must surface");
        assert!(
            matches!(err, ServiceError::Internal { .. }),
            "expected Internal from {site}, got {err:?}"
        );
        let now = service.published();
        assert_eq!(now.epoch, before.epoch, "{site}: snapshot replaced");
        assert_eq!(now.revision, before.revision, "{site}: snapshot replaced");
        assert_eq!(
            service.counters().cache.entries,
            cached_before,
            "{site}: cache invalidated by a publish that never happened"
        );
        // Queries keep executing against the intact old snapshot, from the
        // intact cache.
        let outcome = service.execute(CURRICULUM_QUERIES[0]).unwrap();
        assert_eq!(outcome.stats.snapshot_revision, before.revision);
    }
    fail::reset();

    // With faults cleared the pending load finally publishes, and the
    // epoch move invalidates the cache exactly once, as normal.
    let published = service.publish().unwrap();
    assert!(published.epoch > before.epoch);
    assert_eq!(service.counters().cache.entries, 0);
}

/// Acceptance: `max_memory_bytes` stops a runaway accumulator with a
/// typed `ResourceExhausted`, while the same query unbudgeted succeeds.
/// The limit is calibrated from the query's actual (accounted) footprint
/// so the test tracks the accounting, not magic constants.
#[test]
fn memory_budget_stops_runaway_accumulator() {
    let _guard = fault_guard();

    // A 300-course linear chain: the closure from every course visits the
    // whole suffix, so the accumulators materialize ~N² node entries.
    let mut xml = String::from("<curriculum>");
    for i in 0..300 {
        xml.push_str(&format!(
            "<course code=\"k{i}\"><prerequisites><pre_code>k{}</pre_code></prerequisites></course>",
            i + 1
        ));
    }
    xml.push_str("<course code=\"k300\"><prerequisites/></course></curriculum>");
    let accumulator = "with $x seeded by doc('chain.xml')/curriculum/course \
                       recurse $x/id(./prerequisites/pre_code)";

    let build = |limits: ResourceLimits| {
        let service = QueryService::new(ServiceConfig {
            limits,
            ..default_config()
        });
        service
            .load_document_with_ids("chain.xml", &xml, &["code"])
            .unwrap();
        service.publish().unwrap();
        service
    };

    // Calibrate: run unbudgeted with a measuring cell installed — the
    // barriers see a limit of u64::MAX, so nothing trips, but every
    // charge lands in `meter`.
    let unbudgeted = build(ResourceLimits::default());
    let meter = QueryBudget::new(u64::MAX);
    let (expected_len, footprint) = {
        let _scope = budget::install(Arc::clone(&meter));
        let outcome = unbudgeted.execute(accumulator).unwrap();
        (outcome.outcome.result.len(), meter.used())
    };
    assert!(expected_len >= 300, "the chain closure must be large");
    assert!(
        footprint > 0,
        "the accumulator must charge the memory budget"
    );

    // An eighth of the real footprint: far below what even one round of
    // graceful degradation (memo release + sequential fallback) can claw
    // back for this workload.
    let budgeted = build(ResourceLimits {
        max_memory_bytes: Some((footprint / 8).max(1)),
        ..ResourceLimits::default()
    });
    let err = budgeted
        .execute(accumulator)
        .expect_err("an eighth of the footprint must trip the budget");
    match &err {
        ServiceError::ResourceExhausted {
            budget,
            used,
            limit,
            ..
        } => {
            assert_eq!(budget, "memory");
            assert!(used > limit, "reported usage must exceed the limit");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_eq!(budgeted.counters().resource_exhausted, 1);

    // The budgeted service is undamaged and still serves within-budget
    // queries; the unbudgeted service still produces the full closure.
    budgeted
        .execute("doc('chain.xml')/curriculum/course[@code='k0']")
        .unwrap();
    let again = unbudgeted.execute(accumulator).unwrap();
    assert_eq!(again.outcome.result.len(), expected_len);
}

/// `execute_with_retry` rides out transient saturation using the
/// `retry_after` hint: a burst against a 1-slot, 0-queue service mostly
/// rejects without retry, and succeeds with it.
#[test]
fn retry_with_backoff_rides_out_saturation() {
    let _guard = fault_guard();
    let service = Arc::new(service_with_generated_curriculum(ServiceConfig {
        max_concurrent: 1,
        max_queue: 0,
        ..default_config()
    }));
    service.execute(CURRICULUM_QUERIES[0]).unwrap(); // warm the plan

    // Hold the only slot with a slow diverging query (stopped by its
    // deadline) while another session retries its way in.
    let holder = {
        let service = Arc::clone(&service);
        thread::spawn(move || {
            let _ = service.execute_with(
                "with $x seeded by <a/> recurse (for $y in $x return <b/>)",
                &Bindings::new(),
                Some(Duration::from_millis(80)),
            );
        })
    };
    thread::sleep(Duration::from_millis(10));

    let policy = RetryPolicy {
        max_attempts: 30,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        jitter_seed: 7,
    };
    let outcome = service
        .execute_with_retry(CURRICULUM_QUERIES[0], &Bindings::new(), None, &policy)
        .expect("bounded retries must outlast an 80 ms holder");
    drop(outcome);
    holder.join().unwrap();

    // The hint itself is sane: reject once more while saturated and check
    // the bounds.
    let holder = {
        let service = Arc::clone(&service);
        thread::spawn(move || {
            let _ = service.execute_with(
                "with $x seeded by <a/> recurse (for $y in $x return <b/>)",
                &Bindings::new(),
                Some(Duration::from_millis(60)),
            );
        })
    };
    thread::sleep(Duration::from_millis(10));
    match service.execute(CURRICULUM_QUERIES[0]) {
        Err(ServiceError::Saturated { retry_after, .. }) => {
            assert!(retry_after >= Duration::from_millis(1));
            assert!(retry_after <= Duration::from_secs(5));
        }
        Ok(_) => {} // holder finished first — nothing to assert
        Err(other) => panic!("expected Saturated, got {other:?}"),
    }
    holder.join().unwrap();
}

/// The seeded fault matrix the chaos stress runs under: per-site action
/// and probability derived from `XQY_CHAOS_SEED` (default 0xC0FFEE).
fn arm_fault_matrix(seed: u64) {
    // (site, base probability): hot engine sites fire rarely per hit,
    // cold administrative sites fire often per attempt.
    const SITES: &[(&str, f64)] = &[
        ("fixpoint.barrier", 0.04),
        ("alloc.sequence", 0.01),
        ("alloc.table", 0.01),
        ("shard.worker", 0.02),
        ("cache.insert", 0.25),
        ("publish.clone", 0.30),
        ("publish.refresh", 0.30),
    ];
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for (site, p) in SITES {
        let action = if next() % 2 == 0 {
            fail::FaultAction::Panic
        } else {
            fail::FaultAction::Error
        };
        // Scale the base probability by [0.75, 1.25) so runs with
        // different seeds explore different densities.
        let p = p * (0.75 + (next() % 1024) as f64 / 2048.0);
        fail::configure(
            site,
            action,
            fail::FaultTrigger::Probability { p, seed: next() },
        );
    }
}

/// Chaos stress: the stress.rs reader/writer mix under the armed fault
/// matrix.  The service must neither deadlock nor corrupt state: every
/// query that *succeeded* under chaos must be bit-identical to a
/// sequential re-execution on the snapshot it pinned, the counters must
/// balance, and the service must serve cleanly once faults are cleared.
#[test]
fn chaos_matrix_neither_deadlocks_nor_corrupts() {
    quiet_injected_panics();
    let _guard = fault_guard();

    const READERS: usize = 8;
    const ITERATIONS: usize = 24;
    let seed = std::env::var("XQY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    let parallelism = Parallelism::from_env().unwrap_or_default();

    let service = Arc::new(service_with_generated_curriculum(ServiceConfig {
        max_concurrent: READERS,
        max_queue: READERS,
        parallelism,
        ..ServiceConfig::default()
    }));

    let snapshots = Arc::new(Mutex::new(BTreeMap::new()));
    let initial = service.published();
    snapshots.lock().unwrap().insert(initial.revision, initial);

    arm_fault_matrix(seed);

    // Writer: loads and republishes under fire.  Failed publishes are the
    // point — they must be atomic no-ops; only actually-published
    // snapshots are retained for the re-check.
    let writer = {
        let service = Arc::clone(&service);
        let snapshots = Arc::clone(&snapshots);
        thread::spawn(move || {
            let mut failures = 0u32;
            for i in 0..6 {
                thread::sleep(Duration::from_millis(3));
                service
                    .load_document(&format!("extra_{i}.xml"), &format!("<extra n=\"{i}\"/>"))
                    .unwrap();
                match service.publish() {
                    Ok(published) => {
                        snapshots
                            .lock()
                            .unwrap()
                            .insert(published.revision, published);
                    }
                    Err(ServiceError::Internal { .. }) => failures += 1,
                    Err(other) => panic!("publish under chaos: unexpected {other:?}"),
                }
            }
            failures
        })
    };

    struct Observation {
        query: usize,
        revision: u64,
        len: usize,
        display: String,
    }

    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut successes = Vec::new();
                let mut failures = 0u32;
                for i in 0..ITERATIONS {
                    let query = (reader + i) % CURRICULUM_QUERIES.len();
                    match service.execute(CURRICULUM_QUERIES[query]) {
                        Ok(outcome) => successes.push(Observation {
                            query,
                            revision: outcome.stats.snapshot_revision,
                            len: outcome.outcome.result.len(),
                            display: outcome.display(),
                        }),
                        // Injected faults surface as Internal (panic
                        // path) or Query (typed-error path); both leave
                        // the service serving.
                        Err(ServiceError::Internal { .. }) | Err(ServiceError::Query(_)) => {
                            failures += 1
                        }
                        Err(other) => panic!("reader {reader}: unexpected {other:?}"),
                    }
                }
                (successes, failures)
            })
        })
        .collect();

    let mut observations = Vec::new();
    let mut failed_queries = 0u32;
    for reader in readers {
        let (successes, failures) = reader.join().unwrap();
        observations.extend(successes);
        failed_queries += failures;
    }
    let failed_publishes = writer.join().unwrap();

    // Coverage: the matrix must demonstrably exercise the failure paths.
    let report = fail::report();
    let fired = fail::fired_sites();
    assert!(
        fired.len() >= 5,
        "expected ≥ 5 distinct failpoint sites to fire, got {fired:?} (seed {seed})"
    );
    let mut text =
        format!("# fault-site coverage: service matrix (seed {seed})\nsite,hits,fired\n");
    for site in &report {
        text.push_str(&format!("{},{},{}\n", site.site, site.hits, site.fired));
    }
    text.push_str(&format!(
        "# queries: {} ok, {} failed; publishes: {} failed\n",
        observations.len(),
        failed_queries,
        failed_publishes
    ));
    append_fault_report(&text);
    fail::reset();

    // No torn snapshots: every success pinned an actually-published
    // revision.
    let snapshots = Arc::try_unwrap(snapshots).unwrap().into_inner().unwrap();
    for obs in &observations {
        assert!(
            snapshots.contains_key(&obs.revision),
            "query {} observed unpublished revision {}",
            obs.query,
            obs.revision
        );
    }

    // Bit-identity for every success, re-checked sequentially with the
    // faults disarmed.
    let mut canonical: BTreeMap<(usize, u64), (usize, String)> = BTreeMap::new();
    for obs in &observations {
        let (len, display) = canonical
            .entry((obs.query, obs.revision))
            .or_insert_with(|| {
                let snapshot = &snapshots[&obs.revision];
                let prepared = PreparedQuery::prepare(
                    CURRICULUM_QUERIES[obs.query],
                    Strategy::Auto,
                    Backend::Auto,
                    parallelism,
                )
                .unwrap();
                let mut cow = CowStore::new(Arc::clone(&snapshot.store));
                let outcome = prepared
                    .execute_on(&mut cow, &Bindings::new(), &ExecOptions::default())
                    .unwrap();
                let store = cow.into_arc();
                (outcome.result.len(), outcome.result.display(&store))
            });
        assert_eq!(
            (obs.len, &obs.display),
            (*len, &*display),
            "query {} at revision {} diverged under chaos",
            obs.query,
            obs.revision
        );
    }

    // Not poisoned, not leaking: idle admission, balanced counters, and a
    // clean run of every query now that the faults are gone.
    let counters = service.counters();
    assert_eq!(counters.active, 0, "admission slot leaked under chaos");
    assert_eq!(counters.queued, 0);
    assert_eq!(counters.succeeded, observations.len() as u64);
    // Publish failures surface to the caller but are not query counters;
    // only the readers' failures are tallied.
    let _ = failed_publishes;
    assert_eq!(
        counters.failed + counters.contained_panics,
        failed_queries as u64
    );
    for (i, query) in CURRICULUM_QUERIES.iter().enumerate() {
        let outcome: ServiceOutcome = service
            .execute(query)
            .unwrap_or_else(|e| panic!("query {i} failed after faults were cleared: {e}"));
        assert_eq!(service.counters().active, 0);
        drop(outcome);
    }
}

/// Append a section to the `XQY_FAULT_REPORT` coverage file (no-op when
/// the variable is unset).  Sections append rather than truncate because
/// more than one test contributes coverage and their order within the
/// binary is not fixed; CI starts from a fresh file each run.
fn append_fault_report(text: &str) {
    use std::io::Write;
    if let Ok(path) = std::env::var("XQY_FAULT_REPORT") {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("fault report path must be writable");
        file.write_all(text.as_bytes())
            .expect("fault report path must be writable");
    }
}

/// Coverage for the `shard.worker` failpoint, which sits inside the
/// scoped worker threads of the batched multi-source fixpoint drivers.
/// The service API cannot reach it — a seeded `recurse` is *one*
/// fixpoint over one accumulator, so nothing shards per seed — which is
/// why the chaos matrix above reports `shard.worker` at zero hits.  The
/// batched per-seed path ([`PreparedQuery::execute_batched`], the
/// bench/oracle entry point) does shard, so this scenario drives it
/// directly: an injected worker panic must be re-raised at the shard
/// join (aborting the whole batched run rather than silently dropping a
/// shard's contribution), and once disarmed the same engine must
/// reproduce the sequential ground truth bit-identically.
#[test]
fn shard_worker_panic_aborts_batched_run_then_engine_recovers() {
    quiet_injected_panics();
    let _guard = fault_guard();

    let mut engine = Engine::new();
    let xml = curriculum::generate(&CurriculumConfig::for_scale(Scale::Small));
    engine
        .load_document_with_ids("curriculum.xml", &xml, &["code"])
        .unwrap();
    let seeds = engine
        .run("doc('curriculum.xml')/curriculum/course")
        .unwrap()
        .result;
    assert!(seeds.len() > 1, "need a multi-seed batch to shard");

    let batched = "with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)";
    // Sequential ground truth: threads == 1 never spawns workers, so the
    // failpoint armed below cannot fire on this run even if it were armed.
    let sequential = PreparedQuery::prepare(
        batched,
        Strategy::Auto,
        Backend::Auto,
        Parallelism::Sequential,
    )
    .unwrap();
    let expected: Vec<(usize, String)> = sequential
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap()
        .per_seed
        .iter()
        .map(|seq| (seq.len(), engine.display(seq)))
        .collect();

    let parallel = PreparedQuery::prepare(
        batched,
        Strategy::Auto,
        Backend::Auto,
        Parallelism::Fixed(4),
    )
    .unwrap();

    fail::configure(
        "shard.worker",
        fail::FaultAction::Panic,
        fail::FaultTrigger::OnNthHit(1),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        parallel.execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
    }));
    let payload = outcome.expect_err("worker panic must be re-raised at the shard join");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("injected panics carry a string payload");
    assert!(
        message.contains("injected fault at shard.worker"),
        "unexpected panic payload: {message}"
    );
    let report = fail::report();
    let shard = report
        .iter()
        .find(|r| r.site == "shard.worker")
        .expect("shard.worker was armed");
    assert!(shard.fired >= 1, "shard.worker never fired: {report:?}");
    let mut text = String::from("# fault-site coverage: batched shard workers\nsite,hits,fired\n");
    for site in &report {
        text.push_str(&format!("{},{},{}\n", site.site, site.hits, site.fired));
    }
    append_fault_report(&text);
    fail::reset();

    // The engine survives the aborted batch: the parallel run now matches
    // the sequential ground truth per seed, bit for bit.
    let recovered = parallel
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert_eq!(recovered.per_seed.len(), expected.len());
    for (i, (seq, (len, display))) in recovered.per_seed.iter().zip(&expected).enumerate() {
        assert_eq!(
            (seq.len(), &engine.display(seq)),
            (*len, display),
            "seed {i} diverged after the aborted parallel batch"
        );
    }
}
