//! Cross-session prepared-plan cache.
//!
//! Preparation (parse → distributivity analysis → algebraic compilation)
//! is the expensive, *store-independent* half of query processing: a
//! [`PreparedQuery`] captures the analysed module and its compiled plans
//! but pins no documents, so one prepared artifact can serve every session
//! and every snapshot.  The cache keys on the query *text* plus the knobs
//! that change the prepared artifact (backend, strategy, parallelism), and
//! is invalidated wholesale whenever the published snapshot's load epoch
//! moves — document identity may have changed, so compiled plans that
//! embedded `doc(...)` resolutions must be rebuilt.  Revision-only motion
//! (constructed nodes) keeps the cache warm.
//!
//! # Leases and the executor pool
//!
//! A prepared query's persistent plan executors live behind a `Mutex` held
//! for a whole fixpoint run, so handing every session the *same* artifact
//! would serialize concurrent executions of a popular query.  Instead the
//! cache hands out **leases**: each entry keeps a pool of executor forks
//! ([`PreparedQuery::fork_executors`] — shared compiled plans, private
//! executors), [`acquire`](PlanCache::acquire) pops an idle fork (or mints
//! one when all are in flight), and dropping the [`PlanLease`] returns the
//! fork — with its now-warm static caches — to the pool.  N sessions thus
//! run N truly concurrent executions of one cached query, while the
//! expensive preparation still happens exactly once per distinct text.
//!
//! Eviction is least-recently-used via a monotone tick stamped on every
//! hit; capacity is fixed at construction.  All counters
//! ([`CacheCounters`]) are cumulative over the service lifetime.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use xqy_ifp::{Backend, Parallelism, PreparedQuery, Strategy};

/// How the cache answered a single query's lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The prepared plan was found in the cache (no parse/analyse work).
    Hit,
    /// The query was prepared from scratch and inserted.
    Miss,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh preparation.
    pub misses: u64,
    /// Entries displaced by capacity pressure (LRU).
    pub evictions: u64,
    /// Entries dropped because the snapshot's load epoch moved.
    pub invalidations: u64,
    /// Executor forks minted because every pooled fork was in flight.
    pub forks: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Cache key: the query text plus every knob that changes the prepared
/// artifact, plus the store-statistics fingerprint of the published
/// snapshot the plan was costed against.  The fingerprint keeps cost-based
/// decisions honest across republishes: when the data changes *materially*
/// (any power-of-two bucket of the shape statistics moves) the key no
/// longer matches, so the query re-costs from fresh estimates instead of
/// reusing a plan — and warm feedback observations — taken under data that
/// no longer exists.  Immaterial republishes keep hitting the same entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    query: String,
    backend: Backend,
    strategy: Strategy,
    parallelism: Parallelism,
    stats_fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    /// The canonical artifact forks are minted from (also the first lease's
    /// artifact, returned to the pool when released).
    master: Arc<PreparedQuery>,
    /// Released forks, warm and ready for the next session.
    idle: Vec<Arc<PreparedQuery>>,
    last_used: u64,
    /// Unique id of this entry *incarnation*.  Every lease carries the id
    /// of the entry it came from, and release only pools a fork whose id
    /// matches the resident entry's — so a fork leased before an
    /// invalidation or eviction is dropped on release instead of being
    /// resurrected into a newer entry for the same query text.
    generation: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<Key, Entry>,
    tick: u64,
    /// Source of unique [`Entry::generation`] ids (bumped per insertion).
    next_generation: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    forks: u64,
}

impl Inner {
    /// Pop an idle fork of `key`'s entry (or mint a fresh one), returning
    /// it with the entry's generation.
    fn lease_artifact(&mut self, key: &Key, tick: u64) -> Option<(Arc<PreparedQuery>, u64)> {
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        let generation = entry.generation;
        let artifact = match entry.idle.pop() {
            Some(fork) => fork,
            None => {
                self.forks += 1;
                Arc::new(entry.master.fork_executors())
            }
        };
        Some((artifact, generation))
    }
}

/// Thread-safe LRU cache of [`PreparedQuery`] artifacts shared by all
/// sessions of one [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub(crate) struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Caps how many released forks an entry retains; concurrency beyond this
/// mints throw-away forks instead of growing the pool without bound.
const MAX_IDLE_FORKS: usize = 64;

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lease a prepared plan for one execution; records a hit (refreshing
    /// recency) or a miss.  On a miss the caller prepares *outside* the
    /// cache lock and calls [`PlanCache::insert`].
    pub(crate) fn acquire(
        &self,
        query: &str,
        backend: Backend,
        strategy: Strategy,
        parallelism: Parallelism,
        stats_fingerprint: u64,
    ) -> Option<PlanLease<'_>> {
        let key = Key {
            query: query.to_owned(),
            backend,
            strategy,
            parallelism,
            stats_fingerprint,
        };
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.lease_artifact(&key, tick) {
            Some((prepared, generation)) => {
                inner.hits += 1;
                Some(PlanLease {
                    cache: self,
                    key,
                    prepared: Some(prepared),
                    generation,
                    corrupt: false,
                    outcome: CacheOutcome::Hit,
                })
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly prepared plan (after an [`acquire`]
    /// (PlanCache::acquire) miss) and lease it, evicting the
    /// least-recently-used entry if the cache is full.  If another session
    /// raced us and inserted the same key first, its entry wins and the
    /// lease comes from its pool, so all sessions share one preparation.
    pub(crate) fn insert(
        &self,
        query: &str,
        backend: Backend,
        strategy: Strategy,
        parallelism: Parallelism,
        stats_fingerprint: u64,
        prepared: Arc<PreparedQuery>,
    ) -> PlanLease<'_> {
        let key = Key {
            query: query.to_owned(),
            backend,
            strategy,
            parallelism,
            stats_fingerprint,
        };
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let (artifact, generation) = match inner.lease_artifact(&key, tick) {
            Some(leased) => leased,
            None => {
                if inner.entries.len() >= self.capacity {
                    if let Some(victim) = inner
                        .entries
                        .iter()
                        .min_by_key(|(_, entry)| entry.last_used)
                        .map(|(key, _)| key.clone())
                    {
                        inner.entries.remove(&victim);
                        inner.evictions += 1;
                    }
                }
                inner.next_generation += 1;
                let generation = inner.next_generation;
                inner.entries.insert(
                    key.clone(),
                    Entry {
                        master: Arc::clone(&prepared),
                        idle: Vec::new(),
                        last_used: tick,
                        generation,
                    },
                );
                (prepared, generation)
            }
        };
        PlanLease {
            cache: self,
            key,
            prepared: Some(artifact),
            generation,
            corrupt: false,
            outcome: CacheOutcome::Miss,
        }
    }

    /// Return a lease's artifact to its entry's pool.  The fork is dropped
    /// instead when the entry it was leased from is gone — evicted,
    /// invalidated, or (generation mismatch) replaced by a newer
    /// incarnation under the same key — so stale artifacts never
    /// resurface after [`invalidate_all`](PlanCache::invalidate_all).
    fn release(&self, key: &Key, prepared: Arc<PreparedQuery>, generation: u64) {
        let mut inner = self.lock();
        if let Some(entry) = inner.entries.get_mut(key) {
            if entry.generation == generation && entry.idle.len() < MAX_IDLE_FORKS {
                entry.idle.push(prepared);
            }
        }
    }

    /// Drop every entry — called when the published snapshot's load epoch
    /// moves and compiled document references may be stale.  In-flight
    /// leases are unaffected (their artifacts are dropped on release).
    pub(crate) fn invalidate_all(&self) {
        let mut inner = self.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.invalidations += dropped;
    }

    /// Cumulative counters plus current occupancy.
    pub(crate) fn counters(&self) -> CacheCounters {
        let inner = self.lock();
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            forks: inner.forks,
            entries: inner.entries.len(),
        }
    }
}

/// One session's exclusive hold on a prepared artifact: executors are
/// private to the lease for its lifetime, and dropping it returns them —
/// warm — to the entry's pool.
///
/// A lease whose execution panicked is [`poison`](PlanLease::poison)ed
/// first: its fork's executors may hold half-applied state (a fixpoint
/// aborted mid-iteration, caches in an unknown state), so pooling it would
/// hand corruption to the next session.  A poisoned lease — and any lease
/// dropped while its thread is unwinding — discards the fork instead; the
/// entry stays resident and the next session simply mints a fresh fork
/// from the untouched master.
#[derive(Debug)]
pub(crate) struct PlanLease<'c> {
    cache: &'c PlanCache,
    key: Key,
    prepared: Option<Arc<PreparedQuery>>,
    /// [`Entry::generation`] of the entry this lease came from; the fork
    /// is only pooled on drop while that incarnation is still resident.
    generation: u64,
    /// Set when the execution this lease served panicked: the fork is
    /// dropped on release instead of being pooled.
    corrupt: bool,
    /// Whether this lease came from the cache or a fresh preparation.
    pub(crate) outcome: CacheOutcome,
}

impl PlanLease<'_> {
    pub(crate) fn prepared(&self) -> &PreparedQuery {
        self.prepared
            .as_ref()
            .expect("lease artifact present until drop")
    }

    /// Mark this lease's fork possibly corrupt (its execution panicked);
    /// on drop it is discarded instead of returned to the pool.
    pub(crate) fn poison(&mut self) {
        self.corrupt = true;
    }

    #[cfg(test)]
    fn artifact(&self) -> &Arc<PreparedQuery> {
        self.prepared
            .as_ref()
            .expect("lease artifact present until drop")
    }
}

impl Drop for PlanLease<'_> {
    fn drop(&mut self) {
        if let Some(prepared) = self.prepared.take() {
            // `thread::panicking()` covers unwinds that drop the lease
            // before the service boundary could mark it: either way the
            // fork never reaches the pool.
            if self.corrupt || std::thread::panicking() {
                drop(prepared);
            } else {
                self.cache.release(&self.key, prepared, self.generation);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(query: &str) -> Arc<PreparedQuery> {
        Arc::new(
            PreparedQuery::prepare(
                query,
                Strategy::Auto,
                Backend::SourceLevel,
                Parallelism::Sequential,
            )
            .expect("test query prepares"),
        )
    }

    const Q1: &str = "1 + 1";
    const Q2: &str = "2 + 2";
    const Q3: &str = "3 + 3";

    /// The fingerprint tests key on unless they probe it explicitly.
    const FP: u64 = 0xfeed;

    fn get<'c>(cache: &'c PlanCache, q: &str) -> Option<PlanLease<'c>> {
        cache.acquire(
            q,
            Backend::Auto,
            Strategy::Auto,
            Parallelism::Sequential,
            FP,
        )
    }

    fn put<'c>(cache: &'c PlanCache, q: &str) -> PlanLease<'c> {
        cache.insert(
            q,
            Backend::Auto,
            Strategy::Auto,
            Parallelism::Sequential,
            FP,
            prepared(q),
        )
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = PlanCache::new(2);
        assert!(get(&cache, Q1).is_none());
        put(&cache, Q1);
        put(&cache, Q2);
        assert!(get(&cache, Q1).is_some()); // refreshes Q1's recency
        put(&cache, Q3); // evicts Q2 (least recently used)
        assert!(get(&cache, Q1).is_some());
        assert!(get(&cache, Q2).is_none());
        assert!(get(&cache, Q3).is_some());
        let counters = cache.counters();
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
        assert_eq!(counters.hits, 3);
        assert_eq!(counters.misses, 2);
    }

    #[test]
    fn key_includes_backend_and_strategy() {
        let cache = PlanCache::new(8);
        cache.insert(
            Q1,
            Backend::SourceLevel,
            Strategy::Naive,
            Parallelism::Sequential,
            FP,
            prepared(Q1),
        );
        assert!(cache
            .get_for_test(Q1, Backend::Auto, Strategy::Naive)
            .is_none());
        assert!(cache
            .get_for_test(Q1, Backend::SourceLevel, Strategy::Delta)
            .is_none());
        assert!(cache
            .get_for_test(Q1, Backend::SourceLevel, Strategy::Naive)
            .is_some());
    }

    /// A materially different snapshot (different statistics fingerprint)
    /// must miss, so the query re-costs; the same fingerprint keeps
    /// hitting.
    #[test]
    fn key_includes_stats_fingerprint() {
        let cache = PlanCache::new(8);
        put(&cache, Q1); // keyed under FP
        assert!(cache
            .acquire(
                Q1,
                Backend::Auto,
                Strategy::Auto,
                Parallelism::Sequential,
                FP
            )
            .is_some());
        assert!(cache
            .acquire(
                Q1,
                Backend::Auto,
                Strategy::Auto,
                Parallelism::Sequential,
                FP ^ 1,
            )
            .is_none());
    }

    impl PlanCache {
        fn get_for_test(
            &self,
            q: &str,
            backend: Backend,
            strategy: Strategy,
        ) -> Option<PlanLease<'_>> {
            self.acquire(q, backend, strategy, Parallelism::Sequential, FP)
        }
    }

    #[test]
    fn invalidation_drops_all_entries_and_counts_them() {
        let cache = PlanCache::new(8);
        put(&cache, Q1);
        put(&cache, Q2);
        cache.invalidate_all();
        assert!(get(&cache, Q1).is_none());
        assert_eq!(cache.counters().invalidations, 2);
        assert_eq!(cache.counters().entries, 0);
    }

    /// Regression: a fork leased *before* `invalidate_all` must not be
    /// pooled into a re-inserted entry for the same query text — that
    /// would resurrect exactly the artifacts the invalidation purged.
    #[test]
    fn stale_lease_is_not_pooled_into_a_reinserted_entry() {
        let cache = PlanCache::new(8);
        let stale = put(&cache, Q1); // pre-invalidation fork, in flight
        cache.invalidate_all();
        let fresh = put(&cache, Q1); // same key, new incarnation
        let fresh_ptr = Arc::as_ptr(fresh.artifact());
        drop(fresh); // new master back to the new entry's pool
        drop(stale); // must be dropped, not pushed onto that pool
                     // The pool is LIFO: had the stale fork been pooled, we'd get it.
        let next = get(&cache, Q1).unwrap();
        assert_eq!(Arc::as_ptr(next.artifact()), fresh_ptr);
    }

    /// Same contract across LRU eviction: a lease from an evicted entry
    /// is dropped on release even if the key has since been re-inserted.
    #[test]
    fn lease_from_an_evicted_entry_is_dropped_on_release() {
        let cache = PlanCache::new(1);
        let stale = put(&cache, Q1);
        put(&cache, Q2); // evicts Q1
        let fresh = put(&cache, Q1); // evicts Q2, new Q1 incarnation
        let fresh_ptr = Arc::as_ptr(fresh.artifact());
        drop(fresh);
        drop(stale);
        let next = get(&cache, Q1).unwrap();
        assert_eq!(Arc::as_ptr(next.artifact()), fresh_ptr);
    }

    #[test]
    fn racing_insert_shares_the_first_entry() {
        let cache = PlanCache::new(8);
        let first = put(&cache, Q1);
        // A racing second insert leases from the existing entry instead of
        // replacing it; with the master out on `first`'s lease, it gets a
        // fork.
        let second = put(&cache, Q1);
        assert!(!Arc::ptr_eq(first.artifact(), second.artifact()));
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.counters().forks, 1);
    }

    /// PR 10: a lease whose execution panicked must drop its fork on
    /// release, not pool it — the next session gets a fresh fork from the
    /// master, never the possibly-corrupt one.
    #[test]
    fn poisoned_lease_drops_its_fork_instead_of_pooling() {
        let cache = PlanCache::new(8);
        put(&cache, Q1); // master returns to the pool on drop
        let mut poisoned = get(&cache, Q1).unwrap();
        let poisoned_ptr = Arc::as_ptr(poisoned.artifact());
        poisoned.poison();
        drop(poisoned);
        // The pool is LIFO: had the poisoned fork been pooled, we'd get it.
        let next = get(&cache, Q1).unwrap();
        assert_ne!(Arc::as_ptr(next.artifact()), poisoned_ptr);
        assert_eq!(cache.counters().entries, 1, "entry itself stays resident");
    }

    /// Same contract when the lease is dropped by an unwinding thread
    /// (a panic between acquire and the service boundary).
    #[test]
    fn lease_dropped_during_unwind_is_not_pooled() {
        let cache = Arc::new(PlanCache::new(8));
        put(&cache, Q1);
        let leaked = {
            let lease = get(&cache, Q1).unwrap();
            let ptr = Arc::as_ptr(lease.artifact());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _held = lease;
                panic!("mid-query panic");
            }));
            assert!(result.is_err());
            ptr
        };
        let next = get(&cache, Q1).unwrap();
        assert_ne!(Arc::as_ptr(next.artifact()), leaked);
    }

    #[test]
    fn concurrent_leases_fork_and_pool_on_release() {
        let cache = PlanCache::new(8);
        put(&cache, Q1); // master returns to the pool on drop
        let a = get(&cache, Q1).unwrap();
        let b = get(&cache, Q1).unwrap(); // pool empty → fork
        assert!(!Arc::ptr_eq(a.artifact(), b.artifact()));
        assert_eq!(cache.counters().forks, 1);
        let b_ptr = Arc::as_ptr(b.artifact());
        drop(a);
        drop(b);
        // Released forks are reused (LIFO), not re-minted.
        let c = get(&cache, Q1).unwrap();
        assert_eq!(Arc::as_ptr(c.artifact()), b_ptr);
        assert_eq!(cache.counters().forks, 1);
    }
}
