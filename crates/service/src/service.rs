//! The concurrent query service itself.
//!
//! # Snapshot publication
//!
//! The service owns two stores-worth of state:
//!
//! * a **writer master** (`Mutex<NodeStore>`) that [`load_document`]
//!   (QueryService::load_document) and friends mutate, and
//! * the **published snapshot** (`RwLock<Arc<Published>>`): an immutable,
//!   eagerly refreshed clone of the master that queries read.
//!
//! [`publish`](QueryService::publish) clones the master under the writer
//! lock, pre-builds its derived state ([`NodeStore::refresh_all`]) and
//! atomically swaps the `Arc` in.  A query pins the `Arc` current at its
//! start and keeps it for its whole execution — a concurrent republish
//! never changes data under a running query, and dropping the last pin
//! frees the superseded snapshot.  Because the swap replaces a whole
//! `Arc<Published>` (store + epoch + revision built before the swap), no
//! reader can observe a half-published store.  Publication is also
//! **all-or-nothing under failure**: the fresh snapshot is built fully
//! before the published slot is touched, so a panic or injected fault
//! mid-clone or mid-refresh leaves the previous snapshot installed and
//! the plan cache un-invalidated.
//!
//! Queries whose bodies *construct* nodes never write to the shared
//! snapshot: each execution wraps its pinned `Arc<NodeStore>` in a
//! [`CowStore`], so the first construction clones the store privately and
//! all other sessions keep reading the shared copy unblocked.
//!
//! # Failure domains
//!
//! Each query execution is a failure domain of its own.  A panic inside
//! the engine — an evaluator bug, a shard worker, an injected fault — is
//! caught at the service boundary (`catch_unwind`), converted to the
//! typed [`ServiceError::Internal`], and contained: the admission permit
//! is released by RAII, the possibly-corrupt executor fork is *dropped*
//! instead of returned to the plan-cache pool (see [`crate::cache`]), and
//! the published snapshot and writer master are untouched.  Subsequent
//! queries observe nothing.
//!
//! # Plan cache, deadlines and budgets
//!
//! See [`crate::cache`] for the cross-session prepared-plan cache and
//! [`crate::admission`] for the bounded admission front-end.  Per-query
//! resource budgets ([`ResourceLimits`]: deadline, memory, iterations,
//! result nodes) are enforced cooperatively: they are handed down as
//! [`ExecOptions::limits`] and checked by both fixpoint drivers at every
//! iteration barrier, so an over-budget query aborts between iterations
//! with a typed error and the service keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use xqy_ifp::algebra::AlgebraError;
use xqy_ifp::eval::EvalError;
use xqy_ifp::xdm::{fail, CowStore, NodeStore};
use xqy_ifp::{
    Backend, Bindings, ExecOptions, IfpError, Parallelism, PreparedQuery, QueryOutcome,
    ResourceLimits, Strategy,
};

use crate::admission::Admission;
use crate::cache::{CacheCounters, CacheOutcome, PlanCache, PlanLease};
use crate::error::{Result, ServiceError};

/// Construction-time knobs of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries allowed to execute simultaneously (≥ 1).
    pub max_concurrent: usize,
    /// Additional queries allowed to wait for a slot before new arrivals
    /// are rejected with [`ServiceError::Saturated`].
    pub max_queue: usize,
    /// Prepared-plan cache capacity (entries, ≥ 1).
    pub plan_cache_capacity: usize,
    /// Default per-query timeout; `None` means queries never time out
    /// unless [`execute_with`](QueryService::execute_with) passes one.
    pub default_timeout: Option<Duration>,
    /// Default per-query resource budgets (memory, iterations, result
    /// nodes).  The per-call deadline derived from the timeout is merged
    /// in on top; [`ResourceLimits::default`] leaves everything unlimited.
    pub limits: ResourceLimits,
    /// Fixpoint strategy queries are prepared under.
    pub strategy: Strategy,
    /// Back-end queries are prepared under.
    pub backend: Backend,
    /// Thread policy for batched fixpoint executions.
    pub parallelism: Parallelism,
    /// Start IFP accumulations from the seed itself.
    pub seed_in_result: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 8,
            max_queue: 32,
            plan_cache_capacity: 64,
            default_timeout: None,
            limits: ResourceLimits::default(),
            strategy: Strategy::Auto,
            backend: Backend::Auto,
            parallelism: Parallelism::Sequential,
            seed_in_result: false,
        }
    }
}

/// Bounded exponential backoff for
/// [`execute_with_retry`](QueryService::execute_with_retry).  Only
/// [`ServiceError::Saturated`] is retried — every other error (including
/// deadline and budget rejections) is definitive for the query as
/// submitted.  The wait before retry *n* is the larger of the service's
/// [`retry_after`](ServiceError::Saturated::retry_after) hint and
/// `base · 2ⁿ` (capped at `cap`), scaled by a deterministic jitter in
/// [0.5, 1.0) derived from `jitter_seed` so colliding clients spread out
/// reproducibly.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single wait.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_secs(1),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// One published store version: the frozen snapshot queries execute
/// against, plus the identity (`load_epoch`, `revision`) it was published
/// at.
#[derive(Debug, Clone)]
pub struct PublishedSnapshot {
    /// The frozen store.  Shared — executions that construct nodes get a
    /// private copy-on-write divergence instead of mutating this.
    pub store: Arc<NodeStore>,
    /// [`NodeStore::load_epoch`] at publication.
    pub epoch: u64,
    /// [`NodeStore::revision`] at publication.
    pub revision: u64,
    /// [`StoreStatistics::fingerprint`](xqy_ifp::xdm::StoreStatistics::fingerprint)
    /// of the store at publication.  Folded into plan-cache keys so a
    /// republish with materially different data re-costs its plans instead
    /// of reusing decisions taken under the old shape.
    pub stats_fingerprint: u64,
}

/// Per-query execution statistics.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Time spent waiting for an admission slot.
    pub queue_wait: Duration,
    /// Time spent preparing (or fetching) the plan and executing.
    pub execute_time: Duration,
    /// `load_epoch` of the snapshot the query ran against.
    pub snapshot_epoch: u64,
    /// `revision` of the snapshot the query ran against.
    pub snapshot_revision: u64,
    /// Whether the plan came from the cross-session cache.
    pub cache: CacheOutcome,
}

/// A successful query execution: the engine outcome, the service-level
/// stats, and the store the result's nodes live in.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// The engine-level outcome (result sequence, distributivity reports,
    /// per-occurrence decisions, fixpoint statistics).
    pub outcome: QueryOutcome,
    /// Service-level statistics for this query.
    pub stats: ServiceStats,
    /// The store the result nodes reference: the pinned published snapshot,
    /// or this execution's private copy-on-write divergence if the query
    /// constructed nodes.
    pub store: Arc<NodeStore>,
}

impl ServiceOutcome {
    /// Serialize the result sequence against [`ServiceOutcome::store`].
    pub fn display(&self) -> String {
        self.outcome.result.display(&self.store)
    }
}

/// Cumulative service counters (all monotone over the service lifetime,
/// except the instantaneous `active`/`queued` pair).
#[derive(Debug, Clone, Copy)]
pub struct ServiceCounters {
    /// Queries that completed successfully.
    pub succeeded: u64,
    /// Queries rejected or aborted by their deadline.
    pub deadline_exceeded: u64,
    /// Queries aborted because a resource budget was exhausted.
    pub resource_exhausted: u64,
    /// Queries rejected because the service was saturated.
    pub saturated: u64,
    /// Queries that failed with a query error.
    pub failed: u64,
    /// Engine panics caught and contained at the service boundary.
    pub contained_panics: u64,
    /// Plan-cache counters.
    pub cache: CacheCounters,
    /// Queries executing right now.
    pub active: usize,
    /// Queries queued for admission right now.
    pub queued: usize,
}

/// A thread-safe, in-process query service: many sessions execute
/// concurrently against one published snapshot, sharing prepared plans
/// through a cross-session cache, under bounded admission, per-query
/// deadlines and resource budgets, with engine panics contained per
/// query.  See the crate docs for the architecture.
#[derive(Debug)]
pub struct QueryService {
    config: ServiceConfig,
    /// The mutable master copy: loads apply here, invisible to queries
    /// until [`publish`](QueryService::publish).
    writer: Mutex<NodeStore>,
    published: RwLock<Arc<PublishedSnapshot>>,
    cache: PlanCache,
    admission: Admission,
    succeeded: AtomicU64,
    deadline_exceeded: AtomicU64,
    resource_exhausted: AtomicU64,
    saturated: AtomicU64,
    failed: AtomicU64,
    contained_panics: AtomicU64,
    /// Exponential moving average of execution times (µs), feeding the
    /// [`retry_after`](ServiceError::Saturated::retry_after) hint.
    avg_execute_micros: AtomicU64,
}

impl Default for QueryService {
    fn default() -> Self {
        QueryService::new(ServiceConfig::default())
    }
}

impl QueryService {
    /// Create a service with an empty store (already published).
    pub fn new(config: ServiceConfig) -> Self {
        let master = NodeStore::new();
        let published = publish_clone(&master);
        QueryService {
            admission: Admission::new(config.max_concurrent, config.max_queue),
            cache: PlanCache::new(config.plan_cache_capacity),
            writer: Mutex::new(master),
            published: RwLock::new(Arc::new(published)),
            config,
            succeeded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            resource_exhausted: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            contained_panics: AtomicU64::new(0),
            avg_execute_micros: AtomicU64::new(0),
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Parse `xml` into the writer master under `uri`.  Invisible to
    /// queries until the next [`publish`](QueryService::publish).
    pub fn load_document(&self, uri: &str, xml: &str) -> Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        writer
            .parse_document_with_uri(uri, xml)
            .map(|_| ())
            .map_err(|e| ServiceError::Query(IfpError::Document(e.to_string())))
    }

    /// Like [`load_document`](QueryService::load_document), and declare the
    /// attributes named in `id_attributes` ID-typed (so `id(...)` lookups
    /// work, mirroring a DTD `#ID` declaration).
    pub fn load_document_with_ids(
        &self,
        uri: &str,
        xml: &str,
        id_attributes: &[&str],
    ) -> Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let doc = writer
            .parse_document_with_uri(uri, xml)
            .map_err(|e| ServiceError::Query(IfpError::Document(e.to_string())))?;
        for attr in id_attributes {
            writer.register_id_attribute(doc, attr);
        }
        Ok(())
    }

    /// Atomically publish the writer master's current state: clone it,
    /// eagerly rebuild its derived state, and swap it in as the snapshot
    /// new queries pin.  In-flight queries keep the snapshot they pinned.
    /// If the load epoch moved since the previous publication (documents
    /// or ID registrations changed), the plan cache is invalidated
    /// *before* the swap becomes visible: pinning the new snapshot
    /// requires the read lock we hold for writing here, so no query can
    /// pair the new epoch with a plan cached under the old one.
    ///
    /// Publication is all-or-nothing under failure: the fresh snapshot is
    /// built *fully* before the published slot is touched, so a panic (or
    /// an injected `publish.clone` / `publish.refresh` fault) surfaces as
    /// a typed error with the previous snapshot still installed and the
    /// plan cache un-invalidated.
    ///
    /// Returns the published snapshot.
    pub fn publish(&self) -> Result<PublishedSnapshot> {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let built = catch_unwind(AssertUnwindSafe(|| -> Result<PublishedSnapshot> {
            fail::point("publish.clone").map_err(|e| fault_internal(e, "publish (clone)"))?;
            let clone = writer.clone();
            fail::point("publish.refresh").map_err(|e| fault_internal(e, "publish (refresh)"))?;
            clone.refresh_all();
            Ok(PublishedSnapshot {
                epoch: clone.load_epoch(),
                revision: clone.revision(),
                stats_fingerprint: clone.statistics().fingerprint(),
                store: Arc::new(clone),
            })
        }));
        // The unwind was caught before the writer guard dropped, so the
        // lock is not poisoned, and cloning only *read* the master.  Only
        // a fully built snapshot reaches the swap below.
        let fresh = match built {
            Ok(result) => result?,
            Err(payload) => {
                return Err(ServiceError::Internal {
                    message: panic_message(payload),
                    context: "publish".into(),
                })
            }
        };
        let mut slot = self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.epoch != fresh.epoch {
            self.cache.invalidate_all();
        }
        *slot = Arc::new(fresh.clone());
        drop(slot);
        drop(writer);
        Ok(fresh)
    }

    /// The snapshot new queries currently pin.
    pub fn published(&self) -> PublishedSnapshot {
        let slot = self
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        (**slot).clone()
    }

    /// Execute `query` with no external bindings and the default timeout.
    pub fn execute(&self, query: &str) -> Result<ServiceOutcome> {
        self.execute_with(query, &Bindings::new(), None)
    }

    /// Execute `query` with `bindings`; `timeout` overrides
    /// [`ServiceConfig::default_timeout`] when `Some`.
    ///
    /// The full flow: admission (bounded, deadline-aware) → pin the
    /// published snapshot → fetch or prepare the plan through the shared
    /// cache → execute over a copy-on-write view of the pinned store with
    /// the deadline and resource budgets propagated to every fixpoint
    /// iteration barrier.  An engine panic is contained here and returned
    /// as [`ServiceError::Internal`]; the service stays fully operational.
    pub fn execute_with(
        &self,
        query: &str,
        bindings: &Bindings,
        timeout: Option<Duration>,
    ) -> Result<ServiceOutcome> {
        let submitted = Instant::now();
        let timeout = timeout.or(self.config.default_timeout);
        let deadline = timeout.map(|t| submitted + t);
        // Outer containment: anything that unwinds outside the inner
        // execution boundary (e.g. an injected panic during plan-cache
        // insertion) is still converted to a typed error.  RAII cleans up
        // on the unwind path: the admission permit releases its slot and
        // an in-flight lease drops (not pools) its fork.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.execute_admitted(query, bindings, submitted, timeout, deadline)
        }))
        .unwrap_or_else(|payload| {
            Err(ServiceError::Internal {
                message: panic_message(payload),
                context: "query dispatch".into(),
            })
        });
        match &result {
            Ok(_) => self.succeeded.fetch_add(1, Ordering::Relaxed),
            Err(ServiceError::DeadlineExceeded { .. }) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed)
            }
            Err(ServiceError::ResourceExhausted { .. }) => {
                self.resource_exhausted.fetch_add(1, Ordering::Relaxed)
            }
            Err(ServiceError::Saturated { .. }) => self.saturated.fetch_add(1, Ordering::Relaxed),
            Err(ServiceError::Query(_)) => self.failed.fetch_add(1, Ordering::Relaxed),
            Err(ServiceError::Internal { .. }) => {
                self.contained_panics.fetch_add(1, Ordering::Relaxed)
            }
        };
        result
    }

    /// Like [`execute_with`](QueryService::execute_with), retrying
    /// [`ServiceError::Saturated`] rejections under `policy`'s bounded
    /// exponential backoff.  Every other outcome — success, query error,
    /// deadline, budget, contained panic — is returned as-is on the
    /// attempt that produced it.
    pub fn execute_with_retry(
        &self,
        query: &str,
        bindings: &Bindings,
        timeout: Option<Duration>,
        policy: &RetryPolicy,
    ) -> Result<ServiceOutcome> {
        let max_attempts = policy.max_attempts.max(1);
        let mut jitter = policy.jitter_seed;
        let mut attempt = 0;
        loop {
            match self.execute_with(query, bindings, timeout) {
                Err(ServiceError::Saturated { retry_after, .. }) if attempt + 1 < max_attempts => {
                    let backoff = policy
                        .base
                        .saturating_mul(1u32 << attempt.min(16))
                        .min(policy.cap);
                    let delay = backoff.max(retry_after).min(policy.cap);
                    std::thread::sleep(jittered(delay, &mut jitter));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn execute_admitted(
        &self,
        query: &str,
        bindings: &Bindings,
        submitted: Instant,
        timeout: Option<Duration>,
        deadline: Option<Instant>,
    ) -> Result<ServiceOutcome> {
        // RAII permit: released on every exit path below — including an
        // unwind — so a failed, timed-out or panicking query never leaks
        // its slot.
        let _permit =
            self.admission
                .acquire(deadline, timeout.unwrap_or_default(), self.retry_hint())?;
        let queue_wait = submitted.elapsed();

        // Pin the snapshot current *now*; a concurrent publish after this
        // point has no effect on this query.
        let pinned = self.published();

        // The lease holds this session's private executor fork; dropping it
        // (on every exit path) returns the fork, warm, to the cache's pool
        // — unless the execution panicked, in which case the fork is
        // poisoned below and discarded instead.  Keyed on the pinned
        // snapshot's statistics fingerprint: a materially different
        // republish re-costs instead of hitting.
        let mut lease = self.prepared_plan(query, pinned.stats_fingerprint)?;
        let cache_outcome = lease.outcome;

        // Copy-on-write view: reads are served by the shared snapshot; a
        // construction body diverges privately instead of blocking anyone.
        let started = Instant::now();
        let mut cow = CowStore::new(Arc::clone(&pinned.store));
        let mut limits = self.config.limits;
        limits.deadline = match (limits.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => b.or(a),
        };
        let opts = ExecOptions {
            seed_in_result: self.config.seed_in_result,
            limits,
        };
        // Containment boundary.  `AssertUnwindSafe` is justified by what
        // happens to each captured value when the closure panics:
        //   * `cow` is private to this query and never used again — the
        //     shared snapshot behind it is only read;
        //   * the lease's executor fork may hold half-applied state, so it
        //     is poisoned and discarded (never pooled) below;
        //   * executor-internal mutexes poisoned by the unwind are reset
        //     on next use (`lock_executor` in xqy_ifp replaces a poisoned
        //     executor with a fresh one);
        //   * the budget scope and shard-worker state are thread-local and
        //     unwound by RAII.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            lease.prepared().execute_on(&mut cow, bindings, &opts)
        }));
        let outcome = match executed {
            Ok(result) => result.map_err(|err| map_engine_error(err, timeout))?,
            Err(payload) => {
                lease.poison();
                return Err(ServiceError::Internal {
                    message: panic_message(payload),
                    context: "query execution".into(),
                });
            }
        };
        let execute_time = started.elapsed();
        self.observe_execute(execute_time);

        Ok(ServiceOutcome {
            outcome,
            stats: ServiceStats {
                queue_wait,
                execute_time,
                snapshot_epoch: pinned.epoch,
                snapshot_revision: pinned.revision,
                cache: cache_outcome,
            },
            store: cow.into_arc(),
        })
    }

    /// Lease `query`'s prepared plan from the cache, or prepare it (outside
    /// the cache lock) and insert it for the next session.
    fn prepared_plan(&self, query: &str, stats_fingerprint: u64) -> Result<PlanLease<'_>> {
        let (backend, strategy, parallelism) = (
            self.config.backend,
            self.config.strategy,
            self.config.parallelism,
        );
        if let Some(lease) =
            self.cache
                .acquire(query, backend, strategy, parallelism, stats_fingerprint)
        {
            return Ok(lease);
        }
        let prepared = Arc::new(
            PreparedQuery::prepare(query, strategy, backend, parallelism)
                .map_err(ServiceError::Query)?,
        );
        fail::point("cache.insert").map_err(|e| fault_internal(e, "plan-cache insert"))?;
        Ok(self.cache.insert(
            query,
            backend,
            strategy,
            parallelism,
            stats_fingerprint,
            prepared,
        ))
    }

    /// Fold one observed execution time into the moving average behind
    /// the [`retry_after`](ServiceError::Saturated::retry_after) hint.
    fn observe_execute(&self, took: Duration) {
        let sample = took.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.avg_execute_micros.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            // EWMA with α = 1/8; a racing store loses an update, which is
            // acceptable for a hint.
            old - old / 8 + sample / 8
        };
        self.avg_execute_micros.store(new, Ordering::Relaxed);
    }

    /// How long a rejected client should wait before retrying: roughly
    /// the time for the current queue to drain through the execution
    /// slots at the observed average execution time, clamped to
    /// [1 ms, 5 s].
    fn retry_hint(&self) -> Duration {
        let avg = match self.avg_execute_micros.load(Ordering::Relaxed) {
            0 => 10_000, // no observations yet: assume 10 ms
            observed => observed,
        };
        let (_, queued) = self.admission.load();
        let slots = self.config.max_concurrent.max(1) as u64;
        let micros = avg.saturating_mul(queued as u64 + 1) / slots;
        Duration::from_micros(micros.clamp(1_000, 5_000_000))
    }

    /// Cumulative counters plus the instantaneous admission load.
    pub fn counters(&self) -> ServiceCounters {
        let (active, queued) = self.admission.load();
        ServiceCounters {
            succeeded: self.succeeded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            resource_exhausted: self.resource_exhausted.load(Ordering::Relaxed),
            saturated: self.saturated.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            cache: self.cache.counters(),
            active,
            queued,
        }
    }
}

/// Map an engine error to its service-level form, enriching deadline and
/// budget aborts with the fixpoint occurrence and iteration count they
/// carry.
fn map_engine_error(err: IfpError, timeout: Option<Duration>) -> ServiceError {
    match err {
        IfpError::Eval(EvalError::DeadlineExceeded {
            occurrence,
            iterations,
        }) => ServiceError::DeadlineExceeded {
            timeout: timeout.unwrap_or_default(),
            occurrence: (!occurrence.is_empty()).then_some(occurrence),
            iterations: Some(iterations as u64),
        },
        IfpError::Eval(EvalError::BudgetExceeded {
            budget,
            used,
            limit,
            occurrence,
            iterations,
        }) => ServiceError::ResourceExhausted {
            budget,
            used,
            limit,
            occurrence: (!occurrence.is_empty()).then_some(occurrence),
            iterations: Some(iterations as u64),
        },
        // Algebra aborts outside a fixpoint driver reach us unmapped (the
        // drivers convert them to the eval variants above, adding the
        // occurrence); carry what they know.
        IfpError::Algebra(AlgebraError::DeadlineExceeded { iterations }) => {
            ServiceError::DeadlineExceeded {
                timeout: timeout.unwrap_or_default(),
                occurrence: None,
                iterations: Some(iterations as u64),
            }
        }
        IfpError::Algebra(AlgebraError::BudgetExceeded {
            budget,
            used,
            limit,
            iterations,
        }) => ServiceError::ResourceExhausted {
            budget,
            used,
            limit,
            occurrence: None,
            iterations: Some(iterations as u64),
        },
        other => ServiceError::Query(other),
    }
}

/// An `Error`-action failpoint surfaced outside the engine: report it as
/// the contained internal failure it simulates.
fn fault_internal(err: fail::FaultError, context: &str) -> ServiceError {
    ServiceError::Internal {
        message: err.to_string(),
        context: context.to_string(),
    }
}

/// Render a caught panic payload (`&str` and `String` payloads verbatim).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic jitter: scale `delay` by [0.5, 1.0) drawn from a
/// splitmix64 stream over `state`.
fn jittered(delay: Duration, state: &mut u64) -> Duration {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    delay.mul_f64(0.5 + (z % 1024) as f64 / 2048.0)
}

/// Clone `master` into a fresh, eagerly refreshed published snapshot.
fn publish_clone(master: &NodeStore) -> PublishedSnapshot {
    let clone = master.clone();
    clone.refresh_all();
    PublishedSnapshot {
        epoch: clone.load_epoch(),
        revision: clone.revision(),
        stats_fingerprint: clone.statistics().fingerprint(),
        store: Arc::new(clone),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c3</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
    </curriculum>"#;

    const CLOSURE_QUERY: &str = "with $x seeded by \
        doc('curriculum.xml')/curriculum/course[@code='c1'] \
        recurse $x/id(./prerequisites/pre_code)";

    fn service_with_curriculum() -> QueryService {
        let service = QueryService::default();
        service
            .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
            .unwrap();
        service.publish().unwrap();
        service
    }

    #[test]
    fn loads_are_invisible_until_publish() {
        let service = QueryService::default();
        service
            .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
            .unwrap();
        // Not yet published: doc() fails against the (empty) snapshot.
        assert!(matches!(
            service.execute(CLOSURE_QUERY),
            Err(ServiceError::Query(_))
        ));
        service.publish().unwrap();
        let outcome = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(outcome.outcome.result.len(), 2); // c2, c3
    }

    #[test]
    fn cross_session_cache_hit_and_stats() {
        let service = service_with_curriculum();
        let first = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        let second = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(second.stats.cache, CacheOutcome::Hit);
        assert_eq!(
            first.stats.snapshot_revision,
            second.stats.snapshot_revision
        );
        let counters = service.counters();
        assert_eq!(counters.succeeded, 2);
        assert!(counters.cache.hits >= 1);
    }

    #[test]
    fn publish_same_epoch_keeps_cache_epoch_move_invalidates() {
        let service = service_with_curriculum();
        service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(service.counters().cache.entries, 1);
        // Republishing unchanged data keeps the cache warm.
        service.publish().unwrap();
        assert_eq!(service.counters().cache.entries, 1);
        // Loading a new document moves the load epoch → invalidation.
        service.load_document("other.xml", "<r/>").unwrap();
        service.publish().unwrap();
        assert_eq!(service.counters().cache.entries, 0);
        assert!(service.counters().cache.invalidations >= 1);
    }

    /// PR 9: plan-cache keys carry the published snapshot's statistics
    /// fingerprint.  A republish with *materially* different data (bucket
    /// shifts in the shape statistics) must miss the cache and re-cost the
    /// plan from fresh estimates; an unchanged republish keeps hitting.
    #[test]
    fn republish_with_materially_changed_data_recosts() {
        let service = service_with_curriculum();
        let first = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        assert_eq!(
            first.outcome.occurrences[0].decided_by,
            xqy_ifp::DecisionSource::Estimated
        );
        let before = service.published().stats_fingerprint;

        // An unchanged republish keeps the same fingerprint and the plan
        // stays cached.
        service.publish().unwrap();
        assert_eq!(service.published().stats_fingerprint, before);
        assert_eq!(
            service.execute(CLOSURE_QUERY).unwrap().stats.cache,
            CacheOutcome::Hit
        );

        // Grow the data by orders of magnitude: several statistics buckets
        // move, so the fingerprint must change and the next execution must
        // re-cost (a fresh preparation, decided from fresh estimates).
        let mut big = String::from("<bulk>");
        for i in 0..5_000 {
            big.push_str(&format!("<row n=\"{i}\"><cell/></row>"));
        }
        big.push_str("</bulk>");
        service.load_document("bulk.xml", &big).unwrap();
        service.publish().unwrap();
        assert_ne!(service.published().stats_fingerprint, before);

        let recosted = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(recosted.stats.cache, CacheOutcome::Miss);
        assert_eq!(
            recosted.outcome.occurrences[0].decided_by,
            xqy_ifp::DecisionSource::Estimated
        );
        // The answer is untouched by the re-cost.
        assert_eq!(recosted.outcome.result.len(), first.outcome.result.len());
    }

    #[test]
    fn published_snapshots_share_the_text_pool() {
        let service = service_with_curriculum();
        let first = service.published();
        // Publishing an unchanged master is O(1) on the text plane: the
        // clone shares the writer's payload table, so consecutive
        // snapshots point at one storage.
        let second = service.publish().unwrap();
        assert!(first.store.shares_text_pool(&second.store));
        assert_eq!(first.store.text_pool_id(), second.store.text_pool_id());
        // Loading a document grows the writer's pool; because the storage
        // was shared with live snapshots, the writer deep-copies and takes
        // a fresh identity — the old snapshots keep theirs untouched.
        service.load_document("p.xml", "<r>payload</r>").unwrap();
        let third = service.publish().unwrap();
        assert!(!first.store.shares_text_pool(&third.store));
        assert_ne!(first.store.text_pool_id(), third.store.text_pool_id());
        // And the diverged snapshots still resolve their own payloads.
        assert_eq!(
            third
                .store
                .resolve_text(third.store.text_pool_get("payload").unwrap()),
            "payload"
        );
    }

    #[test]
    fn construction_diverges_privately() {
        let service = service_with_curriculum();
        let before = service.published();
        let outcome = service
            .execute("with $x seeded by <a/> recurse $x")
            .unwrap();
        // The construction ran on a private copy …
        assert!(outcome.store.revision() > before.revision);
        // … and the published snapshot is untouched.
        assert_eq!(service.published().revision, before.revision);
        assert_eq!(outcome.outcome.result.len(), 1);
    }

    #[test]
    fn deadline_exceeded_is_typed_and_does_not_poison() {
        let service = service_with_curriculum();
        // A diverging fixpoint: the constructor is rec-*dependent* (ranges
        // over $x), so every iteration mints fresh nodes — the accumulation
        // never stabilises (until the iteration/node caps, far beyond this
        // budget) and the deadline is what stops it.  A bare `recurse <b/>`
        // would NOT diverge: the rec-independent constructor is hoisted and
        // evaluated once, so the same node comes back every iteration.
        let diverging = "with $x seeded by <a/> recurse (for $y in $x return <b/>)";
        let err = service
            .execute_with(diverging, &Bindings::new(), Some(Duration::from_millis(5)))
            .expect_err("diverging query must hit its deadline");
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
        // PR 10: a deadline that fires at a fixpoint barrier carries the
        // occurrence and iteration count into the service-level error.
        if let ServiceError::DeadlineExceeded {
            occurrence,
            iterations,
            ..
        } = &err
        {
            assert_eq!(occurrence.as_deref(), Some("x"));
            assert!(iterations.is_some());
        }
        // The service keeps serving normal queries afterwards.
        let outcome = service.execute(CLOSURE_QUERY).unwrap();
        assert_eq!(outcome.outcome.result.len(), 2);
        let counters = service.counters();
        assert_eq!(counters.deadline_exceeded, 1);
        assert_eq!(counters.active, 0);
    }

    /// PR 10: an iteration budget aborts a diverging fixpoint with a
    /// typed, occurrence-carrying error, without needing a deadline.
    #[test]
    fn iteration_budget_is_typed_resource_exhaustion() {
        let config = ServiceConfig {
            limits: ResourceLimits {
                max_iterations: Some(3),
                ..ResourceLimits::default()
            },
            ..ServiceConfig::default()
        };
        let service = QueryService::new(config);
        service
            .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
            .unwrap();
        service.publish().unwrap();
        let diverging = "with $x seeded by <a/> recurse (for $y in $x return <b/>)";
        let err = service
            .execute(diverging)
            .expect_err("3-iteration budget must trip");
        match &err {
            ServiceError::ResourceExhausted {
                budget, iterations, ..
            } => {
                assert_eq!(budget, "iterations");
                assert!(iterations.is_some());
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Within-budget queries still run, and the counter moved.
        assert_eq!(
            service.execute(CLOSURE_QUERY).unwrap().outcome.result.len(),
            2
        );
        assert_eq!(service.counters().resource_exhausted, 1);
    }

    #[test]
    fn display_serializes_against_the_outcome_store() {
        let service = service_with_curriculum();
        let outcome = service
            .execute("doc('curriculum.xml')/curriculum/course[@code='c3']")
            .unwrap();
        let shown = outcome.display();
        assert!(shown.contains("c3"), "got: {shown}");
    }
}
