#![warn(missing_docs)]

//! # xqy-service — a concurrent in-process query service
//!
//! [`xqy_ifp::Engine`] is a single-session affair: it owns its store
//! exclusively and executes one query at a time.  This crate layers a
//! **thread-safe service** on top of the same prepared-query machinery so
//! many sessions execute concurrently against one logical database:
//!
//! * **Shared snapshots** — writers load documents into a private master
//!   store and [`publish`](QueryService::publish) atomically; queries pin
//!   the published `Arc` for their whole run, so a republish never moves
//!   data under an executing query and no query ever observes a
//!   half-published store.  Construction bodies (`<a/>` inside a recurse)
//!   diverge onto a per-session copy-on-write store
//!   ([`xqy_ifp::xdm::CowStore`]) instead of blocking readers.
//! * **A cross-session plan cache** — preparation (parse, distributivity
//!   analysis, algebraic compilation) happens once per distinct query
//!   text; every other session gets the shared [`xqy_ifp::PreparedQuery`]
//!   artifact.  LRU eviction, hit/miss/eviction counters, and wholesale
//!   invalidation when a publication moves the store's load epoch.
//! * **Admission, deadlines and budgets** — a bounded semaphore caps
//!   concurrent executions (typed [`ServiceError::Saturated`], carrying a
//!   `retry_after` hint consumed by
//!   [`execute_with_retry`](QueryService::execute_with_retry)) and
//!   per-query [`ResourceLimits`] (deadline, memory, iterations, result
//!   nodes) propagate down to every fixpoint iteration barrier (typed
//!   [`ServiceError::DeadlineExceeded`] /
//!   [`ServiceError::ResourceExhausted`]), so one runaway recursion
//!   cannot take the service down.
//! * **Failure-domain isolation** — each query is its own failure
//!   domain: an engine panic is caught at the service boundary and
//!   surfaced as the typed [`ServiceError::Internal`]; the possibly
//!   corrupt executor fork is discarded instead of pooled, the admission
//!   slot is released, and every other session continues undisturbed.
//!
//! ```
//! use std::sync::Arc;
//! use std::thread;
//! use xqy_service::QueryService;
//!
//! let service = Arc::new(QueryService::default());
//! service
//!     .load_document_with_ids(
//!         "curriculum.xml",
//!         r#"<curriculum>
//!              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
//!              <course code="c2"><prerequisites/></course>
//!            </curriculum>"#,
//!         &["code"],
//!     )
//!     .unwrap();
//! service.publish().unwrap();
//!
//! let query = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
//!              recurse $x/id(./prerequisites/pre_code)";
//! // The first run prepares the plan and seeds the cross-session cache;
//! // without it the four threads below could all miss concurrently.
//! assert_eq!(service.execute(query).unwrap().outcome.result.len(), 1);
//! let workers: Vec<_> = (0..4)
//!     .map(|_| {
//!         let service = Arc::clone(&service);
//!         thread::spawn(move || service.execute(query).unwrap().outcome.result.len())
//!     })
//!     .collect();
//! for worker in workers {
//!     assert_eq!(worker.join().unwrap(), 1); // the closure {c2}, in every session
//! }
//! assert_eq!(service.counters().cache.hits, 4); // prepared once, shared
//! ```

mod admission;
mod cache;
mod error;
mod service;

pub use cache::{CacheCounters, CacheOutcome};
pub use error::{Result, ServiceError};
pub use service::{
    PublishedSnapshot, QueryService, RetryPolicy, ServiceConfig, ServiceCounters, ServiceOutcome,
    ServiceStats,
};

// Convenience re-exports so service users need only this crate.
pub use xqy_ifp::{Backend, Bindings, Parallelism, ResourceLimits, Strategy};

// The whole point of the crate: the service (and its outcomes) cross
// threads freely.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<QueryService>();
    assert_send::<ServiceOutcome>();
    assert_send_sync::<ServiceError>();
};
