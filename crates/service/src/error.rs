//! Typed errors of the query service front-end.

use std::fmt;
use std::time::Duration;

use xqy_ifp::IfpError;

/// Errors a [`QueryService`](crate::QueryService) call can return.
///
/// Admission, deadline, budget and containment failures are **typed** (not
/// stringly wrapped) so load-shedding clients can distinguish "retry later"
/// ([`ServiceError::Saturated`], which carries a [`retry_after`]
/// (ServiceError::Saturated::retry_after) hint) from "this query is too
/// expensive for its budget" ([`ServiceError::DeadlineExceeded`],
/// [`ServiceError::ResourceExhausted`]) from a genuine query failure
/// ([`ServiceError::Query`]) from a contained engine panic
/// ([`ServiceError::Internal`]).  None of them poison the service: every
/// error path releases its admission permit and leaves the published
/// snapshot, the plan cache and the writer store untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue was full: `max_concurrent` queries were
    /// executing and `max_queue` more were already waiting.  The query was
    /// rejected without queueing — retry after the hinted delay or shed
    /// load.
    Saturated {
        /// Queries executing when the request was rejected.
        active: usize,
        /// Queries queued when the request was rejected.
        queued: usize,
        /// Suggested wait before retrying, derived from the queue depth
        /// and the observed average execution time.  A best-effort hint,
        /// not a guarantee that a retry after it will be admitted.
        retry_after: Duration,
    },
    /// The per-query deadline passed — while waiting for admission, or at
    /// a fixpoint iteration barrier during execution.  The service remains
    /// fully operational; only this query was aborted.
    DeadlineExceeded {
        /// The timeout budget the query ran under.
        timeout: Duration,
        /// The recursion variable of the fixpoint that was iterating when
        /// the deadline fired (`None` when it fired during admission or
        /// outside a fixpoint).
        occurrence: Option<String>,
        /// Fixpoint iterations completed when the deadline fired.
        iterations: Option<u64>,
    },
    /// A [`ResourceLimits`](xqy_ifp::ResourceLimits) budget was exhausted
    /// at a fixpoint iteration barrier, after one round of graceful
    /// degradation (memo/cache release, sequential fallback) for the
    /// memory budget.  The service remains fully operational.
    ResourceExhausted {
        /// Which budget tripped: `"memory"`, `"iterations"` or
        /// `"result-nodes"`.
        budget: String,
        /// Approximate usage when the check failed.
        used: u64,
        /// The configured limit.
        limit: u64,
        /// The recursion variable of the fixpoint that tripped the budget
        /// (`None` when unknown).
        occurrence: Option<String>,
        /// Fixpoint iterations completed when the budget tripped.
        iterations: Option<u64>,
    },
    /// Query preparation or execution failed (parse error, unbound
    /// variable, missing document, diverging fixpoint, …).
    Query(IfpError),
    /// A panic inside the engine was caught at the service boundary and
    /// contained: the admission permit was released, the possibly-corrupt
    /// executor fork was discarded instead of being pooled, and the
    /// published snapshot is untouched.  Subsequent queries are
    /// unaffected.
    Internal {
        /// The panic payload (or injected-fault description).
        message: String,
        /// Where the failure was contained (`"query execution"`,
        /// `"publish"`, …).
        context: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated {
                active,
                queued,
                retry_after,
            } => write!(
                f,
                "service saturated: {active} queries executing, {queued} queued \
                 (retry after {retry_after:?})"
            ),
            ServiceError::DeadlineExceeded {
                timeout,
                occurrence,
                iterations,
            } => {
                write!(f, "query deadline exceeded (timeout {timeout:?})")?;
                if let Some(var) = occurrence {
                    write!(f, " in fixpoint of ${var}")?;
                }
                if let Some(n) = iterations {
                    write!(f, " after {n} iterations")?;
                }
                Ok(())
            }
            ServiceError::ResourceExhausted {
                budget,
                used,
                limit,
                occurrence,
                iterations,
            } => {
                write!(f, "{budget} budget exhausted ({used} used, limit {limit})")?;
                if let Some(var) = occurrence {
                    write!(f, " in fixpoint of ${var}")?;
                }
                if let Some(n) = iterations {
                    write!(f, " after {n} iterations")?;
                }
                Ok(())
            }
            ServiceError::Query(err) => write!(f, "query failed: {err}"),
            ServiceError::Internal { message, context } => {
                write!(f, "internal error (contained during {context}): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IfpError> for ServiceError {
    fn from(err: IfpError) -> Self {
        ServiceError::Query(err)
    }
}

/// Result alias for the service crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = ServiceError::Saturated {
            active: 8,
            queued: 16,
            retry_after: Duration::from_millis(40),
        };
        assert!(err.to_string().contains('8'));
        assert!(err.to_string().contains("16"));
        assert!(err.to_string().contains("retry"));
        let err = ServiceError::DeadlineExceeded {
            timeout: Duration::from_millis(250),
            occurrence: None,
            iterations: None,
        };
        assert!(err.to_string().contains("deadline"));
    }

    /// Budget/deadline errors that reach the service carry the fixpoint
    /// occurrence and iteration count in their display output.
    #[test]
    fn display_carries_occurrence_context() {
        let err = ServiceError::DeadlineExceeded {
            timeout: Duration::from_millis(5),
            occurrence: Some("x".into()),
            iterations: Some(17),
        };
        let shown = err.to_string();
        assert!(shown.contains("$x"), "got: {shown}");
        assert!(shown.contains("17 iterations"), "got: {shown}");

        let err = ServiceError::ResourceExhausted {
            budget: "memory".into(),
            used: 2048,
            limit: 1024,
            occurrence: Some("x".into()),
            iterations: Some(3),
        };
        let shown = err.to_string();
        assert!(shown.contains("memory budget"), "got: {shown}");
        assert!(shown.contains("2048"), "got: {shown}");
        assert!(shown.contains("1024"), "got: {shown}");
        assert!(shown.contains("$x"), "got: {shown}");
        assert!(shown.contains("3 iterations"), "got: {shown}");
    }

    #[test]
    fn internal_display_names_context_and_payload() {
        let err = ServiceError::Internal {
            message: "injected fault at shard.worker (hit 1)".into(),
            context: "query execution".into(),
        };
        let shown = err.to_string();
        assert!(shown.contains("contained"), "got: {shown}");
        assert!(shown.contains("shard.worker"), "got: {shown}");
    }
}
