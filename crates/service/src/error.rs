//! Typed errors of the query service front-end.

use std::fmt;
use std::time::Duration;

use xqy_ifp::IfpError;

/// Errors a [`QueryService`](crate::QueryService) call can return.
///
/// Admission and deadline failures are **typed** (not stringly wrapped) so
/// load-shedding clients can distinguish "retry later"
/// ([`ServiceError::Saturated`]) from "this query is too expensive for
/// its budget" ([`ServiceError::DeadlineExceeded`]) from a genuine query
/// failure.  None of them poison the service: every error
/// path releases its admission permit and leaves the published snapshot,
/// the plan cache and the writer store untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue was full: `max_concurrent` queries were
    /// executing and `max_queue` more were already waiting.  The query was
    /// rejected without queueing — retry later or shed load.
    Saturated {
        /// Queries executing when the request was rejected.
        active: usize,
        /// Queries queued when the request was rejected.
        queued: usize,
    },
    /// The per-query deadline passed — while waiting for admission, or at
    /// a fixpoint iteration barrier during execution.  The service remains
    /// fully operational; only this query was aborted.
    DeadlineExceeded {
        /// The timeout budget the query ran under.
        timeout: Duration,
    },
    /// Query preparation or execution failed (parse error, unbound
    /// variable, missing document, diverging fixpoint, …).
    Query(IfpError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated { active, queued } => write!(
                f,
                "service saturated: {active} queries executing, {queued} queued"
            ),
            ServiceError::DeadlineExceeded { timeout } => {
                write!(f, "query deadline exceeded (timeout {timeout:?})")
            }
            ServiceError::Query(err) => write!(f, "query failed: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IfpError> for ServiceError {
    fn from(err: IfpError) -> Self {
        ServiceError::Query(err)
    }
}

/// Result alias for the service crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = ServiceError::Saturated {
            active: 8,
            queued: 16,
        };
        assert!(err.to_string().contains('8'));
        assert!(err.to_string().contains("16"));
        let err = ServiceError::DeadlineExceeded {
            timeout: Duration::from_millis(250),
        };
        assert!(err.to_string().contains("deadline"));
    }
}
