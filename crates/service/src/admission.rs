//! Admission control: a bounded, deadline-aware counting semaphore.
//!
//! The service admits at most `max_concurrent` queries into execution at a
//! time; up to `max_queue` more may wait.  A request that arrives with both
//! limits exhausted is rejected **immediately** with
//! [`ServiceError::Saturated`] — it never queues, so overload turns into
//! fast, typed rejections instead of unbounded latency.  A request that is
//! queued but whose deadline passes before a permit frees up is rejected
//! with [`ServiceError::DeadlineExceeded`].
//!
//! Two liveness rules keep freed slots flowing to the queue:
//!
//! * **No barging** — an arrival is granted immediately only when the
//!   queue is empty; while anyone waits, a freed slot belongs to the
//!   waiters, so sustained new traffic cannot overtake a queued request
//!   until its deadline.  (Waiters racing *each other* for a freed slot
//!   is still unordered.)
//! * **Wakeup hand-off** — `release` wakes one waiter; a woken waiter
//!   that declines the slot (its deadline passed) re-notifies before
//!   returning, so the wakeup it consumed is handed to the next waiter
//!   instead of stranding a free slot under a sleeping queue.
//!
//! Built on `Mutex` + `Condvar` only (the workspace is `std`-only).  Lock
//! poisoning is deliberately ignored (`unwrap_or_else(PoisonError::
//! into_inner)`): the guarded state is two counters whose invariants are
//! re-established on every transition, so a panic elsewhere must not wedge
//! the whole service.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::ServiceError;

#[derive(Debug, Default)]
struct Counts {
    /// Permits currently held (queries executing).
    active: usize,
    /// Requests blocked in [`Admission::acquire`] waiting for a permit.
    queued: usize,
}

/// Bounded counting semaphore guarding query execution slots.
#[derive(Debug)]
pub(crate) struct Admission {
    counts: Mutex<Counts>,
    freed: Condvar,
    max_concurrent: usize,
    max_queue: usize,
}

impl Admission {
    pub(crate) fn new(max_concurrent: usize, max_queue: usize) -> Self {
        Admission {
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            max_queue,
        }
    }

    /// Acquire an execution permit, waiting until `deadline` (forever when
    /// `None`).  Returns a RAII [`Permit`] that releases the slot on drop.
    /// `retry_after` is the backoff hint embedded in a
    /// [`ServiceError::Saturated`] rejection — the caller computes it from
    /// observed execution times; admission itself only reports it.
    pub(crate) fn acquire(
        &self,
        deadline: Option<Instant>,
        timeout: Duration,
        retry_after: Duration,
    ) -> Result<Permit<'_>, ServiceError> {
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        // Grant immediately only when nobody is queued: a freed slot belongs
        // to the waiters first, so a steady stream of new arrivals cannot
        // overtake (and starve out) a request that queued before them.
        if counts.queued == 0 && counts.active < self.max_concurrent {
            counts.active += 1;
            return Ok(Permit { admission: self });
        }
        if counts.queued >= self.max_queue {
            return Err(ServiceError::Saturated {
                active: counts.active,
                queued: counts.queued,
                retry_after,
            });
        }
        counts.queued += 1;
        loop {
            match deadline {
                None => {
                    counts = self
                        .freed
                        .wait(counts)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        counts.queued -= 1;
                        drop(counts);
                        // A release may have woken *us* with a freed slot we
                        // no longer want; pass the wakeup on so the slot is
                        // not stranded while other waiters sleep forever.
                        self.freed.notify_one();
                        return Err(ServiceError::DeadlineExceeded {
                            timeout,
                            occurrence: None,
                            iterations: None,
                        });
                    }
                    let (guard, _timed_out) = self
                        .freed
                        .wait_timeout(counts, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    counts = guard;
                }
            }
            if counts.active < self.max_concurrent {
                counts.queued -= 1;
                counts.active += 1;
                return Ok(Permit { admission: self });
            }
        }
    }

    fn release(&self) {
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        counts.active -= 1;
        drop(counts);
        self.freed.notify_one();
    }

    /// Current (active, queued) counts — for stats reporting.
    pub(crate) fn load(&self) -> (usize, usize) {
        let counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        (counts.active, counts.queued)
    }
}

/// RAII execution permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn grants_up_to_max_concurrent() {
        let admission = Admission::new(2, 0);
        let p1 = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        let _p2 = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        assert_eq!(admission.load(), (2, 0));
        drop(p1);
        let _p3 = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        assert_eq!(admission.load(), (2, 0));
    }

    #[test]
    fn rejects_saturated_without_queueing() {
        let admission = Admission::new(1, 0);
        let _held = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        let err = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .expect_err("queue of 0 must reject immediately");
        assert_eq!(
            err,
            ServiceError::Saturated {
                active: 1,
                queued: 0,
                retry_after: Duration::ZERO,
            }
        );
    }

    #[test]
    fn queued_request_times_out_with_deadline_exceeded() {
        let admission = Admission::new(1, 4);
        let _held = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        let timeout = Duration::from_millis(20);
        let err = admission
            .acquire(Some(Instant::now() + timeout), timeout, Duration::ZERO)
            .expect_err("permit never frees, deadline must fire");
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded {
                timeout,
                occurrence: None,
                iterations: None,
            }
        );
        // The queue slot was returned on the error path.
        assert_eq!(admission.load(), (1, 0));
    }

    /// Regression: a woken waiter whose deadline has passed must hand the
    /// wakeup on.  Expirers and a patient (no-deadline) waiter contend for
    /// one slot released right around the expirers' deadline; if an expirer
    /// swallows the release's notification, the patient sleeps forever on a
    /// free slot and the `recv_timeout` below trips.
    #[test]
    fn freed_slot_is_never_stranded_by_expiring_waiters() {
        for _ in 0..50 {
            let admission = Arc::new(Admission::new(1, 8));
            let held = admission
                .acquire(None, Duration::ZERO, Duration::ZERO)
                .unwrap();
            let timeout = Duration::from_millis(5);
            let expirers: Vec<_> = (0..4)
                .map(|_| {
                    let admission = Arc::clone(&admission);
                    thread::spawn(move || {
                        admission
                            .acquire(Some(Instant::now() + timeout), timeout, Duration::ZERO)
                            .map(|_p| ())
                    })
                })
                .collect();
            thread::sleep(Duration::from_millis(1));
            let (tx, rx) = std::sync::mpsc::channel();
            let patient = {
                let admission = Arc::clone(&admission);
                thread::spawn(move || {
                    let permit = admission
                        .acquire(None, Duration::ZERO, Duration::ZERO)
                        .unwrap();
                    tx.send(()).unwrap();
                    drop(permit);
                })
            };
            thread::sleep(Duration::from_millis(5));
            drop(held);
            rx.recv_timeout(Duration::from_secs(5))
                .expect("lost wakeup: slot free but the patient waiter never admitted");
            for expirer in expirers {
                let _ = expirer.join().unwrap();
            }
            patient.join().unwrap();
            assert_eq!(admission.load(), (0, 0));
        }
    }

    /// While anyone is queued, a freed slot belongs to the queue: an
    /// arrival with an already-lapsed deadline is turned away even if
    /// `active` is momentarily below the limit.
    #[test]
    fn arrivals_queue_behind_existing_waiters() {
        let admission = Arc::new(Admission::new(1, 4));
        let held = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let waiter = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let permit = admission
                    .acquire(None, Duration::ZERO, Duration::ZERO)
                    .unwrap();
                release_rx.recv().unwrap();
                drop(permit);
            })
        };
        while admission.load().1 != 1 {
            thread::sleep(Duration::from_millis(1));
        }
        drop(held);
        // The waiter either still queues (arrival is gated behind it) or
        // already claimed the slot (arrival finds it taken) — admitted it
        // is not, in either interleaving.
        let err = admission
            .acquire(Some(Instant::now()), Duration::ZERO, Duration::ZERO)
            .expect_err("freed slot must go to the queued waiter, not a late arrival");
        assert_eq!(
            err,
            ServiceError::DeadlineExceeded {
                timeout: Duration::ZERO,
                occurrence: None,
                iterations: None,
            }
        );
        release_tx.send(()).unwrap();
        waiter.join().unwrap();
        assert_eq!(admission.load(), (0, 0));
    }

    #[test]
    fn queued_request_proceeds_when_permit_frees() {
        let admission = Arc::new(Admission::new(1, 4));
        let held = admission
            .acquire(None, Duration::ZERO, Duration::ZERO)
            .unwrap();
        let waiter = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                admission
                    .acquire(
                        Some(Instant::now() + Duration::from_secs(10)),
                        Duration::ZERO,
                        Duration::ZERO,
                    )
                    .map(|_p| ())
            })
        };
        // Give the waiter time to enqueue, then free the permit.
        thread::sleep(Duration::from_millis(20));
        drop(held);
        waiter.join().unwrap().expect("waiter should be admitted");
        assert_eq!(admission.load(), (0, 0));
    }
}
