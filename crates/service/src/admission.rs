//! Admission control: a bounded, deadline-aware counting semaphore.
//!
//! The service admits at most `max_concurrent` queries into execution at a
//! time; up to `max_queue` more may wait.  A request that arrives with both
//! limits exhausted is rejected **immediately** with
//! [`ServiceError::Saturated`] — it never queues, so overload turns into
//! fast, typed rejections instead of unbounded latency.  A request that is
//! queued but whose deadline passes before a permit frees up is rejected
//! with [`ServiceError::DeadlineExceeded`].
//!
//! Built on `Mutex` + `Condvar` only (the workspace is `std`-only).  Lock
//! poisoning is deliberately ignored (`unwrap_or_else(PoisonError::
//! into_inner)`): the guarded state is two counters whose invariants are
//! re-established on every transition, so a panic elsewhere must not wedge
//! the whole service.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::ServiceError;

#[derive(Debug, Default)]
struct Counts {
    /// Permits currently held (queries executing).
    active: usize,
    /// Requests blocked in [`Admission::acquire`] waiting for a permit.
    queued: usize,
}

/// Bounded counting semaphore guarding query execution slots.
#[derive(Debug)]
pub(crate) struct Admission {
    counts: Mutex<Counts>,
    freed: Condvar,
    max_concurrent: usize,
    max_queue: usize,
}

impl Admission {
    pub(crate) fn new(max_concurrent: usize, max_queue: usize) -> Self {
        Admission {
            counts: Mutex::new(Counts::default()),
            freed: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            max_queue,
        }
    }

    /// Acquire an execution permit, waiting until `deadline` (forever when
    /// `None`).  Returns a RAII [`Permit`] that releases the slot on drop.
    pub(crate) fn acquire(
        &self,
        deadline: Option<Instant>,
        timeout: Duration,
    ) -> Result<Permit<'_>, ServiceError> {
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        if counts.active < self.max_concurrent {
            counts.active += 1;
            return Ok(Permit { admission: self });
        }
        if counts.queued >= self.max_queue {
            return Err(ServiceError::Saturated {
                active: counts.active,
                queued: counts.queued,
            });
        }
        counts.queued += 1;
        loop {
            match deadline {
                None => {
                    counts = self
                        .freed
                        .wait(counts)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        counts.queued -= 1;
                        return Err(ServiceError::DeadlineExceeded { timeout });
                    }
                    let (guard, _timed_out) = self
                        .freed
                        .wait_timeout(counts, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    counts = guard;
                }
            }
            if counts.active < self.max_concurrent {
                counts.queued -= 1;
                counts.active += 1;
                return Ok(Permit { admission: self });
            }
        }
    }

    fn release(&self) {
        let mut counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        counts.active -= 1;
        drop(counts);
        self.freed.notify_one();
    }

    /// Current (active, queued) counts — for stats reporting.
    pub(crate) fn load(&self) -> (usize, usize) {
        let counts = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        (counts.active, counts.queued)
    }
}

/// RAII execution permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn grants_up_to_max_concurrent() {
        let admission = Admission::new(2, 0);
        let p1 = admission.acquire(None, Duration::ZERO).unwrap();
        let _p2 = admission.acquire(None, Duration::ZERO).unwrap();
        assert_eq!(admission.load(), (2, 0));
        drop(p1);
        let _p3 = admission.acquire(None, Duration::ZERO).unwrap();
        assert_eq!(admission.load(), (2, 0));
    }

    #[test]
    fn rejects_saturated_without_queueing() {
        let admission = Admission::new(1, 0);
        let _held = admission.acquire(None, Duration::ZERO).unwrap();
        let err = admission
            .acquire(None, Duration::ZERO)
            .expect_err("queue of 0 must reject immediately");
        assert_eq!(
            err,
            ServiceError::Saturated {
                active: 1,
                queued: 0
            }
        );
    }

    #[test]
    fn queued_request_times_out_with_deadline_exceeded() {
        let admission = Admission::new(1, 4);
        let _held = admission.acquire(None, Duration::ZERO).unwrap();
        let timeout = Duration::from_millis(20);
        let err = admission
            .acquire(Some(Instant::now() + timeout), timeout)
            .expect_err("permit never frees, deadline must fire");
        assert_eq!(err, ServiceError::DeadlineExceeded { timeout });
        // The queue slot was returned on the error path.
        assert_eq!(admission.load(), (1, 0));
    }

    #[test]
    fn queued_request_proceeds_when_permit_frees() {
        let admission = Arc::new(Admission::new(1, 4));
        let held = admission.acquire(None, Duration::ZERO).unwrap();
        let waiter = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                admission
                    .acquire(
                        Some(Instant::now() + Duration::from_secs(10)),
                        Duration::ZERO,
                    )
                    .map(|_p| ())
            })
        };
        // Give the waiter time to enqueue, then free the permit.
        thread::sleep(Duration::from_millis(20));
        drop(held);
        waiter.join().unwrap().expect("waiter should be admitted");
        assert_eq!(admission.load(), (0, 0));
    }
}
