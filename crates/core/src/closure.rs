//! Regular XPath: transitive closure of steps via the IFP form.
//!
//! Regular XPath [ten Cate, PODS 2006] extends XPath with a transitive
//! closure operator `e+`.  Section 2 of the paper shows that for step
//! expressions `e` obeying three simple restrictions, `e+` is expressible as
//!
//! ```xquery
//! with $x seeded by . recurse $x/e
//! ```
//!
//! and Section 3.1 shows that such bodies are always distributive, so Delta
//! applies.  This module packages that construction.

use xqy_parser::ast::Expr;
use xqy_parser::parse_expr;

use crate::{IfpError, Result};

/// Why a step expression is not admissible for the closure construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosureRestriction {
    /// The step mentions the reserved closure variable freely
    /// (restriction (i) of Section 3.1).
    FreeClosureVariable,
    /// The step calls `fn:position()` or `fn:last()` (restriction (ii)).
    PositionalFunction,
    /// The step contains a node constructor (restriction (iii)).
    NodeConstructor,
}

impl std::fmt::Display for ClosureRestriction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosureRestriction::FreeClosureVariable => {
                write!(f, "step mentions the closure variable $x freely")
            }
            ClosureRestriction::PositionalFunction => {
                write!(f, "step calls fn:position() or fn:last()")
            }
            ClosureRestriction::NodeConstructor => write!(f, "step constructs nodes"),
        }
    }
}

/// Check the admissibility restrictions (i)–(iii) of Section 3.1 for a step
/// expression `e` that is to be closed transitively.
pub fn check_step_restrictions(step: &Expr) -> std::result::Result<(), ClosureRestriction> {
    if step.has_free_var("x") {
        return Err(ClosureRestriction::FreeClosureVariable);
    }
    if step.contains_node_constructor() {
        return Err(ClosureRestriction::NodeConstructor);
    }
    let mut positional = false;
    step.walk(&mut |e| {
        if let Expr::FunctionCall { name, .. } = e {
            let local = name.rsplit(':').next().unwrap_or(name);
            if local == "position" || local == "last" {
                positional = true;
            }
        }
    });
    if positional {
        return Err(ClosureRestriction::PositionalFunction);
    }
    Ok(())
}

/// Build the IFP expression for the transitive closure `e+` of `step`,
/// seeded by `seed` (use the context item `.` for the Regular XPath reading).
///
/// The result is `with $x seeded by seed recurse $x/step`.
pub fn transitive_closure_expr(seed: Expr, step: Expr) -> Result<Expr> {
    check_step_restrictions(&step)
        .map_err(|r| IfpError::Parse(format!("step not admissible for closure: {r}")))?;
    Ok(Expr::Fixpoint {
        var: "x".to_string(),
        seed: Box::new(seed),
        body: Box::new(Expr::Path {
            input: Box::new(Expr::VarRef("x".to_string())),
            step: Box::new(step),
        }),
    })
}

/// Convenience: build `e+` from query text for the seed and step.
pub fn transitive_closure(seed: &str, step: &str) -> Result<Expr> {
    let seed_expr = parse_expr(seed)?;
    let step_expr = parse_expr(step)?;
    transitive_closure_expr(seed_expr, step_expr)
}

/// The reflexive-transitive closure `e*`: like [`transitive_closure`] but the
/// seed nodes themselves are part of the result.  This corresponds to the
/// `seed_in_result` evaluation option (see
/// [`EvalOptions`](xqy_eval::EvalOptions)); the returned expression encodes
/// it as `seed union e+`.
pub fn reflexive_transitive_closure(seed: &str, step: &str) -> Result<Expr> {
    let seed_expr = parse_expr(seed)?;
    let plus = transitive_closure(seed, step)?;
    Ok(Expr::Binary {
        op: xqy_parser::BinaryOp::Union,
        lhs: Box::new(seed_expr),
        rhs: Box::new(plus),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntactic::is_distributivity_safe;
    use xqy_eval::Evaluator;
    use xqy_xdm::NodeStore;

    #[test]
    fn closure_bodies_are_always_distributive() {
        for step in [
            "child::a",
            "descendant::b/@ref",
            "parent::node()",
            "following-sibling::s",
        ] {
            let expr = transitive_closure("doc('d.xml')//seed", step).unwrap();
            match expr {
                Expr::Fixpoint { body, .. } => {
                    let j = is_distributivity_safe(&body, "x", &[]);
                    assert!(j.safe, "closure of {step} should be distributive");
                }
                other => panic!("expected fixpoint, got {other:?}"),
            }
        }
    }

    #[test]
    fn restrictions_are_enforced() {
        assert!(matches!(
            check_step_restrictions(&parse_expr("child::a[position() = 1]").unwrap()),
            Err(ClosureRestriction::PositionalFunction)
        ));
        assert!(matches!(
            check_step_restrictions(&parse_expr("<a/>").unwrap()),
            Err(ClosureRestriction::NodeConstructor)
        ));
        assert!(matches!(
            check_step_restrictions(&parse_expr("$x/child::a").unwrap()),
            Err(ClosureRestriction::FreeClosureVariable)
        ));
        assert!(check_step_restrictions(&parse_expr("child::a").unwrap()).is_ok());
        assert!(transitive_closure(".", "child::a[last()]").is_err());
    }

    #[test]
    fn descendant_closure_equals_child_plus() {
        // child+ computed via the IFP equals the descendant axis.
        let doc = "<r><a><b><c/></b></a><d/></r>";
        let mut store = NodeStore::new();
        store.parse_document_with_uri("d.xml", doc).unwrap();

        let closure = transitive_closure("doc('d.xml')/r", "child::node()").unwrap();
        let module = xqy_parser::ast::QueryModule {
            functions: vec![],
            variables: vec![],
            body: closure,
        };
        let mut evaluator = Evaluator::new(&mut store);
        evaluator.set_fixpoint_strategy(xqy_eval::FixpointStrategy::Delta);
        let via_closure = evaluator.eval_module(&module).unwrap();
        let via_axis = evaluator
            .eval_query_str("doc('d.xml')/r/descendant::node()")
            .unwrap();
        assert_eq!(via_closure.nodes(), via_axis.nodes());
    }

    #[test]
    fn reflexive_closure_includes_the_seed() {
        let doc = "<r><a><b/></a></r>";
        let mut store = NodeStore::new();
        store.parse_document_with_uri("d.xml", doc).unwrap();
        let expr = reflexive_transitive_closure("doc('d.xml')/r", "child::*").unwrap();
        let module = xqy_parser::ast::QueryModule {
            functions: vec![],
            variables: vec![],
            body: expr,
        };
        let mut evaluator = Evaluator::new(&mut store);
        let result = evaluator.eval_module(&module).unwrap();
        // r, a, b — the seed r is included.
        assert_eq!(result.len(), 3);
    }
}
