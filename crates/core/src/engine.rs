//! The engine facade: documents, strategy selection, both back-ends.

use xqy_algebra::{compile_recursion_body, ExecStats, Executor, MuStrategy};
use xqy_eval::{Evaluator, FixpointStats, FixpointStrategy};
use xqy_parser::ast::{Expr, QueryModule};
use xqy_parser::parse_query;
use xqy_xdm::{NodeId, NodeStore, Sequence};

use crate::syntactic::is_distributivity_safe;
use crate::{IfpError, Result};

/// How the engine evaluates `with … seeded by … recurse` occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Always use algorithm Naïve (Figure 3(a)).
    Naive,
    /// Always use algorithm Delta (Figure 3(b)) — only sound for
    /// distributive recursion bodies (Theorem 3.2); the engine does not stop
    /// you from shooting your own foot, mirroring the paper's Example 2.4.
    Delta,
    /// Decide per query: use Delta when every recursion body in the query is
    /// recognised as distributive (by the syntactic *or* the algebraic
    /// check), otherwise fall back to Naïve.  This is the mode the paper
    /// advocates.
    #[default]
    Auto,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::Delta => "delta",
            Strategy::Auto => "auto",
        }
    }
}

/// Distributivity assessment of one recursion body found in a query.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributivityReport {
    /// The recursion variable of the IFP occurrence.
    pub variable: String,
    /// Verdict of the syntactic `ds_$x(·)` rules (Figure 5).
    pub syntactic: bool,
    /// The rule (or failure reason) reported by the syntactic check.
    pub syntactic_rule: String,
    /// Verdict of the algebraic ∪ push-up check, when the body lies inside
    /// the algebraic compiler's subset.
    pub algebraic: Option<bool>,
    /// The operator that blocked the push-up, if any.
    pub algebraic_blocked_by: Option<String>,
}

impl DistributivityReport {
    /// `true` when either approximation certifies distributivity.
    pub fn is_distributive(&self) -> bool {
        self.syntactic || self.algebraic == Some(true)
    }
}

/// The outcome of running a query through the engine.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result.
    pub result: Sequence,
    /// One report per IFP occurrence in the query, in syntactic order.
    pub distributivity: Vec<DistributivityReport>,
    /// The algorithm that was actually used for the fixpoints.
    pub strategy_used: FixpointStrategy,
    /// Per-fixpoint runtime statistics (iterations, nodes fed back, …).
    pub fixpoints: Vec<FixpointStats>,
}

/// The engine: owns the node store and the configuration, and runs queries
/// through the source-level evaluator (and, on request, through the
/// relational back-end).
pub struct Engine {
    store: NodeStore,
    strategy: Strategy,
    seed_in_result: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Create an engine with an empty document store and the `Auto`
    /// strategy.
    pub fn new() -> Self {
        Engine {
            store: NodeStore::new(),
            strategy: Strategy::Auto,
            seed_in_result: false,
        }
    }

    /// Select the fixpoint strategy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// The currently selected strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Use the seed-inclusive IFP reading (see
    /// [`EvalOptions::seed_in_result`](xqy_eval::EvalOptions)).
    pub fn set_seed_in_result(&mut self, value: bool) {
        self.seed_in_result = value;
    }

    /// Borrow the node store (e.g. to serialize result nodes).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Mutably borrow the node store.
    pub fn store_mut(&mut self) -> &mut NodeStore {
        &mut self.store
    }

    /// Load a document under `uri`.
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<()> {
        self.store
            .parse_document_with_uri(uri, xml)
            .map(|_| ())
            .map_err(|e| IfpError::Document(e.to_string()))
    }

    /// Load a document and declare additional ID-typed attribute names
    /// (mirroring DTD `#ID` declarations such as the curriculum's `code`).
    pub fn load_document_with_ids(
        &mut self,
        uri: &str,
        xml: &str,
        id_attrs: &[&str],
    ) -> Result<()> {
        let doc = self
            .store
            .parse_document_with_uri(uri, xml)
            .map_err(|e| IfpError::Document(e.to_string()))?;
        for attr in id_attrs {
            self.store.register_id_attribute(doc, attr);
        }
        Ok(())
    }

    /// Analyse the distributivity of every IFP occurrence in `module`.
    pub fn analyse(&self, module: &QueryModule) -> Vec<DistributivityReport> {
        let mut reports = Vec::new();
        let mut bodies: Vec<(String, Expr)> = Vec::new();
        let mut collect = |expr: &Expr| {
            expr.walk(&mut |e| {
                if let Expr::Fixpoint { var, body, .. } = e {
                    bodies.push((var.clone(), body.as_ref().clone()));
                }
            });
        };
        for f in &module.functions {
            collect(&f.body);
        }
        for (_, v) in &module.variables {
            collect(v);
        }
        collect(&module.body);

        for (var, body) in bodies {
            let syntactic = is_distributivity_safe(&body, &var, &module.functions);
            let (algebraic, blocked) = match compile_recursion_body(&body, &var) {
                Ok(compiled) => (
                    Some(compiled.distributivity.distributive),
                    compiled.distributivity.blocked_by,
                ),
                Err(_) => (None, None),
            };
            reports.push(DistributivityReport {
                variable: var,
                syntactic: syntactic.safe,
                syntactic_rule: syntactic.rule,
                algebraic,
                algebraic_blocked_by: blocked,
            });
        }
        reports
    }

    /// Parse, analyse and evaluate a query with the configured strategy,
    /// using the source-level evaluator.
    pub fn run(&mut self, query: &str) -> Result<QueryOutcome> {
        let module = parse_query(query)?;
        self.run_module(&module)
    }

    /// Like [`Engine::run`], for an already-parsed module.
    pub fn run_module(&mut self, module: &QueryModule) -> Result<QueryOutcome> {
        let distributivity = self.analyse(module);
        let strategy_used = match self.strategy {
            Strategy::Naive => FixpointStrategy::Naive,
            Strategy::Delta => FixpointStrategy::Delta,
            Strategy::Auto => {
                if !distributivity.is_empty() && distributivity.iter().all(|d| d.is_distributive())
                {
                    FixpointStrategy::Delta
                } else {
                    FixpointStrategy::Naive
                }
            }
        };
        let mut evaluator = Evaluator::new(&mut self.store);
        evaluator.set_fixpoint_strategy(strategy_used);
        evaluator.options_mut().seed_in_result = self.seed_in_result;
        let result = evaluator.eval_module(module)?;
        let fixpoints = evaluator.fixpoint_runs().to_vec();
        Ok(QueryOutcome {
            result,
            distributivity,
            strategy_used,
            fixpoints,
        })
    }

    /// Run a single inflationary fixed point on the **relational back-end**
    /// (the MonetDB/Pathfinder role): `seed_query` is evaluated with the
    /// source-level evaluator to obtain the seed node set, `body` is
    /// compiled to an algebraic plan and driven by `µ` or `µ∆`.
    ///
    /// Returns the result nodes together with the executor statistics
    /// (iterations, rows fed back).
    pub fn run_algebraic_fixpoint(
        &mut self,
        seed_query: &str,
        body: &str,
        var: &str,
        strategy: MuStrategy,
    ) -> Result<(Vec<NodeId>, ExecStats)> {
        let seed = {
            let mut evaluator = Evaluator::new(&mut self.store);
            evaluator.eval_query_str(seed_query)?
        };
        self.run_algebraic_fixpoint_seeded(&seed.nodes(), body, var, strategy)
    }

    /// Like [`Engine::run_algebraic_fixpoint`], but with the seed node set
    /// supplied directly (used for per-item fixpoints such as the
    /// per-person bidder networks of Figure 10).
    pub fn run_algebraic_fixpoint_seeded(
        &mut self,
        seed: &[NodeId],
        body: &str,
        var: &str,
        strategy: MuStrategy,
    ) -> Result<(Vec<NodeId>, ExecStats)> {
        let body_expr = xqy_parser::parse_expr(body)?;
        let compiled = compile_recursion_body(&body_expr, var)?;
        let mut executor = Executor::new(&mut self.store);
        let (table, stats) =
            executor.run_fixpoint(&compiled.plan, seed, strategy, self.seed_in_result)?;
        Ok((table.item_nodes(), stats))
    }

    /// Serialize a result sequence (nodes as XML, atomics as text).
    pub fn display(&self, seq: &Sequence) -> String {
        seq.display(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
    </curriculum>"#;

    const Q1: &str = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
                      recurse $x/id(./prerequisites/pre_code)";

    const Q2: &str = "let $seed := (<a/>,<b><c><d/></c></b>) \
                      return with $x seeded by $seed \
                      recurse if (count($x/self::a)) then $x/* else ()";

    fn engine() -> Engine {
        let mut engine = Engine::new();
        engine
            .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
            .unwrap();
        engine
    }

    #[test]
    fn auto_strategy_picks_delta_for_q1() {
        let mut engine = engine();
        let outcome = engine.run(Q1).unwrap();
        assert_eq!(outcome.strategy_used, FixpointStrategy::Delta);
        assert_eq!(outcome.result.len(), 3);
        assert_eq!(outcome.distributivity.len(), 1);
        assert!(outcome.distributivity[0].syntactic);
        assert_eq!(outcome.distributivity[0].algebraic, Some(true));
    }

    #[test]
    fn auto_strategy_falls_back_to_naive_for_q2() {
        let mut engine = engine();
        engine.set_seed_in_result(true);
        let outcome = engine.run(Q2).unwrap();
        assert_eq!(outcome.strategy_used, FixpointStrategy::Naive);
        assert!(!outcome.distributivity[0].is_distributive());
        // Naïve on the seed-inclusive reading gives (a, b, c, d).
        assert_eq!(outcome.result.len(), 4);
    }

    #[test]
    fn explicit_strategies_are_respected() {
        let mut engine = engine();
        engine.set_strategy(Strategy::Naive);
        let naive = engine.run(Q1).unwrap();
        assert_eq!(naive.strategy_used, FixpointStrategy::Naive);

        engine.set_strategy(Strategy::Delta);
        let delta = engine.run(Q1).unwrap();
        assert_eq!(delta.strategy_used, FixpointStrategy::Delta);
        assert_eq!(naive.result.len(), delta.result.len());
        assert!(
            delta.fixpoints[0].nodes_fed_back < naive.fixpoints[0].nodes_fed_back,
            "delta should feed back fewer nodes"
        );
    }

    #[test]
    fn algebraic_backend_agrees_with_the_evaluator() {
        let mut engine = engine();
        let eval_result = engine.run(Q1).unwrap();
        let (nodes, stats) = engine
            .run_algebraic_fixpoint(
                "doc('curriculum.xml')/curriculum/course[@code='c1']",
                "$x/id(./prerequisites/pre_code)",
                "x",
                MuStrategy::MuDelta,
            )
            .unwrap();
        assert_eq!(nodes.len(), eval_result.result.len());
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn queries_without_fixpoints_report_no_distributivity() {
        let mut engine = engine();
        let outcome = engine.run("count(doc('curriculum.xml')//course)").unwrap();
        assert!(outcome.distributivity.is_empty());
        assert!(outcome.fixpoints.is_empty());
        assert_eq!(engine.display(&outcome.result), "4");
    }

    #[test]
    fn document_errors_are_reported() {
        let mut engine = Engine::new();
        assert!(engine.load_document("bad.xml", "<a><b></a>").is_err());
        let err = engine.run("doc('missing.xml')").unwrap_err();
        assert!(matches!(err, IfpError::Eval(_)));
    }
}
