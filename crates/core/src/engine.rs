//! The engine facade: documents, strategy/back-end selection, prepared
//! queries.

use xqy_eval::{FixpointStats, FixpointStrategy};
use xqy_parser::ast::QueryModule;
use xqy_parser::parse_query;
use xqy_xdm::{NodeStore, Sequence};

use crate::prepared::{Backend, Bindings, OccurrencePlan, PreparedQuery};
use crate::{IfpError, Result};

/// How the engine evaluates `with … seeded by … recurse` occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Always use algorithm Naïve (Figure 3(a)).
    Naive,
    /// Always use algorithm Delta (Figure 3(b)) — only sound for
    /// distributive recursion bodies (Theorem 3.2); the engine does not stop
    /// you from shooting your own foot, mirroring the paper's Example 2.4.
    Delta,
    /// Decide **per IFP occurrence**: use Delta for every occurrence whose
    /// recursion body is recognised as distributive (by the syntactic *or*
    /// the algebraic check), Naïve for the rest.  This is the mode the paper
    /// advocates; one non-distributive body in a query no longer drags the
    /// other occurrences down to Naïve.
    #[default]
    Auto,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::Delta => "delta",
            Strategy::Auto => "auto",
        }
    }

    /// The algorithm this strategy forces on every occurrence, or `None`
    /// for `Auto` (per-occurrence decision from the distributivity
    /// reports).  Single source of truth for the Strategy → algorithm
    /// mapping.
    pub fn forced(&self) -> Option<FixpointStrategy> {
        match self {
            Strategy::Naive => Some(FixpointStrategy::Naive),
            Strategy::Delta => Some(FixpointStrategy::Delta),
            Strategy::Auto => None,
        }
    }
}

/// Thread-count policy for **parallel batched fixpoint execution**.
///
/// Applies to the per-seed phases of batched multi-source fixpoints — the
/// relational executor shards body evaluation, frontier materialization and
/// the per-seed merges across OS threads over a frozen read-only view of
/// the store; the source-level driver shards its image folds and result
/// materializations.  Single-source fixpoints and bodies that construct
/// nodes (the one store-mutating operator) always run sequentially, and
/// `threads == 1` takes the sequential code path exactly, so results are
/// identical for every setting.
///
/// The `XQY_FIXPOINT_THREADS` environment variable overrides the engine
/// default at [`Engine::new`] time: a number (`0`/`1` mean sequential) or
/// `auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Everything on the caller thread (the default).
    #[default]
    Sequential,
    /// Exactly this many shards (clamped to at least 1).
    Fixed(usize),
    /// One shard per available CPU core
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The shard count this policy resolves to on this machine.
    pub fn threads(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The policy named by the `XQY_FIXPOINT_THREADS` environment variable,
    /// if it is set and well-formed: `auto`, or a shard count (`0` and `1`
    /// both mean [`Parallelism::Sequential`]).
    ///
    /// A set-but-malformed value is **not** silently ignored: a warning is
    /// printed to stderr (and the engine default applies), so a typo like
    /// `XQY_FIXPOINT_THREADS=fourteen` is visible instead of quietly
    /// running sequentially.
    pub fn from_env() -> Option<Parallelism> {
        let value = std::env::var("XQY_FIXPOINT_THREADS").ok();
        let (policy, warning) = Parallelism::from_env_value(value.as_deref());
        if let Some(warning) = warning {
            eprintln!("warning: {warning}");
        }
        policy
    }

    /// Pure parse of an `XQY_FIXPOINT_THREADS` value: the resolved policy
    /// (if any) plus a warning message for a set-but-malformed value.
    /// Factored out of [`Parallelism::from_env`] so the parse is unit
    /// testable without mutating process environment.
    pub fn from_env_value(value: Option<&str>) -> (Option<Parallelism>, Option<String>) {
        let Some(value) = value else {
            return (None, None);
        };
        let trimmed = value.trim();
        if trimmed.eq_ignore_ascii_case("auto") {
            return (Some(Parallelism::Auto), None);
        }
        match trimmed.parse::<usize>() {
            Ok(0) | Ok(1) => (Some(Parallelism::Sequential), None),
            Ok(n) => (Some(Parallelism::Fixed(n)), None),
            Err(_) => (
                None,
                Some(format!(
                    "ignoring invalid XQY_FIXPOINT_THREADS value {value:?}: \
                     expected a shard count or \"auto\""
                )),
            ),
        }
    }
}

/// Distributivity assessment of one recursion body found in a query.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributivityReport {
    /// The recursion variable of the IFP occurrence.
    pub variable: String,
    /// Verdict of the syntactic `ds_$x(·)` rules (Figure 5).
    pub syntactic: bool,
    /// The rule (or failure reason) reported by the syntactic check.
    pub syntactic_rule: String,
    /// Verdict of the algebraic ∪ push-up check, when the body lies inside
    /// the algebraic compiler's subset.
    pub algebraic: Option<bool>,
    /// The operator that blocked the push-up, if any.
    pub algebraic_blocked_by: Option<String>,
}

impl DistributivityReport {
    /// `true` when either approximation certifies distributivity.
    pub fn is_distributive(&self) -> bool {
        self.syntactic || self.algebraic == Some(true)
    }
}

/// The outcome of running a query through the engine.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result.
    pub result: Sequence,
    /// One report per IFP occurrence in the query, in syntactic order.
    pub distributivity: Vec<DistributivityReport>,
    /// The per-occurrence execution decisions (strategy and back-end),
    /// index-aligned with `distributivity`.
    pub occurrences: Vec<OccurrencePlan>,
    /// Per-fixpoint runtime statistics (iterations, nodes fed back, …) in
    /// execution order — one entry per fixpoint *run*, so an occurrence
    /// inside a `for` loop contributes one entry per binding.
    pub fixpoints: Vec<FixpointStats>,
}

impl QueryOutcome {
    /// Query-level strategy summary, kept for compatibility with the
    /// pre-prepared-query API: [`FixpointStrategy::Delta`] when the query
    /// has at least one IFP occurrence and every occurrence ran Delta,
    /// [`FixpointStrategy::Naive`] otherwise.  Per-occurrence decisions are
    /// in [`QueryOutcome::occurrences`].
    pub fn strategy_used(&self) -> FixpointStrategy {
        if !self.occurrences.is_empty()
            && self
                .occurrences
                .iter()
                .all(|o| o.strategy == FixpointStrategy::Delta)
        {
            FixpointStrategy::Delta
        } else {
            FixpointStrategy::Naive
        }
    }

    /// The largest number of seeds any fixpoint run of this outcome
    /// evaluated together as a **batched multi-source fixpoint** — `0` when
    /// every run was an ordinary single-source fixpoint.  Per-run batch
    /// sizes are in [`FixpointStats::batch_seeds`]
    /// (`self.fixpoints[i].batch_seeds`); see
    /// [`PreparedQuery::execute_batched`](crate::PreparedQuery::execute_batched).
    pub fn batch_seeds(&self) -> usize {
        self.fixpoints
            .iter()
            .map(|s| s.batch_seeds)
            .max()
            .unwrap_or(0)
    }
}

/// The engine: owns the node store and the configuration, prepares queries
/// and runs them through the source-level evaluator and/or the relational
/// back-end.
///
/// The core API is [`Engine::prepare`] → [`PreparedQuery::execute`]: parse,
/// analyse and compile once, execute many times.  [`Engine::run`] is a thin
/// prepare-then-execute convenience for one-shot queries.
pub struct Engine {
    pub(crate) store: NodeStore,
    pub(crate) strategy: Strategy,
    pub(crate) backend: Backend,
    pub(crate) seed_in_result: bool,
    pub(crate) parallelism: Parallelism,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Create an engine with an empty document store, the `Auto` strategy
    /// and the source-level back-end.
    pub fn new() -> Self {
        Engine {
            store: NodeStore::new(),
            strategy: Strategy::Auto,
            backend: Backend::SourceLevel,
            seed_in_result: false,
            parallelism: Parallelism::from_env().unwrap_or_default(),
        }
    }

    /// Select the thread policy for batched fixpoint execution (captured by
    /// [`Engine::prepare`]; a [`PreparedQuery`] can override it with
    /// [`PreparedQuery::with_parallelism`](crate::PreparedQuery::with_parallelism)).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The currently selected thread policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Select the fixpoint strategy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// The currently selected strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Select the default back-end for queries prepared by this engine (a
    /// [`PreparedQuery`] can override it with
    /// [`PreparedQuery::set_backend`]).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The currently selected back-end.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Use the seed-inclusive IFP reading (see
    /// [`EvalOptions::seed_in_result`](xqy_eval::EvalOptions)).
    pub fn set_seed_in_result(&mut self, value: bool) {
        self.seed_in_result = value;
    }

    /// Borrow the node store (e.g. to serialize result nodes).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Mutably borrow the node store.
    pub fn store_mut(&mut self) -> &mut NodeStore {
        &mut self.store
    }

    /// Load a document under `uri`.
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<()> {
        self.store
            .parse_document_with_uri(uri, xml)
            .map(|_| ())
            .map_err(|e| IfpError::Document(e.to_string()))
    }

    /// Load a document and declare additional ID-typed attribute names
    /// (mirroring DTD `#ID` declarations such as the curriculum's `code`).
    pub fn load_document_with_ids(
        &mut self,
        uri: &str,
        xml: &str,
        id_attrs: &[&str],
    ) -> Result<()> {
        let doc = self
            .store
            .parse_document_with_uri(uri, xml)
            .map_err(|e| IfpError::Document(e.to_string()))?;
        for attr in id_attrs {
            self.store.register_id_attribute(doc, attr);
        }
        Ok(())
    }

    /// Parse and analyse `query` once, producing a [`PreparedQuery`] that
    /// can be executed any number of times (with external variables bound
    /// per execution).  The prepared query captures the engine's current
    /// strategy and back-end selection; it does *not* capture documents —
    /// execution always sees the engine's store as it is at execute time.
    pub fn prepare(&self, query: &str) -> Result<PreparedQuery> {
        let module = parse_query(query)?;
        Ok(self.prepare_module(module))
    }

    /// Like [`Engine::prepare`], for an already-parsed module.
    pub fn prepare_module(&self, module: QueryModule) -> PreparedQuery {
        PreparedQuery::analyse_module(module, self.strategy, self.backend, self.parallelism)
    }

    /// Analyse the distributivity of every IFP occurrence in `module`.
    pub fn analyse(&self, module: &QueryModule) -> Vec<DistributivityReport> {
        crate::prepared::analyse_occurrences(module, self.strategy)
            .iter()
            .map(|occ| occ.report().clone())
            .collect()
    }

    /// Parse, analyse and evaluate a query with the configured strategy and
    /// back-end — a thin [`Engine::prepare`] + [`PreparedQuery::execute`]
    /// convenience for queries without external variables.
    ///
    /// ```
    /// use xqy_ifp::Engine;
    ///
    /// let mut engine = Engine::new();
    /// engine.load_document("doc.xml", "<r><a/><a/></r>").unwrap();
    /// let outcome = engine.run("count(doc('doc.xml')/r/a)").unwrap();
    /// assert_eq!(engine.display(&outcome.result), "2");
    /// ```
    pub fn run(&mut self, query: &str) -> Result<QueryOutcome> {
        self.prepare(query)?.execute(self, &Bindings::new())
    }

    /// Like [`Engine::run`], for an already-parsed module.
    ///
    /// Convenience only: it clones `module` into a throw-away prepared
    /// query.  Callers that run the same module repeatedly should
    /// [`prepare_module`](Engine::prepare_module) once and reuse the
    /// [`PreparedQuery`].
    pub fn run_module(&mut self, module: &QueryModule) -> Result<QueryOutcome> {
        self.prepare_module(module.clone())
            .execute(self, &Bindings::new())
    }

    /// Serialize a result sequence (nodes as XML, atomics as text).
    pub fn display(&self, seq: &Sequence) -> String {
        seq.display(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_eval::FixpointBackendTag;

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
    </curriculum>"#;

    const Q1: &str = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
                      recurse $x/id(./prerequisites/pre_code)";

    const Q2: &str = "let $seed := (<a/>,<b><c><d/></c></b>) \
                      return with $x seeded by $seed \
                      recurse if (count($x/self::a)) then $x/* else ()";

    fn engine() -> Engine {
        let mut engine = Engine::new();
        engine
            .load_document_with_ids("curriculum.xml", CURRICULUM, &["code"])
            .unwrap();
        engine
    }

    #[test]
    fn auto_strategy_picks_delta_for_q1() {
        let mut engine = engine();
        let outcome = engine.run(Q1).unwrap();
        assert_eq!(outcome.strategy_used(), FixpointStrategy::Delta);
        assert_eq!(outcome.result.len(), 3);
        assert_eq!(outcome.distributivity.len(), 1);
        assert!(outcome.distributivity[0].syntactic);
        assert_eq!(outcome.distributivity[0].algebraic, Some(true));
        assert_eq!(outcome.occurrences.len(), 1);
        assert_eq!(outcome.occurrences[0].strategy, FixpointStrategy::Delta);
        assert_eq!(
            outcome.occurrences[0].backend,
            FixpointBackendTag::Interpreted
        );
    }

    #[test]
    fn auto_strategy_falls_back_to_naive_for_q2() {
        let mut engine = engine();
        engine.set_seed_in_result(true);
        let outcome = engine.run(Q2).unwrap();
        assert_eq!(outcome.strategy_used(), FixpointStrategy::Naive);
        assert!(!outcome.distributivity[0].is_distributive());
        // Naïve on the seed-inclusive reading gives (a, b, c, d).
        assert_eq!(outcome.result.len(), 4);
    }

    #[test]
    fn explicit_strategies_are_respected() {
        let mut engine = engine();
        engine.set_strategy(Strategy::Naive);
        let naive = engine.run(Q1).unwrap();
        assert_eq!(naive.strategy_used(), FixpointStrategy::Naive);

        engine.set_strategy(Strategy::Delta);
        let delta = engine.run(Q1).unwrap();
        assert_eq!(delta.strategy_used(), FixpointStrategy::Delta);
        assert_eq!(naive.result.len(), delta.result.len());
        assert!(
            delta.fixpoints[0].nodes_fed_back < naive.fixpoints[0].nodes_fed_back,
            "delta should feed back fewer nodes"
        );
    }

    #[test]
    fn algebraic_backend_agrees_with_the_evaluator() {
        let mut engine = engine();
        let eval_result = engine.run(Q1).unwrap();

        engine.set_backend(Backend::Algebraic);
        let algebraic = engine.run(Q1).unwrap();
        assert_eq!(algebraic.result.len(), eval_result.result.len());
        assert_eq!(
            algebraic.occurrences[0].backend,
            FixpointBackendTag::Algebraic
        );
        assert!(algebraic.fixpoints[0].iterations >= 2);
    }

    #[test]
    fn queries_without_fixpoints_report_no_distributivity() {
        let mut engine = engine();
        let outcome = engine.run("count(doc('curriculum.xml')//course)").unwrap();
        assert!(outcome.distributivity.is_empty());
        assert!(outcome.occurrences.is_empty());
        assert!(outcome.fixpoints.is_empty());
        assert_eq!(engine.display(&outcome.result), "4");
    }

    #[test]
    fn document_errors_are_reported() {
        let mut engine = Engine::new();
        assert!(engine.load_document("bad.xml", "<a><b></a>").is_err());
        let err = engine.run("doc('missing.xml')").unwrap_err();
        assert!(matches!(err, IfpError::Eval(_)));
    }

    #[test]
    fn free_variables_are_reported_unbound_by_run() {
        let mut engine = engine();
        let err = engine.run("count($seed)").unwrap_err();
        assert!(matches!(err, IfpError::UnboundVariable(name) if name == "seed"));
    }

    #[test]
    fn parallelism_policies_resolve_to_shard_counts() {
        assert_eq!(Parallelism::default(), Parallelism::Sequential);
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::Fixed(4).threads(), 4);
        // Fixed(0) is clamped: there is always at least the caller thread.
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn auto_parallelism_uses_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(Parallelism::Auto.threads(), cores);
    }

    #[test]
    fn env_parallelism_parses_valid_values_without_warning() {
        assert_eq!(Parallelism::from_env_value(None), (None, None));
        assert_eq!(
            Parallelism::from_env_value(Some("auto")),
            (Some(Parallelism::Auto), None)
        );
        assert_eq!(
            Parallelism::from_env_value(Some(" AUTO ")),
            (Some(Parallelism::Auto), None)
        );
        assert_eq!(
            Parallelism::from_env_value(Some("0")),
            (Some(Parallelism::Sequential), None)
        );
        assert_eq!(
            Parallelism::from_env_value(Some("1")),
            (Some(Parallelism::Sequential), None)
        );
        assert_eq!(
            Parallelism::from_env_value(Some("8")),
            (Some(Parallelism::Fixed(8)), None)
        );
    }

    #[test]
    fn env_parallelism_warns_on_invalid_values() {
        for bad in ["fourteen", "-2", "4x", ""] {
            let (policy, warning) = Parallelism::from_env_value(Some(bad));
            assert_eq!(policy, None, "invalid value {bad:?} must not resolve");
            let warning = warning.expect("invalid value must produce a warning");
            assert!(warning.contains("XQY_FIXPOINT_THREADS"));
            assert!(warning.contains(bad));
        }
    }

    #[test]
    fn engine_parallelism_is_settable_and_captured_by_prepare() {
        let mut engine = engine();
        engine.set_parallelism(Parallelism::Fixed(4));
        assert_eq!(engine.parallelism(), Parallelism::Fixed(4));
        let prepared = engine.prepare(Q1).unwrap();
        assert_eq!(prepared.parallelism(), Parallelism::Fixed(4));
        // The prepared-query override does not touch the engine default.
        let prepared = prepared.with_parallelism(Parallelism::Sequential);
        assert_eq!(prepared.parallelism(), Parallelism::Sequential);
        assert_eq!(engine.parallelism(), Parallelism::Fixed(4));
    }
}
