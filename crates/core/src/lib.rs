#![warn(missing_docs)]

//! # xqy-ifp — An Inflationary Fixed Point Operator in XQuery
//!
//! This crate is the reproduction's public face: it packages the paper's
//! contribution — the `with $x seeded by e recurse e` form, the Naïve and
//! Delta evaluation algorithms, and the two safe approximations of the
//! distributivity property that decide when Delta may be used — behind one
//! [`Engine`] API.
//!
//! * [`syntactic`] implements the `ds_$x(·)` inference rules of Figure 5
//!   (the purely syntactic distributivity approximation) together with the
//!   "distributivity hint" rewrite of Section 3.2.
//! * The algebraic approximation of Section 4 (the `∪` push-up over
//!   Pathfinder-style plans) is re-exported from [`xqy_algebra`].
//! * [`rewrite`] performs the source-level Naïve→Delta transformation the
//!   paper applied for Saxon: an IFP form is rewritten into the recursive
//!   user-defined functions `fix(·)` (Figure 2) or `delta(·,·)` (Figure 4).
//! * [`closure`] provides Regular XPath's transitive closure `e+` as a
//!   library function on top of the IFP form.
//! * [`engine`] and [`prepared`] tie everything together behind the
//!   prepared-query API: [`Engine::prepare`] parses a query, analyses the
//!   distributivity of every IFP occurrence, picks a strategy per
//!   occurrence, and pre-compiles the recursion bodies that lie inside the
//!   algebraic subset — **once** — and [`PreparedQuery::execute`] runs the
//!   artifact any number of times with externally bound variables
//!   ([`Bindings`]) against whichever documents the engine currently holds.
//!   The [`Backend`] knob selects who drives the fixpoints: the
//!   source-level interpreter, the relational executor, or per-occurrence
//!   `Auto`.  [`Engine::run`] remains as a thin prepare-then-execute
//!   convenience.
//!
//! ```
//! use xqy_ifp::{Bindings, Engine, Strategy};
//!
//! let mut engine = Engine::new();
//! engine
//!     .load_document_with_ids(
//!         "curriculum.xml",
//!         r#"<curriculum>
//!              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
//!              <course code="c2"><prerequisites/></course>
//!            </curriculum>"#,
//!         &["code"],
//!     )
//!     .unwrap();
//! engine.set_strategy(Strategy::Auto);
//!
//! // Parse + analyse + compile once …
//! let prepared = engine
//!     .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")
//!     .unwrap();
//! assert_eq!(prepared.external_variables(), ["seed"]);
//! assert!(prepared.distributivity().iter().all(|d| d.syntactic));
//!
//! // … execute many times, binding a different seed each time.
//! let seed = engine
//!     .run("doc('curriculum.xml')/curriculum/course[@code='c1']")
//!     .unwrap()
//!     .result;
//! let outcome = prepared
//!     .execute(&mut engine, &Bindings::new().with("seed", seed))
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 1);
//! ```

pub mod closure;
pub mod cost;
pub mod engine;
pub mod prepared;
pub mod rewrite;
pub mod syntactic;

pub use cost::{CostDecision, DecisionSource, FeedbackCell, OccurrenceFeatures, PlanAlternative};
pub use engine::{DistributivityReport, Engine, Parallelism, QueryOutcome, Strategy};
pub use prepared::{
    Backend, BatchedOutcome, Bindings, ExecOptions, OccurrencePlan, PreparedOccurrence,
    PreparedQuery, ResourceLimits,
};
pub use rewrite::{rewrite_fixpoints_to_functions, RewriteStyle};
pub use syntactic::{distributivity_hint, is_distributivity_safe, DsJudgement};

// Re-export the building blocks so downstream users need only one crate.
pub use xqy_algebra as algebra;
pub use xqy_eval as eval;
pub use xqy_parser as parser;
pub use xqy_xdm as xdm;

/// Crate-level error: unifies parser, evaluation and algebra errors.
#[derive(Debug, Clone, PartialEq)]
pub enum IfpError {
    /// Query text failed to parse.
    Parse(String),
    /// Dynamic evaluation failed.
    Eval(xqy_eval::EvalError),
    /// The algebraic back-end failed.
    Algebra(xqy_algebra::AlgebraError),
    /// Document loading failed.
    Document(String),
    /// A prepared query was executed without a [`Bindings`] entry for one of
    /// its external variables.
    UnboundVariable(String),
}

impl std::fmt::Display for IfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IfpError::Parse(msg) => write!(f, "parse error: {msg}"),
            IfpError::Eval(err) => write!(f, "evaluation error: {err}"),
            IfpError::Algebra(err) => write!(f, "algebra error: {err}"),
            IfpError::Document(msg) => write!(f, "document error: {msg}"),
            IfpError::UnboundVariable(name) => {
                write!(
                    f,
                    "external variable ${name} is not bound (supply it via Bindings)"
                )
            }
        }
    }
}

impl std::error::Error for IfpError {}

impl From<xqy_parser::ParseError> for IfpError {
    fn from(value: xqy_parser::ParseError) -> Self {
        IfpError::Parse(value.to_string())
    }
}

impl From<xqy_eval::EvalError> for IfpError {
    fn from(value: xqy_eval::EvalError) -> Self {
        IfpError::Eval(value)
    }
}

impl From<xqy_algebra::AlgebraError> for IfpError {
    fn from(value: xqy_algebra::AlgebraError) -> Self {
        IfpError::Algebra(value)
    }
}

impl From<xqy_xdm::XdmError> for IfpError {
    fn from(value: xqy_xdm::XdmError) -> Self {
        IfpError::Document(value.to_string())
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, IfpError>;
