//! Syntactic distributivity safety `ds_$x(·)` — Figure 5 of the paper.
//!
//! The judgement traverses the expression's parse tree bottom-up and checks
//! sufficient *syntactic* conditions for the distributivity property of
//! Definition 3.1.  Whenever the judgement succeeds, algorithm Delta may
//! safely replace Naïve for the inflationary fixed point whose body is the
//! judged expression (Theorem 3.2).  The approximation is sound but
//! incomplete — `count($x) >= 1` is distributive yet not derivable — which
//! is why the paper also offers the *distributivity hint* rewrite
//! ([`distributivity_hint`]) and the algebraic check of Section 4
//! ([`xqy_algebra::check_distributivity`]).
//!
//! Rule names follow Figure 5 (`CONST`, `VAR`, `IF`, `CONCAT`, `FOR1/2`,
//! `LET1/2`, `TYPESW`, `STEP1/2`, `FUNCALL`); two sound extensions beyond
//! the figure are documented on [`DsJudgement`].

use std::collections::HashMap;

use xqy_parser::ast::{Expr, FunctionDecl};
use xqy_parser::BinaryOp;

/// The outcome of the `ds_$x(e)` judgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsJudgement {
    /// `true` when distributivity safety could be derived.
    pub safe: bool,
    /// The rule that concluded the judgement at the root (e.g. `"STEP2"`),
    /// or the reason the derivation failed.
    pub rule: String,
}

impl DsJudgement {
    fn safe(rule: &str) -> Self {
        DsJudgement {
            safe: true,
            rule: rule.to_string(),
        }
    }

    fn unsafe_because(reason: impl Into<String>) -> Self {
        DsJudgement {
            safe: false,
            rule: reason.into(),
        }
    }
}

/// Check whether `expr` is distributivity-safe for variable `var`
/// (`ds_$var(expr)` of Figure 5).  `functions` supplies the bodies of
/// user-defined functions for the `FUNCALL` rule.
pub fn is_distributivity_safe(expr: &Expr, var: &str, functions: &[FunctionDecl]) -> DsJudgement {
    let map: HashMap<&str, &FunctionDecl> = functions
        .iter()
        .map(|f| (strip_prefix(&f.name), f))
        .collect();
    let mut in_progress = Vec::new();
    ds(expr, var, &map, &mut in_progress)
}

/// The paper's "distributivity hint" (Section 3.2): every distributive
/// expression `e($x)` is set-equal to `for $y in $x return e($y)`, and the
/// rewritten form *is* derivable by the rules (via `FOR2`).  Query authors
/// (or tools) can apply this rewrite to guide the processor towards Delta.
pub fn distributivity_hint(expr: &Expr, var: &str, fresh_var: &str) -> Expr {
    Expr::For {
        var: fresh_var.to_string(),
        pos_var: None,
        seq: Box::new(Expr::VarRef(var.to_string())),
        body: Box::new(expr.rename_free_var(var, fresh_var)),
    }
}

fn strip_prefix(name: &str) -> &str {
    match name.split_once(':') {
        Some((_, local)) => local,
        None => name,
    }
}

fn ds(
    expr: &Expr,
    var: &str,
    functions: &HashMap<&str, &FunctionDecl>,
    in_progress: &mut Vec<String>,
) -> DsJudgement {
    // Node constructors create fresh identities on every invocation and are
    // therefore never distributivity-safe, even when independent of $x
    // (Section 3.2's text { "c" } example).
    if expr.contains_node_constructor() {
        return DsJudgement::unsafe_because("node constructor in expression");
    }
    // Blanket independence rule (sound): an expression in which $x does not
    // occur free evaluates to the same items for every binding of $x, so the
    // `for $y in $x return e` expansion is set-equal to `e`.
    if !expr.has_free_var(var) {
        return DsJudgement::safe("INDEPENDENT");
    }
    match expr {
        Expr::Literal(_) | Expr::EmptySequence | Expr::ContextItem => DsJudgement::safe("CONST"),
        Expr::VarRef(_) => DsJudgement::safe("VAR"),
        Expr::Sequence(items) => {
            for item in items {
                let j = ds(item, var, functions, in_progress);
                if !j.safe {
                    return j;
                }
            }
            DsJudgement::safe("CONCAT")
        }
        Expr::Binary { op, lhs, rhs } => match op {
            // CONCAT also covers `|` (union).
            BinaryOp::Union => {
                let l = ds(lhs, var, functions, in_progress);
                if !l.safe {
                    return l;
                }
                let r = ds(rhs, var, functions, in_progress);
                if !r.safe {
                    return r;
                }
                DsJudgement::safe("CONCAT")
            }
            // Sound extension: `e1 except e2` / `e1 intersect e2` with the
            // recursion variable only in e1 (the stratified-Datalog
            // `f(x) = x \ R` case mentioned in Section 6).
            BinaryOp::Except | BinaryOp::Intersect => {
                if rhs.has_free_var(var) {
                    return DsJudgement::unsafe_because(format!(
                        "${var} occurs in the right operand of '{}'",
                        op.symbol()
                    ));
                }
                let l = ds(lhs, var, functions, in_progress);
                if !l.safe {
                    return l;
                }
                DsJudgement::safe("EXCEPT")
            }
            other => DsJudgement::unsafe_because(format!(
                "operator '{}' inspects the sequence bound to ${var} as a whole",
                other.symbol()
            )),
        },
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            if cond.has_free_var(var) {
                return DsJudgement::unsafe_because(format!(
                    "${var} occurs free in an if(·) condition"
                ));
            }
            let t = ds(then_branch, var, functions, in_progress);
            if !t.safe {
                return t;
            }
            let e = ds(else_branch, var, functions, in_progress);
            if !e.safe {
                return e;
            }
            DsJudgement::safe("IF")
        }
        Expr::For {
            var: v,
            pos_var,
            seq,
            body,
        } => {
            if pos_var.is_some() && seq.has_free_var(var) {
                // A positional variable over a $x-dependent range inspects
                // positions within $x; stay conservative.
                return DsJudgement::unsafe_because(format!(
                    "positional for-variable over a range containing ${var}"
                ));
            }
            let range_has = seq.has_free_var(var);
            let body_has = v != var && body.has_free_var(var);
            match (range_has, body_has) {
                // FOR1: $x only in the body.
                (false, _) => {
                    let b = ds(body, var, functions, in_progress);
                    if b.safe {
                        DsJudgement::safe("FOR1")
                    } else {
                        b
                    }
                }
                // FOR2: $x only in the range.
                (true, false) => {
                    let r = ds(seq, var, functions, in_progress);
                    if r.safe {
                        DsJudgement::safe("FOR2")
                    } else {
                        r
                    }
                }
                // The linearity constraint of SQL:1999: not in both.
                (true, true) => DsJudgement::unsafe_because(format!(
                    "${var} occurs in both the range and the body of a for-expression"
                )),
            }
        }
        Expr::Let {
            var: v,
            value,
            body,
        } => {
            let value_has = value.has_free_var(var);
            let body_has = v != var && body.has_free_var(var);
            match (value_has, body_has) {
                // LET1: $x only in the body.
                (false, _) => {
                    let b = ds(body, var, functions, in_progress);
                    if b.safe {
                        DsJudgement::safe("LET1")
                    } else {
                        b
                    }
                }
                // LET2: $x only in the bound value; the body must then be
                // distributive in the let-variable.
                (true, false) => {
                    let v_judgement = ds(value, var, functions, in_progress);
                    if !v_judgement.safe {
                        return v_judgement;
                    }
                    let body_in_v = ds(body, v, functions, in_progress);
                    if body_in_v.safe {
                        DsJudgement::safe("LET2")
                    } else {
                        DsJudgement::unsafe_because(format!(
                            "let-body is not distributive in ${v}: {}",
                            body_in_v.rule
                        ))
                    }
                }
                (true, true) => DsJudgement::unsafe_because(format!(
                    "${var} occurs in both the value and the body of a let-expression"
                )),
            }
        }
        Expr::Typeswitch { operand, cases } => {
            if operand.has_free_var(var) {
                return DsJudgement::unsafe_because(format!(
                    "${var} occurs free in a typeswitch operand"
                ));
            }
            for case in cases {
                let j = ds(&case.body, var, functions, in_progress);
                if !j.safe {
                    return j;
                }
            }
            DsJudgement::safe("TYPESW")
        }
        Expr::Path { input, step } => {
            let input_has = input.has_free_var(var);
            let step_has = step.has_free_var(var);
            match (input_has, step_has) {
                (false, _) => {
                    let s = ds(step, var, functions, in_progress);
                    if s.safe {
                        DsJudgement::safe("STEP1")
                    } else {
                        s
                    }
                }
                (true, false) => {
                    let i = ds(input, var, functions, in_progress);
                    if i.safe {
                        DsJudgement::safe("STEP2")
                    } else {
                        i
                    }
                }
                (true, true) => DsJudgement::unsafe_because(format!(
                    "${var} occurs on both sides of a path step"
                )),
            }
        }
        Expr::AxisStep { predicates, .. } => {
            // The context item of an axis step ranges over single items, so
            // predicates are harmless unless they mention $x.
            if predicates.iter().any(|p| p.has_free_var(var)) {
                DsJudgement::unsafe_because(format!("${var} occurs free in a step predicate"))
            } else {
                DsJudgement::safe("STEP")
            }
        }
        Expr::Filter { input, predicates } => {
            // e[p] with $x in e inspects positions within the sequence bound
            // to $x (e.g. $x[1]); stay conservative whenever $x is involved.
            if input.has_free_var(var) || predicates.iter().any(|p| p.has_free_var(var)) {
                DsJudgement::unsafe_because(format!(
                    "filter expression over a sequence containing ${var} (e.g. $x[1]) is not distributive"
                ))
            } else {
                DsJudgement::safe("INDEPENDENT")
            }
        }
        Expr::Quantified {
            seq, cond, var: v, ..
        } => {
            // some/every quantify over their range; as long as $x is not
            // inspected as a whole by the condition, treat like FOR.
            if cond.has_free_var(var) && v != var {
                return DsJudgement::unsafe_because(format!(
                    "${var} occurs free in a quantifier condition"
                ));
            }
            let r = ds(seq, var, functions, in_progress);
            if r.safe {
                DsJudgement::safe("FOR2")
            } else {
                r
            }
        }
        Expr::FunctionCall { name, args } => {
            let local = strip_prefix(name);
            match functions.get(local) {
                Some(decl) => {
                    // FUNCALL: for every argument in which $x occurs free,
                    // the argument must be ds for $x and the function body
                    // must be ds for the corresponding parameter.
                    if in_progress.iter().any(|n| n == local) {
                        // Recursive call already under analysis: assume safe
                        // (greatest fixed point of the rule system).
                        return DsJudgement::safe("FUNCALL");
                    }
                    in_progress.push(local.to_string());
                    let mut result = DsJudgement::safe("FUNCALL");
                    for (arg, param) in args.iter().zip(decl.params.iter()) {
                        if !arg.has_free_var(var) {
                            continue;
                        }
                        let a = ds(arg, var, functions, in_progress);
                        if !a.safe {
                            result = a;
                            break;
                        }
                        let body = ds(&decl.body, param, functions, in_progress);
                        if !body.safe {
                            result = DsJudgement::unsafe_because(format!(
                                "body of {local}() is not distributive in ${param}: {}",
                                body.rule
                            ));
                            break;
                        }
                    }
                    in_progress.pop();
                    result
                }
                None => {
                    // Built-in functions: only those that apply their
                    // argument item-wise are safe; aggregates and positional
                    // functions inspect the whole sequence.
                    let itemwise = matches!(
                        local,
                        "data"
                            | "string"
                            | "id"
                            | "idref"
                            | "name"
                            | "local-name"
                            | "root"
                            | "number"
                            | "ddo"
                            | "distinct-doc-order"
                    );
                    if itemwise {
                        for arg in args {
                            let j = ds(arg, var, functions, in_progress);
                            if !j.safe {
                                return j;
                            }
                        }
                        DsJudgement::safe("BUILTIN")
                    } else {
                        DsJudgement::unsafe_because(format!(
                            "built-in {local}() inspects the sequence bound to ${var} as a whole"
                        ))
                    }
                }
            }
        }
        Expr::Unary { .. } => DsJudgement::unsafe_because(format!(
            "arithmetic over ${var} requires a singleton sequence"
        )),
        Expr::RootPath { .. } => DsJudgement::safe("CONST"),
        Expr::Fixpoint {
            seed,
            body,
            var: inner,
        } => {
            // A nested IFP: safe if $x only flows into the seed and the
            // nested body is well-behaved for its own variable.
            if body.has_free_var(var) && inner != var {
                return DsJudgement::unsafe_because(format!(
                    "${var} occurs free in a nested recursion body"
                ));
            }
            let s = ds(seed, var, functions, in_progress);
            if s.safe {
                DsJudgement::safe("FIXPOINT")
            } else {
                s
            }
        }
        Expr::DirectElement { .. }
        | Expr::ComputedElement { .. }
        | Expr::ComputedAttribute { .. }
        | Expr::ComputedText { .. } => {
            DsJudgement::unsafe_because("node constructor in expression")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_parser::{parse_expr, parse_query};

    fn check(src: &str) -> DsJudgement {
        is_distributivity_safe(&parse_expr(src).unwrap(), "x", &[])
    }

    #[test]
    fn q1_body_is_safe_via_step2() {
        let j = check("$x/id(./prerequisites/pre_code)");
        assert!(j.safe);
        assert_eq!(j.rule, "STEP2");
    }

    #[test]
    fn q2_body_is_rejected_at_the_if_condition() {
        let j = check("if (count($x/self::a)) then $x/* else ()");
        assert!(!j.safe);
        assert!(j.rule.contains("condition"));
    }

    #[test]
    fn whole_sequence_inspection_is_rejected() {
        assert!(!check("count($x)").safe);
        assert!(!check("$x[1]").safe);
        assert!(!check("$x = 10").safe);
        assert!(!check("$x + 1").safe);
        assert!(!check("-$x").safe);
    }

    #[test]
    fn location_steps_are_safe() {
        assert!(check("$x/child::course").safe);
        assert!(check("$x/descendant::person/@id").safe);
        assert!(check("$x/*").safe);
        assert!(check("$x/ancestor::scene/following-sibling::scene").safe);
    }

    #[test]
    fn constructors_are_never_safe() {
        assert!(!check("text { 'c' }").safe);
        assert!(!check("<wrap>{ $x }</wrap>").safe);
        assert!(!check("($x/*, <grow/>)").safe);
        // ... even when entirely independent of $x (Section 3.2).
        assert!(!check("element out { 1 }").safe);
    }

    #[test]
    fn independent_expressions_are_safe() {
        assert!(check("count($y) >= 1").safe);
        assert!(check("doc('d.xml')//person").safe);
        assert!(check("1 + 2").safe);
    }

    #[test]
    fn for_rules_respect_linearity() {
        // FOR1: $x only in the body.
        assert!(check("for $y in (1, 2) return $x/a").safe);
        // FOR2: $x only in the range.
        assert!(check("for $y in $x return $y/a").safe);
        // Both: rejected (the SQL:1999 linearity restriction).
        assert!(!check("for $y in $x return ($x, $y)").safe);
    }

    #[test]
    fn let_rules_match_figure_5() {
        // LET1.
        assert!(check("let $y := doc('d.xml') return $x/a").safe);
        // LET2: $x in the bound value, body distributive in $y.
        assert!(check("let $y := $x/a return $y/b").safe);
        // LET2 violated: body uses count($y).
        assert!(!check("let $y := $x/a return count($y)").safe);
        // $x in both value and body.
        assert!(!check("let $y := $x/a return ($x, $y)").safe);
    }

    #[test]
    fn except_extension_is_safe_only_with_fixed_right_operand() {
        assert!(check("$x/a except doc('d.xml')//b").safe);
        assert!(!check("doc('d.xml')//b except $x").safe);
        assert!(!check("$x/* except $x").safe);
    }

    #[test]
    fn typeswitch_rule() {
        assert!(
            check("typeswitch (doc('d.xml')) case element(a) return $x/a default return $x/b").safe
        );
        assert!(!check("typeswitch ($x) case element(a) return 1 default return 2").safe);
    }

    #[test]
    fn funcall_rule_analyses_declared_bodies() {
        let module = parse_query(
            "declare function bidder($in as node()*) as node()* {\n\
               for $id in $in/@id\n\
               let $b := doc('auction.xml')//open_auction[seller/@person = $id]/bidder/personref\n\
               return doc('auction.xml')//people/person[@id = $b/@person]\n\
             };\n\
             with $x seeded by doc('auction.xml')//person[@id='p0'] recurse bidder($x)",
        )
        .unwrap();
        let body = match &module.body {
            xqy_parser::Expr::Fixpoint { body, .. } => body.as_ref().clone(),
            other => panic!("expected fixpoint, got {other:?}"),
        };
        let j = is_distributivity_safe(&body, "x", &module.functions);
        assert!(
            j.safe,
            "bidder() body should be distributivity-safe: {}",
            j.rule
        );
    }

    #[test]
    fn funcall_rule_rejects_aggregating_bodies() {
        let module = parse_query(
            "declare function f($in) { count($in) };\n\
             with $x seeded by doc('d.xml')//a recurse f($x)",
        )
        .unwrap();
        let body = match &module.body {
            xqy_parser::Expr::Fixpoint { body, .. } => body.as_ref().clone(),
            other => panic!("expected fixpoint, got {other:?}"),
        };
        let j = is_distributivity_safe(&body, "x", &module.functions);
        assert!(!j.safe);
    }

    #[test]
    fn recursive_functions_do_not_loop_the_checker() {
        let module = parse_query(
            "declare function walk($n) { $n/child::a union walk($n/child::b) };\n\
             with $x seeded by doc('d.xml')//r recurse walk($x)",
        )
        .unwrap();
        let body = match &module.body {
            xqy_parser::Expr::Fixpoint { body, .. } => body.as_ref().clone(),
            other => panic!("expected fixpoint, got {other:?}"),
        };
        // Must terminate; the exact verdict is less important than not
        // diverging, but this particular body is derivable.
        let j = is_distributivity_safe(&body, "x", &module.functions);
        assert!(j.safe);
    }

    #[test]
    fn distributivity_hint_makes_underivable_expressions_derivable() {
        // count($x) >= 1 is distributive but not derivable…
        let original = parse_expr("count($x) >= 1").unwrap();
        assert!(!is_distributivity_safe(&original, "x", &[]).safe);
        // …its hint form is (via FOR2).
        let hinted = distributivity_hint(&original, "x", "y");
        let j = is_distributivity_safe(&hinted, "x", &[]);
        assert!(j.safe);
        assert_eq!(j.rule, "FOR2");
    }

    #[test]
    fn hint_preserves_free_variables() {
        let original = parse_expr("$x/id(./pre)").unwrap();
        let hinted = distributivity_hint(&original, "x", "y");
        assert!(hinted.has_free_var("x"));
        assert!(!hinted.free_vars().contains("y"));
    }
}
