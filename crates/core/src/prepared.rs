//! The prepared-query API: parse / analyse / compile **once**, execute
//! **many** times.
//!
//! The paper's whole pitch is that the expensive decision work — the
//! distributivity analysis of Figure 5 and Section 4, and the compilation of
//! recursion bodies into algebraic plans — is *query-sized*, not data-sized:
//! it can be paid once per query and amortized over arbitrarily many
//! executions.  [`Engine::prepare`] produces a [`PreparedQuery`] that has
//! already parsed the source, run both distributivity approximations per IFP
//! occurrence, chosen a strategy (Naïve / Delta) for each occurrence, and
//! pre-compiled the bodies that lie inside the algebraic subset;
//! [`PreparedQuery::execute`] then runs the artifact against the engine's
//! current document store, with externally bound variables supplied through
//! [`Bindings`].
//!
//! ```
//! use xqy_ifp::{Bindings, Engine};
//!
//! let mut engine = Engine::new();
//! engine
//!     .load_document_with_ids(
//!         "curriculum.xml",
//!         r#"<curriculum>
//!              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
//!              <course code="c2"><prerequisites/></course>
//!            </curriculum>"#,
//!         &["code"],
//!     )
//!     .unwrap();
//! // Analysis and plan compilation happen here, once.
//! let prepared = engine
//!     .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")
//!     .unwrap();
//! assert_eq!(prepared.external_variables(), ["seed"]);
//! // ... and are reused for every seed we execute with.
//! for code in ["c1", "c2"] {
//!     let seed = engine
//!         .run(&format!("doc('curriculum.xml')/curriculum/course[@code='{code}']"))
//!         .unwrap()
//!         .result;
//!     let bindings = Bindings::new().with("seed", seed);
//!     let outcome = prepared.execute(&mut engine, &bindings).unwrap();
//!     assert!(outcome.result.len() <= 1);
//! }
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use xqy_algebra::{
    compile_recursion_body, AlgebraError, BatchSharing, CompiledBody, Executor, MuStrategy,
};
use xqy_eval::{
    EvalError, Evaluator, FixpointBackendTag, FixpointInterceptor, FixpointStats, FixpointStrategy,
    FixpointStrategyTag,
};
use xqy_parser::ast::{Expr, QueryModule};
use xqy_parser::parse_query;
use xqy_xdm::{NodeId, QueryBudget, Sequence, StoreMut, StoreStatistics};

use crate::cost::{
    self, DecisionSource, FeedbackCell, OccurrenceFeatures, PlanAlternative, RunObservation,
};
use crate::engine::{DistributivityReport, Engine, Parallelism, QueryOutcome, Strategy};
use crate::syntactic::is_distributivity_safe;
use crate::{IfpError, Result};

/// Which back-end executes the fixpoint occurrences of a prepared query.
///
/// Every other part of a query — paths, FLWOR, functions, constructors — is
/// always evaluated by the source-level interpreter; the knob decides who
/// drives the `with … seeded by … recurse` iterations, which is where all
/// the repeated work lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The source-level interpreter runs the recursion body per iteration
    /// (the paper's "Saxon role").  This is the default: it supports the
    /// full expression subset.
    #[default]
    SourceLevel,
    /// Every IFP occurrence is driven by its pre-compiled algebraic plan on
    /// the relational executor (the paper's "MonetDB/Pathfinder role", µ and
    /// µ∆).  Preparing succeeds even for bodies outside the algebraic
    /// subset, but executing reports [`xqy_algebra::AlgebraError::Unsupported`].
    Algebraic,
    /// Per occurrence: use the pre-compiled algebraic plan when the body
    /// lies inside the algebraic subset, fall back to the interpreter
    /// otherwise.
    Auto,
}

impl Backend {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::SourceLevel => "source-level",
            Backend::Algebraic => "algebraic",
            Backend::Auto => "auto",
        }
    }
}

/// Values for the external (free) variables of a prepared query.
///
/// A query such as `with $x seeded by $seed recurse …` leaves `$seed`
/// unbound; each [`PreparedQuery::execute`] call supplies it here.  Names
/// are given without the leading `$`.
///
/// ```
/// use xqy_ifp::Bindings;
/// use xqy_ifp::xdm::Sequence;
///
/// let bindings = Bindings::new()
///     .with("seed", Sequence::empty())
///     .with("limit", Sequence::empty());
/// assert_eq!(bindings.len(), 2);
/// assert!(bindings.get("seed").is_some());
/// assert!(bindings.get("other").is_none());
/// assert_eq!(
///     bindings.iter().map(|(name, _)| name).collect::<Vec<_>>(),
///     ["seed", "limit"]
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    vars: Vec<(String, Sequence)>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Builder-style: add (or replace) a binding and return `self`.
    pub fn with(mut self, name: impl Into<String>, value: Sequence) -> Self {
        self.set(name, value);
        self
    }

    /// Add or replace a binding.
    pub fn set(&mut self, name: impl Into<String>, value: Sequence) {
        let name = name.into();
        if let Some(slot) = self.vars.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.vars.push((name, value));
        }
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Sequence> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Sequence)> {
        self.vars.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// One IFP occurrence of a prepared query: its analysis results, the
/// strategy chosen for it, and (when the body lies inside the algebraic
/// subset) its pre-compiled plan.
#[derive(Debug, Clone)]
pub struct PreparedOccurrence {
    var: String,
    /// Shared so per-execute bookkeeping (strategy overrides, interceptor
    /// entries) is O(occurrences), not O(AST size).
    body: Arc<Expr>,
    report: DistributivityReport,
    strategy: FixpointStrategy,
    compiled: std::result::Result<Arc<CompiledBody>, String>,
    /// Static features feeding the cost model (body size, `id()` usage,
    /// constructor presence, capability flags).
    features: OccurrenceFeatures,
    /// The occurrence's feedback loop: observed run statistics keyed on the
    /// store-statistics fingerprint, consulted by every plan decision.
    /// Shared across clones *and* forks — observations describe the data,
    /// not an executor, and the cell self-invalidates when the data
    /// materially changes.
    feedback: Arc<FeedbackCell>,
    /// The occurrence's *persistent* plan executor: its interner and its
    /// rec-independent static cache survive across `execute()` calls (and
    /// across every seed of a per-item loop).  Shared — clones of the
    /// prepared query reuse the same executor, which is sound because the
    /// executor re-keys itself on the plan fingerprint and on the store's
    /// document-load epoch.  Staleness after `Engine::load_document*` is
    /// handled by that epoch check, not by rebuilding executors.
    executor: Arc<Mutex<Executor>>,
    /// A second persistent executor dedicated to the occurrence's
    /// **seed-carried batched plan** (whose fingerprint differs from the
    /// per-seed plan's).  Keeping the two plans on separate executors lets
    /// a caller interleave [`PreparedQuery::execute`] and
    /// [`PreparedQuery::execute_batched`] without thrashing either static
    /// cache on every switch.
    batched_executor: Arc<Mutex<Executor>>,
}

impl PreparedOccurrence {
    /// The recursion variable (without the `$`).
    pub fn variable(&self) -> &str {
        &self.var
    }

    /// The distributivity assessment of the occurrence's body.
    pub fn report(&self) -> &DistributivityReport {
        &self.report
    }

    /// The strategy chosen for this occurrence (per-occurrence under
    /// [`Strategy::Auto`]: Delta when either approximation certifies
    /// distributivity, Naïve otherwise).
    pub fn strategy(&self) -> FixpointStrategy {
        self.strategy
    }

    /// `true` when the body compiled to an algebraic plan, i.e. the
    /// occurrence can run on the relational back-end.
    pub fn is_algebraic_capable(&self) -> bool {
        self.compiled.is_ok()
    }

    /// `true` when the body additionally has a **seed-carried batched
    /// plan**, i.e. a whole seed set can run as one multi-source fixpoint
    /// through [`PreparedQuery::execute_batched`] instead of one fixpoint
    /// per seed.
    pub fn is_batch_capable(&self) -> bool {
        self.compiled
            .as_ref()
            .map(|c| c.batched_plan.is_some())
            .unwrap_or(false)
    }

    /// The static features the cost model prices this occurrence under.
    pub fn features(&self) -> &OccurrenceFeatures {
        &self.features
    }

    /// Lifetime totals of the occurrence's persistent executors (per-seed
    /// and batched combined): `(static_cache_hits, static_plan_evals)`.
    /// Per-execute deltas are reported in [`OccurrencePlan`].
    pub fn executor_cache_totals(&self) -> (u64, u64) {
        let exec = lock_executor(&self.executor);
        let batched = lock_executor(&self.batched_executor);
        (
            exec.static_cache_hits() + batched.static_cache_hits(),
            exec.static_plan_evals() + batched.static_plan_evals(),
        )
    }
}

/// How this occurrence's strategy maps onto the relational operators.
fn mu_strategy(strategy: FixpointStrategy) -> MuStrategy {
    match strategy {
        FixpointStrategy::Naive => MuStrategy::Mu,
        FixpointStrategy::Delta => MuStrategy::MuDelta,
    }
}

fn strategy_tag(strategy: FixpointStrategy) -> FixpointStrategyTag {
    match strategy {
        FixpointStrategy::Naive => FixpointStrategyTag::Naive,
        FixpointStrategy::Delta => FixpointStrategyTag::Delta,
    }
}

/// The per-occurrence execution decision recorded in a [`QueryOutcome`]:
/// which algorithm, back-end and batching ran each `with … recurse`
/// occurrence, who decided (knobs, static cost model, or feedback), and at
/// what estimated vs. observed cost — in syntactic order (index-aligned
/// with `QueryOutcome::distributivity`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccurrencePlan {
    /// The recursion variable of the occurrence.
    pub variable: String,
    /// The algorithm that ran the occurrence.
    pub strategy: FixpointStrategy,
    /// The back-end that drove the occurrence.
    pub backend: FixpointBackendTag,
    /// `true` when the occurrence ran as a single batched multi-source
    /// fixpoint (only possible under
    /// [`execute_batched`](PreparedQuery::execute_batched)).
    pub batched: bool,
    /// Who settled the plan: the knobs ([`DecisionSource::Forced`]), the
    /// static cost estimate, or feedback from earlier runs on the same
    /// data.
    pub decided_by: DecisionSource,
    /// The cost the winning alternative was selected at, in the model's
    /// abstract microseconds (a rescaled measured wall time once the
    /// winner has been observed).
    pub estimated_cost_micros: u64,
    /// The observed wall time of this execution's fixpoint runs for the
    /// occurrence, in microseconds; `None` when the occurrence did not run
    /// (dead code, empty seed set).
    pub observed_cost_micros: Option<u64>,
    /// Static-cache hits of the occurrence's persistent executor during
    /// *this* `execute()` call: rec-independent plan tables that came back
    /// as shared handles.  Always zero on the interpreted back-end.
    pub static_cache_hits: u64,
    /// Rec-independent plan nodes actually evaluated during this
    /// `execute()` call.  With a persistent executor the second execution
    /// of a prepared query against an unchanged store reports zero here.
    pub static_plan_evals: u64,
}

/// Per-query resource budgets, enforced cooperatively at the fixpoint
/// iteration barriers of both back-ends (the same places the engine's own
/// divergence limits are checked), so a query over budget aborts between
/// iterations, never mid-mutation.
///
/// Unlike the engine-wide safety nets (`max_fixpoint_iterations` /
/// `max_fixpoint_nodes`, whose breach means "the IFP is undefined"),
/// exceeding a caller-supplied limit here is a *resource* verdict: a typed
/// [`EvalError::BudgetExceeded`] (or `DeadlineExceeded`) carrying the
/// occurrence and iteration count, which the query service maps to
/// `ServiceError::ResourceExhausted` / `DeadlineExceeded`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceLimits {
    /// Cap on any single fixpoint accumulator's size, in nodes.
    pub max_result_nodes: Option<usize>,
    /// Approximate cap on bytes materialized on behalf of the query
    /// (charged at `TextPool` / `Sequence` / store-arena / `Table` growth
    /// points, see [`xqy_xdm::budget`]).  Before failing, the drivers
    /// degrade once: store memos and executor static caches are dropped
    /// (and credited back), and sharded evaluation falls back to
    /// sequential.
    pub max_memory_bytes: Option<u64>,
    /// Cap on any single fixpoint occurrence's iteration count.
    pub max_iterations: Option<usize>,
    /// Cooperative per-query deadline: fixpoint drivers — source-level and
    /// algebraic — check it at every iteration barrier and abort with
    /// [`EvalError::DeadlineExceeded`] once the instant has passed.
    /// `None` never times out.
    pub deadline: Option<Instant>,
}

impl ResourceLimits {
    /// `true` when no limit is set (the default).
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceLimits::default()
    }
}

/// Per-execution settings for [`PreparedQuery::execute_on`].
///
/// [`PreparedQuery::execute`] derives these from the engine (and never sets
/// limits); engine-less callers — the concurrent query service — build
/// them directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Start each IFP accumulation from the seed itself (see
    /// [`Engine::set_seed_in_result`]).
    pub seed_in_result: bool,
    /// Per-query resource budgets (deadline included).
    pub limits: ResourceLimits,
}

/// A parsed, analysed and (where possible) compiled query, ready to be
/// executed any number of times.  Create with [`Engine::prepare`]; see the
/// [module docs](self) for the amortization story.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    module: QueryModule,
    backend: Backend,
    /// The strategy knob as given: [`Strategy::Auto`] widens the
    /// per-occurrence candidate grid to both sound algorithms, a forced
    /// strategy collapses it.
    strategy: Strategy,
    default_strategy: FixpointStrategy,
    parallelism: Parallelism,
    occurrences: Vec<PreparedOccurrence>,
    external_vars: Vec<String>,
}

impl PreparedQuery {
    /// Parse and analyse `query` without an [`Engine`]: the standalone
    /// entry point for callers that hold no engine — e.g. a concurrent
    /// query service preparing plans into a shared cache.  Preparation is
    /// purely static (no store is consulted), so the artifact can later be
    /// executed against any store via
    /// [`execute_on`](PreparedQuery::execute_on).
    pub fn prepare(
        query: &str,
        strategy: Strategy,
        backend: Backend,
        parallelism: Parallelism,
    ) -> Result<Self> {
        let module = parse_query(query)?;
        Ok(PreparedQuery::analyse_module(
            module,
            strategy,
            backend,
            parallelism,
        ))
    }

    /// Analyse `module`: collect its IFP occurrences, run both
    /// distributivity approximations on each, choose a per-occurrence
    /// strategy under `strategy`, and pre-compile the algebraic plans.
    pub(crate) fn analyse_module(
        module: QueryModule,
        strategy: Strategy,
        backend: Backend,
        parallelism: Parallelism,
    ) -> Self {
        let occurrences = analyse_occurrences(&module, strategy);
        let external_vars = external_variables(&module);
        let default_strategy = strategy.forced().unwrap_or(FixpointStrategy::Naive);
        PreparedQuery {
            module,
            backend,
            strategy,
            default_strategy,
            parallelism,
            occurrences,
            external_vars,
        }
    }

    /// The back-end the fixpoint occurrences will run on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Select the back-end for the fixpoint occurrences.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Builder-style [`set_backend`](Self::set_backend).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The thread policy batched fixpoint executions run under.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Select the thread policy for batched fixpoint executions (overrides
    /// the engine setting captured at prepare time).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Builder-style [`set_parallelism`](Self::set_parallelism).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The IFP occurrences of the query, in syntactic order.
    pub fn occurrences(&self) -> &[PreparedOccurrence] {
        &self.occurrences
    }

    /// The distributivity reports, one per occurrence in syntactic order.
    pub fn distributivity(&self) -> Vec<DistributivityReport> {
        self.occurrences.iter().map(|o| o.report.clone()).collect()
    }

    /// The external (free) variables the query expects from [`Bindings`]
    /// at execution time, sorted by name and given without the `$`.
    pub fn external_variables(&self) -> &[String] {
        &self.external_vars
    }

    /// The parsed module.
    pub fn module(&self) -> &QueryModule {
        &self.module
    }

    /// The [fingerprint](xqy_algebra::Plan::fingerprint) of each
    /// occurrence's compiled algebraic plan, in syntactic order; `None` for
    /// occurrences outside the algebraic subset.  Two prepared queries
    /// whose fingerprints coincide drive identical plans — the identity a
    /// shared plan cache exposes for observability.
    pub fn plan_fingerprints(&self) -> Vec<Option<u64>> {
        self.occurrences
            .iter()
            .map(|occ| occ.compiled.as_ref().ok().map(|c| c.plan.fingerprint()))
            .collect()
    }

    /// A copy of this prepared artifact with **fresh** persistent
    /// executors, sharing the compiled plans (which are `Arc`s, so no
    /// re-compilation happens).  A `clone()` shares the per-occurrence
    /// executors, whose `Mutex` is held for a whole fixpoint run — sessions
    /// that execute the *same* cached query concurrently would serialize on
    /// it.  Forking gives each session its own executors at the cost of
    /// re-warming their static caches; a plan cache keeps a pool of
    /// released forks so the warm-up amortizes across queries.
    pub fn fork_executors(&self) -> Self {
        let mut forked = self.clone();
        for occ in &mut forked.occurrences {
            occ.executor = Arc::new(Mutex::new(Executor::new()));
            occ.batched_executor = Arc::new(Mutex::new(Executor::new()));
        }
        forked
    }

    /// The grid of plan alternatives the knobs leave open for `occ`,
    /// ordered so preferred routes come first (the tie-break of
    /// [`cost::decide`]): batched before per-seed, algebraic before
    /// source-level, Delta before Naïve.
    ///
    /// Soundness and capability prune the grid: Delta only enters under
    /// [`Strategy::Auto`] when a distributivity approximation certified the
    /// body (a *forced* Delta is kept as-is — the engine does not stop you
    /// from shooting your own foot); the algebraic routes need a compiled
    /// plan, the batched algebraic route a seed-carried one.  A forced
    /// [`Backend::Algebraic`] over an uncompilable body is an error, as
    /// before.
    fn candidate_grid(
        &self,
        occ: &PreparedOccurrence,
        batch: bool,
    ) -> Result<Vec<PlanAlternative>> {
        let strategies: &[FixpointStrategy] = match self.strategy.forced() {
            Some(FixpointStrategy::Delta) => &[FixpointStrategy::Delta],
            Some(FixpointStrategy::Naive) => &[FixpointStrategy::Naive],
            None if occ.report.is_distributive() => {
                &[FixpointStrategy::Delta, FixpointStrategy::Naive]
            }
            None => &[FixpointStrategy::Naive],
        };
        let backends: &[FixpointBackendTag] = match (self.backend, &occ.compiled) {
            (Backend::SourceLevel, _) => &[FixpointBackendTag::Interpreted],
            (Backend::Algebraic, Ok(_)) => &[FixpointBackendTag::Algebraic],
            (Backend::Algebraic, Err(reason)) => {
                return Err(IfpError::Algebra(xqy_algebra::AlgebraError::Unsupported(
                    format!(
                        "recursion body of ${} is outside the algebraic subset: {reason}",
                        occ.var
                    ),
                )))
            }
            (Backend::Auto, Ok(_)) => &[
                FixpointBackendTag::Algebraic,
                FixpointBackendTag::Interpreted,
            ],
            (Backend::Auto, Err(_)) => &[FixpointBackendTag::Interpreted],
        };
        let mut grid = Vec::new();
        if batch {
            for &backend in backends {
                if backend == FixpointBackendTag::Algebraic && !occ.is_batch_capable() {
                    continue;
                }
                for &strategy in strategies {
                    grid.push(PlanAlternative {
                        strategy,
                        backend,
                        batched: true,
                    });
                }
            }
        }
        for &backend in backends {
            for &strategy in strategies {
                grid.push(PlanAlternative {
                    strategy,
                    backend,
                    batched: false,
                });
            }
        }
        Ok(grid)
    }

    /// Cost every occurrence's candidate grid against the store statistics
    /// (and any feedback taken under the same statistics fingerprint) and
    /// pick a plan each.  `batch_seeds` is `Some(n)` for an
    /// `execute_batched` call over `n` seeds, which adds the batched routes
    /// to the grid.
    fn decide_plans(
        &self,
        stats: &StoreStatistics,
        batch_seeds: Option<usize>,
    ) -> Result<Vec<PlanDecision>> {
        let mut decisions = Vec::with_capacity(self.occurrences.len());
        for occ in &self.occurrences {
            let candidates = self.candidate_grid(occ, batch_seeds.is_some())?;
            let decision = cost::decide(
                &candidates,
                &occ.features,
                stats,
                &occ.feedback,
                batch_seeds.unwrap_or(1),
            );
            let plan = if decision.alternative.backend == FixpointBackendTag::Algebraic {
                occ.compiled.as_ref().ok().cloned()
            } else {
                None
            };
            decisions.push(PlanDecision {
                alternative: decision.alternative,
                source: decision.source,
                estimated_micros: decision.estimated_micros,
                plan,
            });
        }
        Ok(decisions)
    }

    /// The interceptor entries for the occurrences whose decision routes
    /// through the relational executor.
    fn plan_entries(&self, decisions: &[PlanDecision]) -> Vec<PlanEntry> {
        self.occurrences
            .iter()
            .zip(decisions)
            .filter_map(|(occ, decision)| {
                decision.plan.as_ref().map(|compiled| PlanEntry {
                    var: occ.var.clone(),
                    body: occ.body.clone(),
                    compiled: compiled.clone(),
                    strategy: decision.alternative.strategy,
                    batched: decision.alternative.batched,
                    executor: occ.executor.clone(),
                    batched_executor: occ.batched_executor.clone(),
                })
            })
            .collect()
    }

    /// Roll every occurrence's in-flight feedback into its observation
    /// table (keyed on `fingerprint`) and return the per-occurrence run
    /// summaries of the execution that just finished.
    fn finish_feedback(&self, fingerprint: u64) -> Vec<Option<RunObservation>> {
        self.occurrences
            .iter()
            .map(|occ| occ.feedback.finish_run(fingerprint))
            .collect()
    }

    /// Snapshot of every occurrence's executor counters, taken before an
    /// execution so the outcome can report per-execute deltas.
    fn cache_totals(&self) -> Vec<(u64, u64)> {
        self.occurrences
            .iter()
            .map(PreparedOccurrence::executor_cache_totals)
            .collect()
    }

    /// The per-occurrence decisions of one execution: the decided
    /// alternative — corrected by what *actually* ran when the runtime had
    /// to fall back (e.g. a batched algebraic route declining a cross-
    /// document `id()` seed set) — the decision provenance and costs, and
    /// the executor-counter deltas since `cache_before`.
    fn occurrence_plans(
        &self,
        decisions: &[PlanDecision],
        summaries: &[Option<RunObservation>],
        cache_before: &[(u64, u64)],
    ) -> Vec<OccurrencePlan> {
        self.occurrences
            .iter()
            .zip(decisions)
            .zip(cache_before)
            .enumerate()
            .map(|(i, ((occ, decision), &(hits_before, evals_before)))| {
                let (hits_after, evals_after) = occ.executor_cache_totals();
                let summary = summaries.get(i).copied().flatten();
                let ran = summary.map(|s| s.alternative);
                OccurrencePlan {
                    variable: occ.var.clone(),
                    strategy: ran
                        .map(|a| a.strategy)
                        .unwrap_or(decision.alternative.strategy),
                    backend: ran
                        .map(|a| a.backend)
                        .unwrap_or(decision.alternative.backend),
                    batched: ran
                        .map(|a| a.batched)
                        .unwrap_or(decision.alternative.batched),
                    decided_by: decision.source,
                    estimated_cost_micros: decision.estimated_micros,
                    observed_cost_micros: summary.map(|s| s.wall_micros),
                    static_cache_hits: hits_after - hits_before,
                    static_plan_evals: evals_after - evals_before,
                }
            })
            .collect()
    }

    /// Execute the prepared query against `engine`'s current document store
    /// with the external variables bound from `bindings`.
    ///
    /// No parsing, distributivity analysis or plan compilation happens here
    /// — only evaluation.  Documents loaded into the engine *after*
    /// [`Engine::prepare`] are visible, since preparation is purely static.
    pub fn execute(&self, engine: &mut Engine, bindings: &Bindings) -> Result<QueryOutcome> {
        let opts = ExecOptions {
            seed_in_result: engine.seed_in_result,
            limits: ResourceLimits::default(),
        };
        self.execute_on(&mut engine.store, bindings, &opts)
    }

    /// Execute against any store handle — a `&mut NodeStore` or a session's
    /// `&mut CowStore` — without an [`Engine`].  This is the concurrent
    /// service's entry point: N sessions execute one shared
    /// `Arc<PreparedQuery>` simultaneously, each over its own copy-on-write
    /// view of the published store, with a per-query deadline from `opts`.
    pub fn execute_on<'s>(
        &self,
        store: impl Into<StoreMut<'s>>,
        bindings: &Bindings,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome> {
        for var in &self.external_vars {
            if bindings.get(var).is_none() {
                return Err(IfpError::UnboundVariable(var.clone()));
            }
        }
        let store: StoreMut<'s> = store.into();
        // Cost-based selection: summarize the store (memoized per
        // revision), price each occurrence's candidate grid, pick a plan.
        let stats = store.read().statistics();
        let decisions = self.decide_plans(&stats, None)?;

        let threads = self.parallelism.threads();
        // Per-query memory budget: the growth points of the data model and
        // the relational executor charge the thread-installed cell (shard
        // workers re-install it, see `xqy_xdm::shard`), and both drivers
        // check it at their iteration barriers.
        let memory_budget = opts.limits.max_memory_bytes.map(QueryBudget::new);
        let _budget_scope = memory_budget.clone().map(xqy_xdm::budget::install);
        let mut evaluator = Evaluator::new(store);
        evaluator.options_mut().seed_in_result = opts.seed_in_result;
        evaluator.options_mut().fixpoint_threads = threads;
        evaluator.options_mut().deadline = opts.limits.deadline;
        evaluator.options_mut().max_result_nodes = opts.limits.max_result_nodes;
        evaluator.options_mut().budget_iterations = opts.limits.max_iterations;
        evaluator.options_mut().memory_budget = memory_budget;
        evaluator.set_fixpoint_strategy(self.default_strategy);
        for (name, value) in bindings.iter() {
            evaluator.bind_global(name, value.clone());
        }
        for (occ, decision) in self.occurrences.iter().zip(&decisions) {
            evaluator.set_fixpoint_strategy_for(
                &occ.var,
                occ.body.clone(),
                decision.alternative.strategy,
            );
            evaluator.set_fixpoint_observer_for(&occ.var, occ.body.clone(), occ.feedback.clone());
        }
        let entries = self.plan_entries(&decisions);
        // Counter snapshot, so the outcome reports per-*execute* deltas of
        // the persistent executors' lifetime totals.
        let cache_before = self.cache_totals();
        if !entries.is_empty() {
            evaluator.set_fixpoint_interceptor(Box::new(PlanDriver {
                entries,
                threads,
                limits: opts.limits,
            }));
        }

        let result = evaluator.eval_module(&self.module)?;
        let fixpoints = evaluator.fixpoint_runs().to_vec();
        let summaries = self.finish_feedback(stats.fingerprint());
        let occurrences = self.occurrence_plans(&decisions, &summaries, &cache_before);
        Ok(QueryOutcome {
            result,
            distributivity: self.distributivity(),
            occurrences,
            fixpoints,
        })
    }

    /// The single IFP occurrence a batched execution can dispatch through
    /// the eval layer: the module body must be exactly
    /// `with $var seeded by $seed_var recurse <body>` (no declared
    /// variables, no further occurrences), so that binding `$seed_var` to
    /// one node and executing is precisely "run that occurrence's fixpoint
    /// over that seed".
    fn batched_occurrence(&self, seed_var: &str) -> Option<&PreparedOccurrence> {
        if !self.module.variables.is_empty() || self.occurrences.len() != 1 {
            return None;
        }
        let Expr::Fixpoint { var, seed, body } = &self.module.body else {
            return None;
        };
        if !matches!(seed.as_ref(), Expr::VarRef(v) if v == seed_var) {
            return None;
        }
        let occ = &self.occurrences[0];
        if occ.var != *var || *occ.body != **body {
            return None;
        }
        Some(occ)
    }

    /// Execute **one fixpoint per seed node of `seeds`** — the per-item
    /// workload shape — sharing as much work across the seeds as the query
    /// allows.
    ///
    /// Semantically this is exactly
    ///
    /// ```text
    /// for each item s of seeds (in order, duplicates included):
    ///     execute(engine, bindings + { seed_var ↦ (s) })
    /// ```
    ///
    /// with the per-seed results returned individually
    /// ([`BatchedOutcome::per_seed`]) and concatenated
    /// ([`QueryOutcome::result`]).  Operationally, when the query is a
    /// single `with $x seeded by $seed_var recurse …` whose body compiled
    /// to a [seed-local plan](xqy_algebra::Plan::seed_carried) (and the
    /// back-end allows the relational executor), all seeds run as **one
    /// batched multi-source fixpoint** over a `(seed, node)` relation —
    /// every body scan, join and duplicate elimination is shared, and
    /// Delta's difference is applied per seed by grouping on the seed
    /// column.  Bodies **outside** the algebraic subset batch too: the
    /// source-level interpreter runs one shared Figure-3 loop over all
    /// seeds, evaluating distributive bodies once per distinct frontier
    /// node ([`FixpointStats::batch_seeds`] reports the batch size either
    /// way).  [`BatchedOutcome::batched`] reports whether a batched route
    /// ran; only non-seed-local algebraic plans (and non-fixpoint query
    /// shapes) still run one fixpoint per seed, with results identical
    /// either way.
    ///
    /// `bindings` supplies every external variable except `seed_var`
    /// (a `seed_var` entry, if present, is ignored — the seeds come from
    /// `seeds`).  Duplicate seeds are computed once and replicated;
    /// an empty `seeds` yields an empty outcome with zero fixpoint runs.
    ///
    /// ```
    /// use xqy_ifp::{Backend, Bindings, Engine};
    ///
    /// let mut engine = Engine::new();
    /// engine
    ///     .load_document_with_ids(
    ///         "curriculum.xml",
    ///         r#"<curriculum>
    ///              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
    ///              <course code="c2"><prerequisites/></course>
    ///            </curriculum>"#,
    ///         &["code"],
    ///     )
    ///     .unwrap();
    /// let prepared = engine
    ///     .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")
    ///     .unwrap()
    ///     .with_backend(Backend::Auto);
    /// // All courses at once: one batched fixpoint instead of one per course.
    /// let seeds = engine.run("doc('curriculum.xml')/curriculum/course").unwrap().result;
    /// let batch = prepared
    ///     .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
    ///     .unwrap();
    /// assert!(batch.batched);
    /// assert_eq!(batch.per_seed.len(), 2);
    /// assert_eq!(batch.per_seed[0].len(), 1); // c1 → { c2 }
    /// assert_eq!(batch.per_seed[1].len(), 0); // c2 → ∅
    /// assert_eq!(batch.outcome.batch_seeds(), 2);
    /// ```
    pub fn execute_batched(
        &self,
        engine: &mut Engine,
        seed_var: &str,
        seeds: &Sequence,
        bindings: &Bindings,
    ) -> Result<BatchedOutcome> {
        for var in &self.external_vars {
            if var != seed_var && bindings.get(var).is_none() {
                return Err(IfpError::UnboundVariable(var.clone()));
            }
        }
        if seeds.all_nodes() {
            if let Some(occ) = self.batched_occurrence(seed_var) {
                let stats = engine.store.statistics();
                let decisions = self.decide_plans(&stats, Some(seeds.len().max(1)))?;
                // The eval-layer route can honor any decision except a
                // measured preference for the *interpreted per-seed* loop
                // (its batched source driver always folds the seeds): for
                // that one, fall through to the general per-seed loop.
                if decisions[0].alternative.batched || decisions[0].plan.is_some() {
                    return self.execute_batched_fixpoint(
                        engine, occ, seed_var, seeds, bindings, &stats, decisions,
                    );
                }
            }
        }
        // General fallback: the query is not a bare fixpoint over
        // `$seed_var` (or the seeds are not all nodes, and the per-seed
        // execution must surface the evaluator's type error) — run the
        // module once per seed item, exactly as the contract reads.
        let stats = engine.store.statistics();
        let decisions = self.decide_plans(&stats, None)?;
        let cache_before = self.cache_totals();
        let mut result = Sequence::empty();
        let mut per_seed = Vec::with_capacity(seeds.len());
        let mut fixpoints = Vec::new();
        for item in seeds.iter() {
            let per_item = bindings
                .clone()
                .with(seed_var, Sequence::singleton(item.clone()));
            let outcome = self.execute(engine, &per_item)?;
            result.extend(outcome.result.clone());
            per_seed.push(outcome.result);
            fixpoints.extend(outcome.fixpoints);
        }
        // The inner `execute` calls rolled their own feedback up; the
        // outer summaries are empty and the report falls back to the
        // per-execute decisions.
        let summaries = vec![None; self.occurrences.len()];
        Ok(BatchedOutcome {
            outcome: QueryOutcome {
                result,
                distributivity: self.distributivity(),
                occurrences: self.occurrence_plans(&decisions, &summaries, &cache_before),
                fixpoints,
            },
            per_seed,
            batched: false,
        })
    }

    /// The eval-layer route of [`execute_batched`](Self::execute_batched):
    /// dispatch the single occurrence through
    /// [`Evaluator::run_fixpoint_batched`], which tries the batched
    /// interceptor first and falls back per seed (algebraic, then
    /// source-level) when the occurrence declines.
    #[allow(clippy::too_many_arguments)]
    fn execute_batched_fixpoint(
        &self,
        engine: &mut Engine,
        occ: &PreparedOccurrence,
        seed_var: &str,
        seeds: &Sequence,
        bindings: &Bindings,
        stats: &StoreStatistics,
        decisions: Vec<PlanDecision>,
    ) -> Result<BatchedOutcome> {
        // Duplicate seeds fold onto one fixpoint each; remember where each
        // input position points so the per-seed results expand back.
        let items = seeds.nodes();
        let mut unique: Vec<NodeId> = Vec::new();
        let mut index: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        let mut positions = Vec::with_capacity(items.len());
        for node in items {
            let idx = *index.entry(node).or_insert_with(|| {
                unique.push(node);
                unique.len() - 1
            });
            positions.push(idx);
        }

        let seed_in_result = engine.seed_in_result;
        let threads = self.parallelism.threads();
        let mut evaluator = Evaluator::new(&mut engine.store);
        evaluator.options_mut().seed_in_result = seed_in_result;
        evaluator.options_mut().fixpoint_threads = threads;
        evaluator.set_fixpoint_strategy(self.default_strategy);
        // The source-level fallback evaluates the recursion body directly;
        // give it the module's functions and the non-seed externals.
        evaluator.register_functions(&self.module.functions);
        for (name, value) in bindings.iter() {
            if name != seed_var {
                evaluator.bind_global(name, value.clone());
            }
        }
        for (o, decision) in self.occurrences.iter().zip(&decisions) {
            evaluator.set_fixpoint_strategy_for(
                &o.var,
                o.body.clone(),
                decision.alternative.strategy,
            );
            // Distributive occurrences may share per-node body evaluations
            // across seeds in the batched source-level driver (the
            // source-level analogue of `BatchSharing::DistinctNodes`).
            evaluator.set_fixpoint_batch_sharing_for(
                &o.var,
                o.body.clone(),
                o.report.is_distributive(),
            );
            evaluator.set_fixpoint_observer_for(&o.var, o.body.clone(), o.feedback.clone());
        }
        let entries = self.plan_entries(&decisions);
        let cache_before = self.cache_totals();
        if !entries.is_empty() {
            evaluator.set_fixpoint_interceptor(Box::new(PlanDriver {
                entries,
                threads,
                limits: ResourceLimits::default(),
            }));
        }

        let (groups, batched) = evaluator.run_fixpoint_batched(&occ.var, &occ.body, &unique)?;
        let fixpoints = evaluator.fixpoint_runs().to_vec();
        let per_seed: Vec<Sequence> = positions
            .iter()
            .map(|&i| Sequence::from_nodes(groups[i].clone()))
            .collect();
        let mut result = Sequence::empty();
        for seq in &per_seed {
            result.extend(seq.clone());
        }
        let summaries = self.finish_feedback(stats.fingerprint());
        Ok(BatchedOutcome {
            outcome: QueryOutcome {
                result,
                distributivity: self.distributivity(),
                occurrences: self.occurrence_plans(&decisions, &summaries, &cache_before),
                fixpoints,
            },
            per_seed,
            batched,
        })
    }
}

/// The result of a [`PreparedQuery::execute_batched`] call: the aggregate
/// [`QueryOutcome`] plus the per-seed result slices and the dispatch route
/// that produced them.
#[derive(Debug, Clone)]
pub struct BatchedOutcome {
    /// The aggregate outcome.  `outcome.result` is the concatenation of the
    /// per-seed results in seed order; `outcome.fixpoints` holds one entry
    /// with [`FixpointStats::batch_seeds`]` > 0` when the batched fast path
    /// ran, one entry per (unique) seed otherwise.
    pub outcome: QueryOutcome,
    /// One result sequence per input seed, index-aligned with the `seeds`
    /// argument (duplicated seeds see their shared result replicated).
    pub per_seed: Vec<Sequence>,
    /// `true` when the seeds ran as a **single batched multi-source
    /// fixpoint** — on the relational back-end (seed-carried plan) or
    /// through the batched source-level driver (non-algebraic bodies).
    /// `false` when they ran one fixpoint per seed: non-seed-local
    /// *algebraic* plans, seed sets that span documents under an
    /// `id()`-using algebraic body, or non-fixpoint query shapes.
    pub batched: bool,
}

/// The plan one execution decided for one occurrence: the grid point, its
/// provenance and estimated cost, and (for the algebraic routes) the
/// compiled plan to drive.
struct PlanDecision {
    alternative: PlanAlternative,
    source: DecisionSource,
    estimated_micros: u64,
    /// `Some` iff `alternative.backend` is algebraic.
    plan: Option<Arc<CompiledBody>>,
}

/// One interceptor entry: an occurrence with a pre-compiled plan and its
/// persistent executors (per-seed and batched).
struct PlanEntry {
    var: String,
    body: Arc<Expr>,
    compiled: Arc<CompiledBody>,
    strategy: FixpointStrategy,
    /// `false` when the cost decision picked the per-seed algebraic route
    /// inside a batched execution: the batched hook declines so the
    /// evaluator falls back to one (algebraic) fixpoint per seed.
    batched: bool,
    executor: Arc<Mutex<Executor>>,
    batched_executor: Arc<Mutex<Executor>>,
}

/// The [`FixpointInterceptor`] installed by [`PreparedQuery::execute`]: it
/// recognises occurrences by their `(var, body)` pair and drives their
/// pre-compiled plans through the relational executor.  Both the
/// [`CompiledBody`] *and* the [`Executor`] are reused across every
/// execution and every seed of a per-item workload — the driver hands the
/// occurrence's long-lived executor `&mut` access to the store per run
/// instead of building a fresh executor (which would re-intern every
/// string and re-evaluate every rec-independent plan node per seed).
struct PlanDriver {
    entries: Vec<PlanEntry>,
    /// Shard count for batched runs (from the prepared query's
    /// [`Parallelism`] policy); per-seed runs are always sequential.
    threads: usize,
    /// Per-query limits (deadline and budgets), installed on the entry's
    /// executor before each run so the algebraic iteration barrier enforces
    /// them too.
    limits: ResourceLimits,
}

/// Take an occurrence's persistent-executor lock even if a previous holder
/// panicked.  The executor behind it may have been left mid-run, so rather
/// than trusting its caches we reset it to a fresh state: every invariant
/// (interner, sym-translation, static cache) is rebuilt lazily at
/// re-evaluation cost, which a recovery path gladly pays.  The service
/// additionally drops the whole plan-cache fork a panic was caught on, so
/// this path only runs for panics that escaped outside a fork's lifetime.
fn lock_executor(lock: &Mutex<Executor>) -> std::sync::MutexGuard<'_, Executor> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            lock.clear_poison();
            let mut guard = poisoned.into_inner();
            *guard = Executor::new();
            guard
        }
    }
}

/// Map an executor failure to the eval-layer error the interceptor
/// contract reports: deadline and budget verdicts stay **typed** — and gain
/// the occurrence variable — so the service can distinguish (and attribute)
/// a timeout or an exhausted budget; everything else is carried as an
/// opaque back-end message.
fn backend_error(var: &str, err: AlgebraError) -> EvalError {
    match err {
        AlgebraError::DeadlineExceeded { iterations } => EvalError::DeadlineExceeded {
            occurrence: var.to_string(),
            iterations,
        },
        AlgebraError::BudgetExceeded {
            budget,
            used,
            limit,
            iterations,
        } => EvalError::BudgetExceeded {
            budget,
            used,
            limit,
            occurrence: var.to_string(),
            iterations,
        },
        other => EvalError::Backend(other.to_string()),
    }
}

impl FixpointInterceptor for PlanDriver {
    fn run_fixpoint(
        &mut self,
        store: StoreMut<'_>,
        var: &str,
        body: &Expr,
        seed: &[NodeId],
        seed_in_result: bool,
    ) -> Option<xqy_eval::Result<(Vec<NodeId>, FixpointStats)>> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.var == var && *e.body == *body)?;
        let mut executor = lock_executor(&entry.executor);
        executor.set_deadline(self.limits.deadline);
        executor.set_budget_iterations(self.limits.max_iterations);
        let hits_before = executor.static_cache_hits();
        let evals_before = executor.static_plan_evals();
        Some(
            match executor.run_fixpoint(
                store,
                &entry.compiled.plan,
                seed,
                mu_strategy(entry.strategy),
                seed_in_result,
            ) {
                Ok((table, stats)) => Ok((
                    table.item_nodes(),
                    FixpointStats {
                        strategy: Some(strategy_tag(entry.strategy)),
                        backend: FixpointBackendTag::Algebraic,
                        iterations: stats.iterations,
                        nodes_fed_back: stats.rows_fed_back,
                        payload_calls: stats.body_evaluations,
                        result_size: stats.result_rows,
                        static_cache_hits: executor.static_cache_hits() - hits_before,
                        static_plan_evals: executor.static_plan_evals() - evals_before,
                        batch_seeds: 0,
                        frontier_curve: stats.frontier_curve,
                        wall_micros: stats.wall_micros,
                    },
                )),
                Err(err) => Err(backend_error(var, err)),
            },
        )
    }

    fn run_fixpoint_batched(
        &mut self,
        store: StoreMut<'_>,
        var: &str,
        body: &Expr,
        seeds: &[NodeId],
        seed_in_result: bool,
    ) -> Option<xqy_eval::Result<(Vec<Vec<NodeId>>, FixpointStats)>> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.var == var && *e.body == *body)?;
        // The cost decision may prefer the per-seed algebraic route over
        // the batched one (observed wall times): decline here so the
        // evaluator falls back to one fixpoint per seed through
        // `run_fixpoint` above.
        if !entry.batched {
            return None;
        }
        // Bodies outside the seed-local subset have no seed-carried plan:
        // decline, so the evaluator falls back to one fixpoint per seed.
        let batched_plan = entry.compiled.batched_plan.as_ref()?;
        // `id()` resolves against one context document per run; per-seed
        // runs follow each seed's own document, so a batch may only fold
        // seeds of a single document.
        if entry.compiled.plan.contains_id_lookup() {
            let mut docs = seeds.iter().map(|n| n.doc);
            let first = docs.next();
            if docs.any(|d| Some(d) != first) {
                return None;
            }
        }
        // Distributive bodies (`e(X) = ⋃ₓ e({x})`, certified by the ∪
        // push-up check) additionally share body scans between seeds whose
        // frontiers overlap: each distinct frontier node is evaluated once
        // per iteration.  Non-distributive seed-local bodies keep strict
        // per-seed rows.
        let sharing = if entry.compiled.distributivity.distributive {
            BatchSharing::DistinctNodes
        } else {
            BatchSharing::PerSeed
        };
        let mut executor = lock_executor(&entry.batched_executor);
        executor.set_threads(self.threads);
        executor.set_deadline(self.limits.deadline);
        executor.set_budget_iterations(self.limits.max_iterations);
        let hits_before = executor.static_cache_hits();
        let evals_before = executor.static_plan_evals();
        Some(
            match executor.run_fixpoint_batched(
                store,
                batched_plan,
                seeds,
                mu_strategy(entry.strategy),
                seed_in_result,
                sharing,
            ) {
                Ok((table, stats)) => {
                    // Regroup the (seed, node) rows per seed, aligned with
                    // the input order.  The driver emits rows grouped by
                    // seed already; the index makes no ordering assumption.
                    let index: std::collections::HashMap<NodeId, usize> =
                        seeds.iter().enumerate().map(|(i, &s)| (s, i)).collect();
                    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
                    let (seed_col, item_col) = (table.col(0), table.col(1));
                    for (seed_key, item_key) in seed_col.iter().zip(item_col) {
                        if let (Some(seed), Some(item)) = (seed_key.as_node(), item_key.as_node()) {
                            if let Some(&i) = index.get(&seed) {
                                groups[i].push(item);
                            }
                        }
                    }
                    Ok((
                        groups,
                        FixpointStats {
                            strategy: Some(strategy_tag(entry.strategy)),
                            backend: FixpointBackendTag::Algebraic,
                            iterations: stats.iterations,
                            nodes_fed_back: stats.rows_fed_back,
                            payload_calls: stats.body_evaluations,
                            result_size: stats.result_rows,
                            static_cache_hits: executor.static_cache_hits() - hits_before,
                            static_plan_evals: executor.static_plan_evals() - evals_before,
                            batch_seeds: stats.batch_seeds,
                            frontier_curve: stats.frontier_curve,
                            wall_micros: stats.wall_micros,
                        },
                    ))
                }
                Err(err) => Err(backend_error(var, err)),
            },
        )
    }
}

/// Analyse every IFP occurrence of `module`: run both distributivity
/// approximations, choose a per-occurrence strategy under `strategy`, and
/// compile the algebraic plan when the body lies inside the subset.
pub(crate) fn analyse_occurrences(
    module: &QueryModule,
    strategy: Strategy,
) -> Vec<PreparedOccurrence> {
    let mut occurrences = Vec::new();
    for (var, body) in collect_occurrences(module) {
        let syntactic = is_distributivity_safe(&body, &var, &module.functions);
        let compiled = compile_recursion_body(&body, &var)
            .map(Arc::new)
            .map_err(|e| e.to_string());
        let (algebraic, blocked) = match &compiled {
            Ok(c) => (
                Some(c.distributivity.distributive),
                c.distributivity.blocked_by.clone(),
            ),
            Err(_) => (None, None),
        };
        let report = DistributivityReport {
            variable: var.clone(),
            syntactic: syntactic.safe,
            syntactic_rule: syntactic.rule,
            algebraic,
            algebraic_blocked_by: blocked,
        };
        let chosen = strategy.forced().unwrap_or(if report.is_distributive() {
            FixpointStrategy::Delta
        } else {
            FixpointStrategy::Naive
        });
        let features = occurrence_features(&body, &report, &compiled);
        // Identical occurrences share one feedback cell, so the evaluator's
        // single observer slot per (var, body) pair feeds them all.
        let feedback = occurrences
            .iter()
            .find(|o: &&PreparedOccurrence| o.var == var && *o.body == body)
            .map(|o| o.feedback.clone())
            .unwrap_or_else(|| Arc::new(FeedbackCell::new()));
        occurrences.push(PreparedOccurrence {
            var,
            body: Arc::new(body),
            report,
            strategy: chosen,
            compiled,
            features,
            feedback,
            executor: Arc::new(Mutex::new(Executor::new())),
            batched_executor: Arc::new(Mutex::new(Executor::new())),
        });
    }
    occurrences
}

/// Extract the static cost-model features of one recursion body.
fn occurrence_features(
    body: &Expr,
    report: &DistributivityReport,
    compiled: &std::result::Result<Arc<CompiledBody>, String>,
) -> OccurrenceFeatures {
    let mut body_size = 0usize;
    let mut uses_id = false;
    let mut constructs = false;
    body.walk(&mut |e| {
        body_size += 1;
        match e {
            Expr::FunctionCall { name, .. } if name == "id" || name == "fn:id" => uses_id = true,
            Expr::DirectElement { .. }
            | Expr::ComputedElement { .. }
            | Expr::ComputedAttribute { .. }
            | Expr::ComputedText { .. } => constructs = true,
            _ => {}
        }
    });
    OccurrenceFeatures {
        distributive: report.is_distributive(),
        algebraic: compiled.is_ok(),
        batch_capable: compiled
            .as_ref()
            .map(|c| c.batched_plan.is_some())
            .unwrap_or(false),
        uses_id,
        constructs,
        body_size,
    }
}

/// Collect the `(recursion variable, body)` of every IFP occurrence in the
/// module, in syntactic order (functions, then variable declarations, then
/// the main body) — the order `QueryOutcome::distributivity` reports.
fn collect_occurrences(module: &QueryModule) -> Vec<(String, Expr)> {
    let mut bodies: Vec<(String, Expr)> = Vec::new();
    let mut collect = |expr: &Expr| {
        expr.walk(&mut |e| {
            if let Expr::Fixpoint { var, body, .. } = e {
                bodies.push((var.clone(), body.as_ref().clone()));
            }
        });
    };
    for f in &module.functions {
        collect(&f.body);
    }
    for (_, v) in &module.variables {
        collect(v);
    }
    collect(&module.body);
    bodies
}

/// The external variables of a module: every free variable that is not
/// satisfied by a `declare variable` of the module itself (function bodies
/// see their parameters and the globals, mirroring the evaluator's scoping).
fn external_variables(module: &QueryModule) -> Vec<String> {
    use std::collections::HashSet;
    let declared: HashSet<&str> = module.variables.iter().map(|(n, _)| n.as_str()).collect();
    let mut out: Vec<String> = Vec::new();
    let add = |v: String, out: &mut Vec<String>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    // Declared variables are evaluated in order; each initializer may use
    // the variables declared before it (and the externals).
    let mut seen: HashSet<String> = HashSet::new();
    for (name, expr) in &module.variables {
        for v in expr.free_vars() {
            if !seen.contains(&v) {
                add(v, &mut out);
            }
        }
        seen.insert(name.clone());
    }
    for f in &module.functions {
        for v in f.body.free_vars() {
            if !f.params.contains(&v) && !declared.contains(v.as_str()) {
                add(v, &mut out);
            }
        }
    }
    for v in module.body.free_vars() {
        if !declared.contains(v.as_str()) {
            add(v, &mut out);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_parser::parse_query;

    fn externals(src: &str) -> Vec<String> {
        external_variables(&parse_query(src).unwrap())
    }

    #[test]
    fn external_variables_respect_declarations_and_binders() {
        assert_eq!(externals("with $x seeded by $seed recurse $x/*"), ["seed"]);
        assert!(
            externals("declare variable $seed := <a/>; with $x seeded by $seed recurse $x/*")
                .is_empty()
        );
        assert_eq!(
            externals("for $s in $input return ($s, $extra)"),
            ["extra", "input"]
        );
        assert!(externals("let $y := 1 return $y").is_empty());
    }

    #[test]
    fn function_parameters_are_not_external() {
        assert_eq!(
            externals(
                "declare function f($a) { $a union $shared };\n\
                 f($start)"
            ),
            ["shared", "start"]
        );
    }

    #[test]
    fn bindings_replace_and_lookup() {
        let mut b = Bindings::new().with("x", Sequence::empty());
        assert!(b.get("x").is_some());
        assert!(b.get("y").is_none());
        b.set("x", Sequence::empty());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert_eq!(Backend::Auto.name(), "auto");
        assert_eq!(Backend::default(), Backend::SourceLevel);
    }
}
