//! The prepared-query API: parse / analyse / compile **once**, execute
//! **many** times.
//!
//! The paper's whole pitch is that the expensive decision work — the
//! distributivity analysis of Figure 5 and Section 4, and the compilation of
//! recursion bodies into algebraic plans — is *query-sized*, not data-sized:
//! it can be paid once per query and amortized over arbitrarily many
//! executions.  [`Engine::prepare`] produces a [`PreparedQuery`] that has
//! already parsed the source, run both distributivity approximations per IFP
//! occurrence, chosen a strategy (Naïve / Delta) for each occurrence, and
//! pre-compiled the bodies that lie inside the algebraic subset;
//! [`PreparedQuery::execute`] then runs the artifact against the engine's
//! current document store, with externally bound variables supplied through
//! [`Bindings`].
//!
//! ```
//! use xqy_ifp::{Bindings, Engine};
//!
//! let mut engine = Engine::new();
//! engine
//!     .load_document_with_ids(
//!         "curriculum.xml",
//!         r#"<curriculum>
//!              <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
//!              <course code="c2"><prerequisites/></course>
//!            </curriculum>"#,
//!         &["code"],
//!     )
//!     .unwrap();
//! // Analysis and plan compilation happen here, once.
//! let prepared = engine
//!     .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")
//!     .unwrap();
//! assert_eq!(prepared.external_variables(), ["seed"]);
//! // ... and are reused for every seed we execute with.
//! for code in ["c1", "c2"] {
//!     let seed = engine
//!         .run(&format!("doc('curriculum.xml')/curriculum/course[@code='{code}']"))
//!         .unwrap()
//!         .result;
//!     let bindings = Bindings::new().with("seed", seed);
//!     let outcome = prepared.execute(&mut engine, &bindings).unwrap();
//!     assert!(outcome.result.len() <= 1);
//! }
//! ```

use std::sync::{Arc, Mutex};

use xqy_algebra::{compile_recursion_body, CompiledBody, Executor, MuStrategy};
use xqy_eval::{
    EvalError, Evaluator, FixpointBackendTag, FixpointInterceptor, FixpointStats, FixpointStrategy,
    FixpointStrategyTag,
};
use xqy_parser::ast::{Expr, QueryModule};
use xqy_xdm::{NodeId, NodeStore, Sequence};

use crate::engine::{DistributivityReport, Engine, QueryOutcome, Strategy};
use crate::syntactic::is_distributivity_safe;
use crate::{IfpError, Result};

/// Which back-end executes the fixpoint occurrences of a prepared query.
///
/// Every other part of a query — paths, FLWOR, functions, constructors — is
/// always evaluated by the source-level interpreter; the knob decides who
/// drives the `with … seeded by … recurse` iterations, which is where all
/// the repeated work lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The source-level interpreter runs the recursion body per iteration
    /// (the paper's "Saxon role").  This is the default: it supports the
    /// full expression subset.
    #[default]
    SourceLevel,
    /// Every IFP occurrence is driven by its pre-compiled algebraic plan on
    /// the relational executor (the paper's "MonetDB/Pathfinder role", µ and
    /// µ∆).  Preparing succeeds even for bodies outside the algebraic
    /// subset, but executing reports [`xqy_algebra::AlgebraError::Unsupported`].
    Algebraic,
    /// Per occurrence: use the pre-compiled algebraic plan when the body
    /// lies inside the algebraic subset, fall back to the interpreter
    /// otherwise.
    Auto,
}

impl Backend {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::SourceLevel => "source-level",
            Backend::Algebraic => "algebraic",
            Backend::Auto => "auto",
        }
    }
}

/// Values for the external (free) variables of a prepared query.
///
/// A query such as `with $x seeded by $seed recurse …` leaves `$seed`
/// unbound; each [`PreparedQuery::execute`] call supplies it here.  Names
/// are given without the leading `$`.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    vars: Vec<(String, Sequence)>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Builder-style: add (or replace) a binding and return `self`.
    pub fn with(mut self, name: impl Into<String>, value: Sequence) -> Self {
        self.set(name, value);
        self
    }

    /// Add or replace a binding.
    pub fn set(&mut self, name: impl Into<String>, value: Sequence) {
        let name = name.into();
        if let Some(slot) = self.vars.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.vars.push((name, value));
        }
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Sequence> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Sequence)> {
        self.vars.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// One IFP occurrence of a prepared query: its analysis results, the
/// strategy chosen for it, and (when the body lies inside the algebraic
/// subset) its pre-compiled plan.
#[derive(Debug, Clone)]
pub struct PreparedOccurrence {
    var: String,
    /// Shared so per-execute bookkeeping (strategy overrides, interceptor
    /// entries) is O(occurrences), not O(AST size).
    body: Arc<Expr>,
    report: DistributivityReport,
    strategy: FixpointStrategy,
    compiled: std::result::Result<Arc<CompiledBody>, String>,
    /// The occurrence's *persistent* plan executor: its interner and its
    /// rec-independent static cache survive across `execute()` calls (and
    /// across every seed of a per-item loop).  Shared — clones of the
    /// prepared query reuse the same executor, which is sound because the
    /// executor re-keys itself on the plan fingerprint and on the store's
    /// document-load epoch.  Staleness after `Engine::load_document*` is
    /// handled by that epoch check, not by rebuilding executors.
    executor: Arc<Mutex<Executor>>,
}

impl PreparedOccurrence {
    /// The recursion variable (without the `$`).
    pub fn variable(&self) -> &str {
        &self.var
    }

    /// The distributivity assessment of the occurrence's body.
    pub fn report(&self) -> &DistributivityReport {
        &self.report
    }

    /// The strategy chosen for this occurrence (per-occurrence under
    /// [`Strategy::Auto`]: Delta when either approximation certifies
    /// distributivity, Naïve otherwise).
    pub fn strategy(&self) -> FixpointStrategy {
        self.strategy
    }

    /// `true` when the body compiled to an algebraic plan, i.e. the
    /// occurrence can run on the relational back-end.
    pub fn is_algebraic_capable(&self) -> bool {
        self.compiled.is_ok()
    }

    /// Lifetime totals of the occurrence's persistent executor:
    /// `(static_cache_hits, static_plan_evals)`.  Per-execute deltas are
    /// reported in [`OccurrencePlan`].
    pub fn executor_cache_totals(&self) -> (u64, u64) {
        let exec = self.executor.lock().expect("executor lock");
        (exec.static_cache_hits(), exec.static_plan_evals())
    }
}

/// How this occurrence's strategy maps onto the relational operators.
fn mu_strategy(strategy: FixpointStrategy) -> MuStrategy {
    match strategy {
        FixpointStrategy::Naive => MuStrategy::Mu,
        FixpointStrategy::Delta => MuStrategy::MuDelta,
    }
}

fn strategy_tag(strategy: FixpointStrategy) -> FixpointStrategyTag {
    match strategy {
        FixpointStrategy::Naive => FixpointStrategyTag::Naive,
        FixpointStrategy::Delta => FixpointStrategyTag::Delta,
    }
}

/// The per-occurrence execution decision recorded in a [`QueryOutcome`]:
/// which algorithm and which back-end ran each `with … recurse` occurrence,
/// in syntactic order (index-aligned with `QueryOutcome::distributivity`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccurrencePlan {
    /// The recursion variable of the occurrence.
    pub variable: String,
    /// The algorithm chosen for the occurrence.
    pub strategy: FixpointStrategy,
    /// The back-end that drives the occurrence.
    pub backend: FixpointBackendTag,
    /// Static-cache hits of the occurrence's persistent executor during
    /// *this* `execute()` call: rec-independent plan tables that came back
    /// as shared handles.  Always zero on the interpreted back-end.
    pub static_cache_hits: u64,
    /// Rec-independent plan nodes actually evaluated during this
    /// `execute()` call.  With a persistent executor the second execution
    /// of a prepared query against an unchanged store reports zero here.
    pub static_plan_evals: u64,
}

/// A parsed, analysed and (where possible) compiled query, ready to be
/// executed any number of times.  Create with [`Engine::prepare`]; see the
/// [module docs](self) for the amortization story.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    module: QueryModule,
    backend: Backend,
    default_strategy: FixpointStrategy,
    occurrences: Vec<PreparedOccurrence>,
    external_vars: Vec<String>,
}

impl PreparedQuery {
    /// Analyse `module`: collect its IFP occurrences, run both
    /// distributivity approximations on each, choose a per-occurrence
    /// strategy under `strategy`, and pre-compile the algebraic plans.
    pub(crate) fn analyse_module(
        module: QueryModule,
        strategy: Strategy,
        backend: Backend,
    ) -> Self {
        let occurrences = analyse_occurrences(&module, strategy);
        let external_vars = external_variables(&module);
        let default_strategy = strategy.forced().unwrap_or(FixpointStrategy::Naive);
        PreparedQuery {
            module,
            backend,
            default_strategy,
            occurrences,
            external_vars,
        }
    }

    /// The back-end the fixpoint occurrences will run on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Select the back-end for the fixpoint occurrences.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Builder-style [`set_backend`](Self::set_backend).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The IFP occurrences of the query, in syntactic order.
    pub fn occurrences(&self) -> &[PreparedOccurrence] {
        &self.occurrences
    }

    /// The distributivity reports, one per occurrence in syntactic order.
    pub fn distributivity(&self) -> Vec<DistributivityReport> {
        self.occurrences.iter().map(|o| o.report.clone()).collect()
    }

    /// The external (free) variables the query expects from [`Bindings`]
    /// at execution time, sorted by name and given without the `$`.
    pub fn external_variables(&self) -> &[String] {
        &self.external_vars
    }

    /// The parsed module.
    pub fn module(&self) -> &QueryModule {
        &self.module
    }

    /// Execute the prepared query against `engine`'s current document store
    /// with the external variables bound from `bindings`.
    ///
    /// No parsing, distributivity analysis or plan compilation happens here
    /// — only evaluation.  Documents loaded into the engine *after*
    /// [`Engine::prepare`] are visible, since preparation is purely static.
    pub fn execute(&self, engine: &mut Engine, bindings: &Bindings) -> Result<QueryOutcome> {
        for var in &self.external_vars {
            if bindings.get(var).is_none() {
                return Err(IfpError::UnboundVariable(var.clone()));
            }
        }
        // Resolve each occurrence against the back-end knob.
        let mut plans: Vec<Option<Arc<CompiledBody>>> = Vec::with_capacity(self.occurrences.len());
        for occ in &self.occurrences {
            let plan = match (self.backend, &occ.compiled) {
                (Backend::SourceLevel, _) => None,
                (Backend::Algebraic, Ok(compiled)) => Some(compiled.clone()),
                (Backend::Algebraic, Err(reason)) => {
                    return Err(IfpError::Algebra(xqy_algebra::AlgebraError::Unsupported(
                        format!(
                            "recursion body of ${} is outside the algebraic subset: {reason}",
                            occ.var
                        ),
                    )))
                }
                (Backend::Auto, compiled) => compiled.as_ref().ok().cloned(),
            };
            plans.push(plan);
        }

        let seed_in_result = engine.seed_in_result;
        let mut evaluator = Evaluator::new(&mut engine.store);
        evaluator.options_mut().seed_in_result = seed_in_result;
        evaluator.set_fixpoint_strategy(self.default_strategy);
        for (name, value) in bindings.iter() {
            evaluator.bind_global(name, value.clone());
        }
        for occ in &self.occurrences {
            evaluator.set_fixpoint_strategy_for(&occ.var, occ.body.clone(), occ.strategy);
        }
        let entries: Vec<PlanEntry> = self
            .occurrences
            .iter()
            .zip(&plans)
            .filter_map(|(occ, plan)| {
                plan.as_ref().map(|compiled| PlanEntry {
                    var: occ.var.clone(),
                    body: occ.body.clone(),
                    compiled: compiled.clone(),
                    strategy: occ.strategy,
                    executor: occ.executor.clone(),
                })
            })
            .collect();
        // Counter snapshot, so the outcome reports per-*execute* deltas of
        // the persistent executors' lifetime totals.
        let cache_before: Vec<(u64, u64)> = self
            .occurrences
            .iter()
            .map(PreparedOccurrence::executor_cache_totals)
            .collect();
        if !entries.is_empty() {
            evaluator.set_fixpoint_interceptor(Box::new(PlanDriver { entries }));
        }

        let result = evaluator.eval_module(&self.module)?;
        let fixpoints = evaluator.fixpoint_runs().to_vec();
        let occurrences = self
            .occurrences
            .iter()
            .zip(&plans)
            .zip(cache_before)
            .map(|((occ, plan), (hits_before, evals_before))| {
                let (hits_after, evals_after) = occ.executor_cache_totals();
                OccurrencePlan {
                    variable: occ.var.clone(),
                    strategy: occ.strategy,
                    backend: if plan.is_some() {
                        FixpointBackendTag::Algebraic
                    } else {
                        FixpointBackendTag::Interpreted
                    },
                    static_cache_hits: hits_after - hits_before,
                    static_plan_evals: evals_after - evals_before,
                }
            })
            .collect();
        Ok(QueryOutcome {
            result,
            distributivity: self.distributivity(),
            occurrences,
            fixpoints,
        })
    }
}

/// One interceptor entry: an occurrence with a pre-compiled plan and its
/// persistent executor.
struct PlanEntry {
    var: String,
    body: Arc<Expr>,
    compiled: Arc<CompiledBody>,
    strategy: FixpointStrategy,
    executor: Arc<Mutex<Executor>>,
}

/// The [`FixpointInterceptor`] installed by [`PreparedQuery::execute`]: it
/// recognises occurrences by their `(var, body)` pair and drives their
/// pre-compiled plans through the relational executor.  Both the
/// [`CompiledBody`] *and* the [`Executor`] are reused across every
/// execution and every seed of a per-item workload — the driver hands the
/// occurrence's long-lived executor `&mut` access to the store per run
/// instead of building a fresh executor (which would re-intern every
/// string and re-evaluate every rec-independent plan node per seed).
struct PlanDriver {
    entries: Vec<PlanEntry>,
}

impl FixpointInterceptor for PlanDriver {
    fn run_fixpoint(
        &mut self,
        store: &mut NodeStore,
        var: &str,
        body: &Expr,
        seed: &[NodeId],
        seed_in_result: bool,
    ) -> Option<xqy_eval::Result<(Vec<NodeId>, FixpointStats)>> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.var == var && *e.body == *body)?;
        let mut executor = entry.executor.lock().expect("executor lock");
        let hits_before = executor.static_cache_hits();
        let evals_before = executor.static_plan_evals();
        Some(
            match executor.run_fixpoint(
                store,
                &entry.compiled.plan,
                seed,
                mu_strategy(entry.strategy),
                seed_in_result,
            ) {
                Ok((table, stats)) => Ok((
                    table.item_nodes(),
                    FixpointStats {
                        strategy: Some(strategy_tag(entry.strategy)),
                        backend: FixpointBackendTag::Algebraic,
                        iterations: stats.iterations,
                        nodes_fed_back: stats.rows_fed_back,
                        payload_calls: stats.body_evaluations,
                        result_size: stats.result_rows,
                        static_cache_hits: executor.static_cache_hits() - hits_before,
                        static_plan_evals: executor.static_plan_evals() - evals_before,
                    },
                )),
                Err(err) => Err(EvalError::Backend(err.to_string())),
            },
        )
    }
}

/// Analyse every IFP occurrence of `module`: run both distributivity
/// approximations, choose a per-occurrence strategy under `strategy`, and
/// compile the algebraic plan when the body lies inside the subset.
pub(crate) fn analyse_occurrences(
    module: &QueryModule,
    strategy: Strategy,
) -> Vec<PreparedOccurrence> {
    let mut occurrences = Vec::new();
    for (var, body) in collect_occurrences(module) {
        let syntactic = is_distributivity_safe(&body, &var, &module.functions);
        let compiled = compile_recursion_body(&body, &var)
            .map(Arc::new)
            .map_err(|e| e.to_string());
        let (algebraic, blocked) = match &compiled {
            Ok(c) => (
                Some(c.distributivity.distributive),
                c.distributivity.blocked_by.clone(),
            ),
            Err(_) => (None, None),
        };
        let report = DistributivityReport {
            variable: var.clone(),
            syntactic: syntactic.safe,
            syntactic_rule: syntactic.rule,
            algebraic,
            algebraic_blocked_by: blocked,
        };
        let chosen = strategy.forced().unwrap_or(if report.is_distributive() {
            FixpointStrategy::Delta
        } else {
            FixpointStrategy::Naive
        });
        occurrences.push(PreparedOccurrence {
            var,
            body: Arc::new(body),
            report,
            strategy: chosen,
            compiled,
            executor: Arc::new(Mutex::new(Executor::new())),
        });
    }
    occurrences
}

/// Collect the `(recursion variable, body)` of every IFP occurrence in the
/// module, in syntactic order (functions, then variable declarations, then
/// the main body) — the order `QueryOutcome::distributivity` reports.
fn collect_occurrences(module: &QueryModule) -> Vec<(String, Expr)> {
    let mut bodies: Vec<(String, Expr)> = Vec::new();
    let mut collect = |expr: &Expr| {
        expr.walk(&mut |e| {
            if let Expr::Fixpoint { var, body, .. } = e {
                bodies.push((var.clone(), body.as_ref().clone()));
            }
        });
    };
    for f in &module.functions {
        collect(&f.body);
    }
    for (_, v) in &module.variables {
        collect(v);
    }
    collect(&module.body);
    bodies
}

/// The external variables of a module: every free variable that is not
/// satisfied by a `declare variable` of the module itself (function bodies
/// see their parameters and the globals, mirroring the evaluator's scoping).
fn external_variables(module: &QueryModule) -> Vec<String> {
    use std::collections::HashSet;
    let declared: HashSet<&str> = module.variables.iter().map(|(n, _)| n.as_str()).collect();
    let mut out: Vec<String> = Vec::new();
    let add = |v: String, out: &mut Vec<String>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    // Declared variables are evaluated in order; each initializer may use
    // the variables declared before it (and the externals).
    let mut seen: HashSet<String> = HashSet::new();
    for (name, expr) in &module.variables {
        for v in expr.free_vars() {
            if !seen.contains(&v) {
                add(v, &mut out);
            }
        }
        seen.insert(name.clone());
    }
    for f in &module.functions {
        for v in f.body.free_vars() {
            if !f.params.contains(&v) && !declared.contains(v.as_str()) {
                add(v, &mut out);
            }
        }
    }
    for v in module.body.free_vars() {
        if !declared.contains(v.as_str()) {
            add(v, &mut out);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_parser::parse_query;

    fn externals(src: &str) -> Vec<String> {
        external_variables(&parse_query(src).unwrap())
    }

    #[test]
    fn external_variables_respect_declarations_and_binders() {
        assert_eq!(externals("with $x seeded by $seed recurse $x/*"), ["seed"]);
        assert!(
            externals("declare variable $seed := <a/>; with $x seeded by $seed recurse $x/*")
                .is_empty()
        );
        assert_eq!(
            externals("for $s in $input return ($s, $extra)"),
            ["extra", "input"]
        );
        assert!(externals("let $y := 1 return $y").is_empty());
    }

    #[test]
    fn function_parameters_are_not_external() {
        assert_eq!(
            externals(
                "declare function f($a) { $a union $shared };\n\
                 f($start)"
            ),
            ["shared", "start"]
        );
    }

    #[test]
    fn bindings_replace_and_lookup() {
        let mut b = Bindings::new().with("x", Sequence::empty());
        assert!(b.get("x").is_some());
        assert!(b.get("y").is_none());
        b.set("x", Sequence::empty());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert_eq!(Backend::Auto.name(), "auto");
        assert_eq!(Backend::default(), Backend::SourceLevel);
    }
}
