//! Source-level rewriting of IFP forms into recursive user-defined
//! functions — the transformation the paper applied to run its experiments
//! on Saxon, a processor without a native fixpoint operator.
//!
//! An occurrence of
//!
//! ```xquery
//! with $x seeded by e_seed recurse e_rec
//! ```
//!
//! is rewritten into a query prolog containing the payload function
//! `rec_i(·)` plus either the Naïve template `fix_i(·)` (Figure 2) or the
//! Delta template `delta_i(·,·)` (Figure 4), and the occurrence itself is
//! replaced by the corresponding call.  The rewritten query evaluates on any
//! XQuery 1.0 processor.

use xqy_parser::ast::{Expr, FunctionDecl, QueryModule};

/// Which user-defined function template replaces the IFP form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteStyle {
    /// The `fix(·)` template of Figure 2 (Naïve).
    Naive,
    /// The `delta(·,·)` template of Figure 4 (Delta / semi-naïve).
    Delta,
}

impl RewriteStyle {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RewriteStyle::Naive => "fix",
            RewriteStyle::Delta => "delta",
        }
    }
}

/// Rewrite every `Fixpoint` occurrence in `module` into recursive
/// user-defined functions of the requested style.  Returns the rewritten
/// module (the input is not modified).
pub fn rewrite_fixpoints_to_functions(module: &QueryModule, style: RewriteStyle) -> QueryModule {
    let mut rewriter = Rewriter {
        style,
        counter: 0,
        new_functions: Vec::new(),
    };
    let mut functions: Vec<FunctionDecl> = Vec::new();
    for f in &module.functions {
        functions.push(FunctionDecl {
            body: rewriter.rewrite(&f.body),
            ..f.clone()
        });
    }
    let variables = module
        .variables
        .iter()
        .map(|(name, value)| (name.clone(), rewriter.rewrite(value)))
        .collect();
    let body = rewriter.rewrite(&module.body);
    functions.extend(rewriter.new_functions);
    QueryModule {
        functions,
        variables,
        body,
    }
}

struct Rewriter {
    style: RewriteStyle,
    counter: usize,
    new_functions: Vec<FunctionDecl>,
}

impl Rewriter {
    fn rewrite(&mut self, expr: &Expr) -> Expr {
        match expr {
            Expr::Fixpoint { var, seed, body } => {
                let seed = self.rewrite(seed);
                let body = self.rewrite(body);
                self.lower_fixpoint(var, seed, body)
            }
            other => map_children(other, &mut |e| self.rewrite(e)),
        }
    }

    fn lower_fixpoint(&mut self, var: &str, seed: Expr, body: Expr) -> Expr {
        let idx = self.counter;
        self.counter += 1;
        let rec_name = format!("local:rec_{idx}");
        let driver_name = match self.style {
            RewriteStyle::Naive => format!("local:fix_{idx}"),
            RewriteStyle::Delta => format!("local:delta_{idx}"),
        };

        // declare function local:rec_i($x) { e_rec };
        self.new_functions.push(FunctionDecl {
            name: rec_name.clone(),
            params: vec![var.to_string()],
            param_types: vec![None],
            return_type: None,
            body,
        });

        let call_rec = |arg: Expr| Expr::FunctionCall {
            name: rec_name.clone(),
            args: vec![arg],
        };
        let var_ref = |name: &str| Expr::VarRef(name.to_string());

        match self.style {
            RewriteStyle::Naive => {
                // declare function local:fix_i($x) {
                //   let $res := local:rec_i($x)
                //   return if (empty($res except $x)) then $x
                //          else local:fix_i($res union $x) };
                let fix_body = Expr::Let {
                    var: "res".into(),
                    value: Box::new(call_rec(var_ref(var))),
                    body: Box::new(Expr::If {
                        cond: Box::new(Expr::FunctionCall {
                            name: "empty".into(),
                            args: vec![Expr::Binary {
                                op: xqy_parser::BinaryOp::Except,
                                lhs: Box::new(var_ref("res")),
                                rhs: Box::new(var_ref(var)),
                            }],
                        }),
                        then_branch: Box::new(var_ref(var)),
                        else_branch: Box::new(Expr::FunctionCall {
                            name: driver_name.clone(),
                            args: vec![Expr::Binary {
                                op: xqy_parser::BinaryOp::Union,
                                lhs: Box::new(var_ref("res")),
                                rhs: Box::new(var_ref(var)),
                            }],
                        }),
                    }),
                };
                self.new_functions.push(FunctionDecl {
                    name: driver_name.clone(),
                    params: vec![var.to_string()],
                    param_types: vec![None],
                    return_type: None,
                    body: fix_body,
                });
                // Call site: local:fix_i(local:rec_i(e_seed)).
                Expr::FunctionCall {
                    name: driver_name,
                    args: vec![call_rec(seed)],
                }
            }
            RewriteStyle::Delta => {
                // declare function local:delta_i($x, $res) {
                //   let $delta := local:rec_i($x) except $res
                //   return if (empty($delta)) then $res
                //          else local:delta_i($delta, $delta union $res) };
                let delta_body = Expr::Let {
                    var: "delta".into(),
                    value: Box::new(Expr::Binary {
                        op: xqy_parser::BinaryOp::Except,
                        lhs: Box::new(call_rec(var_ref(var))),
                        rhs: Box::new(var_ref("res")),
                    }),
                    body: Box::new(Expr::If {
                        cond: Box::new(Expr::FunctionCall {
                            name: "empty".into(),
                            args: vec![var_ref("delta")],
                        }),
                        then_branch: Box::new(var_ref("res")),
                        else_branch: Box::new(Expr::FunctionCall {
                            name: driver_name.clone(),
                            args: vec![
                                var_ref("delta"),
                                Expr::Binary {
                                    op: xqy_parser::BinaryOp::Union,
                                    lhs: Box::new(var_ref("delta")),
                                    rhs: Box::new(var_ref("res")),
                                },
                            ],
                        }),
                    }),
                };
                self.new_functions.push(FunctionDecl {
                    name: driver_name.clone(),
                    params: vec![var.to_string(), "res".into()],
                    param_types: vec![None, None],
                    return_type: None,
                    body: delta_body,
                });
                // Call site: local:delta_i(local:rec_i(e_seed),
                //                          local:rec_i(e_seed)) — the level-0
                // result both seeds the iteration and the accumulator.
                let seeded = call_rec(seed);
                Expr::FunctionCall {
                    name: driver_name,
                    args: vec![seeded.clone(), seeded],
                }
            }
        }
    }
}

/// Apply `f` to every direct child expression of `expr`, rebuilding it.
fn map_children(expr: &Expr, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
    use xqy_parser::ast::{ConstructorContent, TypeswitchCase};
    match expr {
        Expr::Literal(_) | Expr::EmptySequence | Expr::VarRef(_) | Expr::ContextItem => {
            expr.clone()
        }
        Expr::Sequence(items) => Expr::Sequence(items.iter().map(&mut *f).collect()),
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Expr::If {
            cond: Box::new(f(cond)),
            then_branch: Box::new(f(then_branch)),
            else_branch: Box::new(f(else_branch)),
        },
        Expr::For {
            var,
            pos_var,
            seq,
            body,
        } => Expr::For {
            var: var.clone(),
            pos_var: pos_var.clone(),
            seq: Box::new(f(seq)),
            body: Box::new(f(body)),
        },
        Expr::Let { var, value, body } => Expr::Let {
            var: var.clone(),
            value: Box::new(f(value)),
            body: Box::new(f(body)),
        },
        Expr::Quantified {
            every,
            var,
            seq,
            cond,
        } => Expr::Quantified {
            every: *every,
            var: var.clone(),
            seq: Box::new(f(seq)),
            cond: Box::new(f(cond)),
        },
        Expr::Typeswitch { operand, cases } => Expr::Typeswitch {
            operand: Box::new(f(operand)),
            cases: cases
                .iter()
                .map(|c| TypeswitchCase {
                    var: c.var.clone(),
                    seq_type: c.seq_type.clone(),
                    body: f(&c.body),
                })
                .collect(),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(f(lhs)),
            rhs: Box::new(f(rhs)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(f(expr)),
        },
        Expr::Path { input, step } => Expr::Path {
            input: Box::new(f(input)),
            step: Box::new(f(step)),
        },
        Expr::RootPath { step } => Expr::RootPath {
            step: step.as_ref().map(|s| Box::new(f(s))),
        },
        Expr::AxisStep {
            axis,
            test,
            predicates,
        } => Expr::AxisStep {
            axis: *axis,
            test: test.clone(),
            predicates: predicates.iter().map(&mut *f).collect(),
        },
        Expr::Filter { input, predicates } => Expr::Filter {
            input: Box::new(f(input)),
            predicates: predicates.iter().map(&mut *f).collect(),
        },
        Expr::FunctionCall { name, args } => Expr::FunctionCall {
            name: name.clone(),
            args: args.iter().map(&mut *f).collect(),
        },
        Expr::DirectElement {
            name,
            attributes,
            content,
        } => Expr::DirectElement {
            name: name.clone(),
            attributes: attributes
                .iter()
                .map(|(n, parts)| {
                    (
                        n.clone(),
                        parts
                            .iter()
                            .map(|p| match p {
                                ConstructorContent::Text(t) => ConstructorContent::Text(t.clone()),
                                ConstructorContent::Expr(e) => ConstructorContent::Expr(f(e)),
                            })
                            .collect(),
                    )
                })
                .collect(),
            content: content
                .iter()
                .map(|p| match p {
                    ConstructorContent::Text(t) => ConstructorContent::Text(t.clone()),
                    ConstructorContent::Expr(e) => ConstructorContent::Expr(f(e)),
                })
                .collect(),
        },
        Expr::ComputedElement { name, content } => Expr::ComputedElement {
            name: name.clone(),
            content: Box::new(f(content)),
        },
        Expr::ComputedAttribute { name, content } => Expr::ComputedAttribute {
            name: name.clone(),
            content: Box::new(f(content)),
        },
        Expr::ComputedText { content } => Expr::ComputedText {
            content: Box::new(f(content)),
        },
        Expr::Fixpoint { var, seed, body } => Expr::Fixpoint {
            var: var.clone(),
            seed: Box::new(f(seed)),
            body: Box::new(f(body)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_eval::Evaluator;
    use xqy_parser::parse_query;
    use xqy_xdm::NodeStore;

    const CURRICULUM: &str = r#"<curriculum>
        <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
        <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
        <course code="c3"><prerequisites/></course>
        <course code="c4"><prerequisites/></course>
    </curriculum>"#;

    const Q1: &str = "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
                      recurse $x/id(./prerequisites/pre_code)";

    fn store() -> NodeStore {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document_with_uri("curriculum.xml", CURRICULUM)
            .unwrap();
        store.register_id_attribute(doc, "code");
        store
    }

    #[test]
    fn rewrite_introduces_the_expected_functions() {
        let module = parse_query(Q1).unwrap();
        let naive = rewrite_fixpoints_to_functions(&module, RewriteStyle::Naive);
        let names: Vec<&str> = naive.functions.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"local:rec_0"));
        assert!(names.contains(&"local:fix_0"));
        assert!(!format!("{:?}", naive.body).contains("Fixpoint"));

        let delta = rewrite_fixpoints_to_functions(&module, RewriteStyle::Delta);
        let names: Vec<&str> = delta.functions.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"local:delta_0"));
    }

    #[test]
    fn rewritten_queries_produce_the_same_result_as_the_ifp_form() {
        let module = parse_query(Q1).unwrap();
        for style in [RewriteStyle::Naive, RewriteStyle::Delta] {
            let rewritten = rewrite_fixpoints_to_functions(&module, style);
            let mut s1 = store();
            let native = Evaluator::new(&mut s1).eval_module(&module).unwrap();
            let mut s2 = store();
            let lowered = Evaluator::new(&mut s2).eval_module(&rewritten).unwrap();
            assert_eq!(
                native.len(),
                lowered.len(),
                "style {} changed the result size",
                style.name()
            );
        }
    }

    #[test]
    fn rewritten_query_pretty_prints_and_reparses() {
        let module = parse_query(Q1).unwrap();
        let rewritten = rewrite_fixpoints_to_functions(&module, RewriteStyle::Delta);
        let text = xqy_parser::pretty::print_module(&rewritten);
        assert!(text.contains("declare function local:delta_0"));
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(reparsed.functions.len(), rewritten.functions.len());
    }

    #[test]
    fn nested_fixpoints_get_distinct_helper_names() {
        let src = "for $p in doc('curriculum.xml')/curriculum/course return \
                   ((with $x seeded by $p recurse $x/id(./prerequisites/pre_code)), \
                    (with $y seeded by $p recurse $y/id(./prerequisites/pre_code)))";
        let module = parse_query(src).unwrap();
        let rewritten = rewrite_fixpoints_to_functions(&module, RewriteStyle::Naive);
        let names: Vec<&str> = rewritten
            .functions
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(names.contains(&"local:fix_0"));
        assert!(names.contains(&"local:fix_1"));
        assert_eq!(rewritten.functions.len(), 4);
    }
}
