//! Cost-based plan selection for IFP occurrences (PR 9).
//!
//! Under the `Auto` knobs ([`Backend::Auto`](crate::Backend) /
//! [`Strategy::Auto`](crate::Strategy)) an IFP occurrence can run at any
//! point of the plan grid
//!
//! ```text
//! {Naïve, Delta} × {source-level, algebraic} × {per-seed, batched}
//! ```
//!
//! (restricted by soundness — Delta needs a distributivity certificate —
//! and by capability — the algebraic routes need a compiled plan).  Earlier
//! revisions picked a point statically: Delta whenever distributive,
//! algebraic whenever compiled, batched whenever a seed-carried plan
//! existed.  Those defaults are right *most* of the time, which is exactly
//! the problem: Table 2 of the paper shows the ranking between the cells
//! flipping with the workload (recursion depth, result size) and the scale
//! of the data.
//!
//! This module replaces the static defaults with a small cost model:
//!
//! 1. **Statistics** — [`StoreStatistics`] summarizes the store (node
//!    counts, average fanout, depth, ID-index density) and is memoized per
//!    revision; [`OccurrenceFeatures`] summarizes the occurrence (the
//!    distributivity verdict, body size, constructor presence, `id()`
//!    usage).
//! 2. **Estimation** — [`static_params`] turns the two into workload
//!    parameters: the expected iteration count and per-seed result size.
//! 3. **Costing** — [`cost`] prices every [`PlanAlternative`] in abstract
//!    microseconds; [`decide`] picks the cheapest candidate.
//! 4. **Feedback** — a per-occurrence [`FeedbackCell`] observes the real
//!    [`FixpointStats`] of every run (iterations, frontier curve, wall
//!    time).  The next [`decide`] re-costs the grid with *observed*
//!    parameters, and once the model's champion has itself been measured,
//!    measured wall times settle the ranking.  The cell is keyed on the
//!    statistics [fingerprint](StoreStatistics::fingerprint): when the data
//!    materially changes, the observations are discarded and selection
//!    falls back to the static estimate.
//!
//! The decision made for each occurrence is reported per execution in
//! [`OccurrencePlan`](crate::OccurrencePlan): the chosen alternative, who
//! chose it ([`DecisionSource`]), and the estimated vs. observed cost.

use std::sync::Mutex;

use xqy_eval::{
    FixpointBackendTag, FixpointObserver, FixpointStats, FixpointStrategy, FixpointStrategyTag,
};
use xqy_xdm::StoreStatistics;

/// One point of the `{strategy} × {backend} × {batching}` plan grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanAlternative {
    /// The iteration algorithm (Figure 3): Naïve or Delta.
    pub strategy: FixpointStrategy,
    /// Who drives the iterations: the source-level interpreter or the
    /// relational executor.
    pub backend: FixpointBackendTag,
    /// `true` for the batched multi-source route (all seeds in one shared
    /// fixpoint), `false` for one fixpoint per seed.
    pub batched: bool,
}

impl PlanAlternative {
    /// A compact display name, e.g. `delta/algebraic/batched`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            match self.strategy {
                FixpointStrategy::Naive => "naive",
                FixpointStrategy::Delta => "delta",
            },
            match self.backend {
                FixpointBackendTag::Interpreted => "source-level",
                FixpointBackendTag::Algebraic => "algebraic",
            },
            if self.batched { "batched" } else { "per-seed" },
        )
    }
}

/// Who settled an occurrence's plan for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionSource {
    /// The knobs left a single candidate (forced strategy *and* backend,
    /// or an occurrence with only one sound/capable alternative).
    Forced,
    /// The static cost model chose among several candidates using store
    /// statistics alone — no observations were available.
    Estimated,
    /// Observed statistics from earlier runs on the *same* data (same
    /// statistics fingerprint) corrected the estimate.
    Adapted,
}

/// Static, store-independent features of one IFP occurrence, extracted at
/// prepare time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccurrenceFeatures {
    /// Either distributivity approximation certified the body, so Delta is
    /// sound (and the batched drivers may share frontier evaluations).
    pub distributive: bool,
    /// The body compiled into the algebraic subset.
    pub algebraic: bool,
    /// A seed-carried batched plan exists (implies `algebraic`).
    pub batch_capable: bool,
    /// The body performs `fn:id(·)` lookups: recursion hops along ID edges,
    /// so tree depth does **not** bound the iteration count.
    pub uses_id: bool,
    /// The body contains node constructors (fresh identities per call).
    pub constructs: bool,
    /// AST size of the recursion body, a proxy for per-node evaluation
    /// work.
    pub body_size: usize,
}

/// Workload parameters an alternative is priced under: either estimated
/// from [`StoreStatistics`] or corrected by a [`FeedbackCell`] observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Expected fixpoint iterations until stabilization.
    pub depth: f64,
    /// Expected result size per seed (nodes in the closure).
    pub result: f64,
    /// Seeds of the call: 1 for `execute`, the seed-set size for
    /// `execute_batched`.
    pub seeds: f64,
    /// Total nodes in the store, capping how many *distinct* frontier
    /// nodes a shared batched run can ever touch.
    pub store_nodes: f64,
}

/// Estimate workload parameters from store statistics alone.
///
/// The iteration count is modeled as the depth at which a
/// fanout-`F` expansion exhausts the store: `log_F(N)`.  High fanout
/// therefore predicts a *shallow* recursion — the misprediction the
/// feedback loop exists to correct (a deep chain hanging off a wide root
/// looks shallow to this estimate).  For purely structural bodies the tree
/// depth bounds the iterations and clamps the estimate; `id()`-using
/// bodies hop across the tree, so no such bound applies.  On an empty or
/// near-empty store (queries over constructed data) a moderate default
/// depth keeps Delta the distributive default.
pub fn static_params(
    stats: &StoreStatistics,
    features: &OccurrenceFeatures,
    seeds: f64,
) -> CostParams {
    let n = stats.totals.nodes.max(1) as f64;
    let fanout = stats.avg_fanout().max(1.25);
    let mut depth = if stats.totals.nodes <= 1 {
        4.0
    } else {
        (n.ln() / fanout.ln()).clamp(1.0, 64.0)
    };
    if !features.uses_id && stats.totals.max_depth > 0 {
        depth = depth.min(stats.totals.max_depth as f64 + 1.0);
    }
    let result = (fanout * depth).min(n).max(1.0);
    CostParams {
        depth,
        result,
        seeds: seeds.max(1.0),
        store_nodes: n,
    }
}

/// Price one alternative under `params`, in abstract microseconds.
///
/// The formulas capture the first-order terms of each route:
///
/// * **Naïve vs. Delta** — Naïve re-feeds the whole growing accumulator
///   every iteration (`I × R/2` body inputs), Delta feeds each discovered
///   node once (`R + I`).  Naïve wins only when the recursion is very
///   shallow (estimated depth below ~2), where Delta's per-iteration
///   difference bookkeeping has nothing to amortize against.
/// * **Source-level vs. algebraic** — the interpreter pays a much higher
///   per-node constant (environment frames, tree walking) while the
///   relational executor pays more per iteration (table materialization)
///   and per run (seed-table setup).  Per seed, algebraic wins at any
///   non-trivial result size; the interesting flip is batched:
/// * **Batched** — the shared source-level driver memoizes each distinct
///   frontier node's image *once per run* for distributive bodies, so its
///   feed term is `~distinct` total; the algebraic batched driver
///   re-evaluates the distinct frontier every iteration.  At depth the
///   source route therefore overtakes the algebraic one — the Table-2
///   reversal between small and medium scale.  A batched run can always
///   degenerate to the grouped per-seed loop (sharing only setup), so its
///   static cost is capped just below the per-seed loop's.
pub fn cost(alt: PlanAlternative, params: &CostParams, features: &OccurrenceFeatures) -> f64 {
    let i = params.depth.max(1.0);
    let r = params.result.max(1.0);
    let s = params.seeds.max(1.0);
    // Nodes fed through the body per seed over the whole run.
    let fed = match alt.strategy {
        FixpointStrategy::Naive => i * (0.5 * r + 1.0),
        FixpointStrategy::Delta => r + i,
    };
    // Per-node body application cost, scaled by body complexity;
    // constructors allocate fresh nodes on every call.
    let body_scale =
        1.0 + features.body_size as f64 / 32.0 + if features.constructs { 0.5 } else { 0.0 };
    let (per_node, per_iter, setup) = match alt.backend {
        FixpointBackendTag::Interpreted => (0.6 * body_scale, 0.5, 1.0),
        FixpointBackendTag::Algebraic => (0.12 * body_scale, 0.8, 2.5),
    };
    // Per-run work that scales with the data, paid once per fixpoint run:
    // context setup, document-table touches, result materialization.  This
    // is what makes a per-seed loop lose to a batched run at scale — the
    // batched routes pay it once for the whole seed set.
    let scan = match alt.backend {
        FixpointBackendTag::Interpreted => 0.003 * params.store_nodes,
        FixpointBackendTag::Algebraic => 0.002 * params.store_nodes,
    };
    let per_seed_loop = s * (setup + scan + per_iter * i + per_node * fed);
    if !alt.batched {
        return per_seed_loop;
    }
    // Distinct frontier nodes a shared run touches in total: seeds'
    // closures overlap, and the store bounds them.
    let distinct = (0.7 * s * r).min(params.store_nodes).max(1.0);
    let batched = match alt.backend {
        FixpointBackendTag::Algebraic => {
            let feed = if features.distributive {
                // Shared distinct-frontier mode, re-evaluated per iteration.
                0.6 * i * distinct
            } else {
                // Strict per-seed rows in one shared loop.
                s * fed
            };
            setup + per_iter * i + per_node * feed + 0.05 * i * s
        }
        FixpointBackendTag::Interpreted => {
            if features.distributive {
                // Shared mode memoizes each distinct node's image once per
                // run; the per-iteration work left is cheap set folding.
                setup + per_iter * i + per_node * distinct + 0.02 * i * s
            } else {
                // Grouped lockstep: the same evaluations as the per-seed
                // loop, sharing only the setup.
                setup + per_iter * i + per_node * s * fed
            }
        }
    };
    batched.min(0.95 * per_seed_loop)
}

/// What one completed execution of an occurrence looked like: the
/// alternative that actually ran and the observed workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunObservation {
    /// The grid point the run used (reconstructed from [`FixpointStats`]).
    pub alternative: PlanAlternative,
    /// Maximum iteration count observed.
    pub depth: u64,
    /// Total result nodes across all runs folded into this observation.
    pub result: u64,
    /// Total seeds served (one per `execute`, the batch size for a batched
    /// run).
    pub seeds: u64,
    /// Total wall-clock microseconds.
    pub wall_micros: u64,
    /// Fixpoint runs folded into this observation.
    pub runs: u64,
}

impl RunObservation {
    fn from_stats(stats: &FixpointStats) -> Option<Self> {
        let strategy = match stats.strategy? {
            FixpointStrategyTag::Naive => FixpointStrategy::Naive,
            FixpointStrategyTag::Delta => FixpointStrategy::Delta,
        };
        Some(RunObservation {
            alternative: PlanAlternative {
                strategy,
                backend: stats.backend,
                batched: stats.batch_seeds > 0,
            },
            depth: stats.iterations as u64,
            result: stats.result_size as u64,
            seeds: stats.batch_seeds.max(1) as u64,
            wall_micros: stats.wall_micros,
            runs: 1,
        })
    }

    fn absorb(&mut self, other: &RunObservation) {
        self.depth = self.depth.max(other.depth);
        self.result += other.result;
        self.seeds += other.seeds;
        self.wall_micros += other.wall_micros;
        self.runs += other.runs;
    }
}

#[derive(Debug, Default)]
struct FeedbackInner {
    /// The statistics fingerprint the observations were taken under.
    fingerprint: Option<u64>,
    /// Accumulator for the execution currently in flight (an `execute`
    /// call, or every per-seed run of one batch), per alternative.
    current: Vec<RunObservation>,
    /// One (latest) completed observation per alternative tried.
    observed: Vec<RunObservation>,
    /// The most recently completed observation — the freshest workload
    /// parameters.
    recent: Option<RunObservation>,
}

/// The per-occurrence feedback loop: observes every fixpoint run's
/// [`FixpointStats`] (as the occurrence's [`FixpointObserver`]), rolls
/// them up per execution, and advises the next [`decide`] call.
///
/// Lifecycle per execution: the prepared query installs the cell as the
/// occurrence's observer, the eval layer calls [`observe`](Self::observe)
/// once per fixpoint run, and after evaluation the prepared query calls
/// [`finish_run`](Self::finish_run) with the store's statistics
/// fingerprint.  A fingerprint change (the data materially changed)
/// discards all accumulated observations.
#[derive(Debug, Default)]
pub struct FeedbackCell {
    inner: Mutex<FeedbackInner>,
}

/// Take the cell's lock even if a previous holder panicked (the cell is
/// shared across every clone and fork of a prepared query, so one
/// contained panic must not poison cost feedback for the whole service).
/// The in-flight accumulation of the panicked run may be half-recorded, so
/// it is discarded; completed observations are append-only and stay valid.
fn feedback_lock(lock: &Mutex<FeedbackInner>) -> std::sync::MutexGuard<'_, FeedbackInner> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            lock.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.current.clear();
            guard
        }
    }
}

impl FeedbackCell {
    /// A fresh cell with no observations.
    pub fn new() -> Self {
        FeedbackCell::default()
    }

    /// Roll the in-flight accumulation into the observation table under
    /// `fingerprint`, returning the execution's aggregate (the dominant
    /// alternative by wall time).  Returns `None` when nothing ran.
    pub fn finish_run(&self, fingerprint: u64) -> Option<RunObservation> {
        let mut inner = feedback_lock(&self.inner);
        if inner.fingerprint != Some(fingerprint) {
            inner.observed.clear();
            inner.recent = None;
            inner.fingerprint = Some(fingerprint);
        }
        let current = std::mem::take(&mut inner.current);
        if current.is_empty() {
            return None;
        }
        let mut dominant: Option<RunObservation> = None;
        for obs in current {
            if let Some(slot) = inner
                .observed
                .iter_mut()
                .find(|o| o.alternative == obs.alternative)
            {
                *slot = obs;
            } else {
                inner.observed.push(obs);
            }
            inner.recent = Some(obs);
            match &mut dominant {
                Some(d) if d.wall_micros >= obs.wall_micros => {}
                _ => dominant = Some(obs),
            }
        }
        dominant
    }

    /// The corrected workload parameters and measured wall times for the
    /// next decision, if observations exist for this `fingerprint`.
    fn advise(&self, fingerprint: u64) -> Option<Advice> {
        let inner = feedback_lock(&self.inner);
        if inner.fingerprint != Some(fingerprint) {
            return None;
        }
        let recent = inner.recent?;
        Some(Advice {
            recent,
            walls: inner
                .observed
                .iter()
                .map(|o| (o.alternative, o.wall_micros as f64, o.seeds.max(1) as f64))
                .collect(),
        })
    }

    /// Number of distinct alternatives observed under the current
    /// fingerprint (diagnostic).
    pub fn observed_alternatives(&self) -> usize {
        feedback_lock(&self.inner).observed.len()
    }
}

impl FixpointObserver for FeedbackCell {
    fn observe(&self, stats: &FixpointStats) {
        let Some(obs) = RunObservation::from_stats(stats) else {
            return;
        };
        let mut inner = feedback_lock(&self.inner);
        if let Some(slot) = inner
            .current
            .iter_mut()
            .find(|o| o.alternative == obs.alternative)
        {
            slot.absorb(&obs);
        } else {
            inner.current.push(obs);
        }
    }
}

/// Observed guidance for one decision.
struct Advice {
    recent: RunObservation,
    /// `(alternative, total wall µs, seeds it served)` per alternative
    /// measured under the current fingerprint.
    walls: Vec<(PlanAlternative, f64, f64)>,
}

impl Advice {
    fn params(&self, seeds: f64, store_nodes: f64) -> CostParams {
        let per_seed = self.recent.result as f64 / self.recent.seeds.max(1) as f64;
        CostParams {
            depth: (self.recent.depth as f64).max(1.0),
            result: per_seed.max(1.0),
            seeds: seeds.max(1.0),
            store_nodes: store_nodes.max(1.0),
        }
    }

    /// The measured wall time of `alt`, linearly rescaled from the seed
    /// count it was measured under to the current one.
    fn observed_micros(&self, alt: PlanAlternative, seeds: f64) -> Option<f64> {
        self.walls
            .iter()
            .find(|(a, _, _)| *a == alt)
            .map(|(_, wall, obs_seeds)| wall * seeds.max(1.0) / obs_seeds.max(1.0))
    }
}

/// The outcome of costing one occurrence's candidate grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostDecision {
    /// The chosen grid point.
    pub alternative: PlanAlternative,
    /// The cost the winner was selected at: the model estimate, or the
    /// rescaled measured wall time once the winner has been measured.
    pub estimated_micros: u64,
    /// Who settled the choice.
    pub source: DecisionSource,
}

/// Pick the cheapest of `candidates` for an occurrence with `features`
/// over a store summarized by `stats`, consulting (and preferring)
/// `feedback` observations taken under the same statistics fingerprint.
///
/// Candidate order is the tie-break: the first of equal-cost candidates
/// wins, so callers list preferred routes (batched, algebraic, Delta)
/// first.  Selection is a two-step rule that mixes model estimates and
/// measurements without ever comparing the two directly (their units are
/// not calibrated against each other):
///
/// 1. the model — with feedback-corrected parameters when available —
///    picks a champion;
/// 2. if that champion has itself been measured, the measured wall times
///    settle the ranking among all *measured* candidates.
///
/// Step 2 makes the loop converge: a model champion that measures worse
/// than a previously tried alternative is demoted on the next run, while
/// an unmeasured champion gets explored exactly once.
pub fn decide(
    candidates: &[PlanAlternative],
    features: &OccurrenceFeatures,
    stats: &StoreStatistics,
    feedback: &FeedbackCell,
    seeds: usize,
) -> CostDecision {
    debug_assert!(
        !candidates.is_empty(),
        "decide() needs at least one candidate"
    );
    let seeds = seeds.max(1) as f64;
    let fingerprint = stats.fingerprint();
    let advice = feedback.advise(fingerprint);
    let (params, source) = match &advice {
        Some(a) => (
            a.params(seeds, stats.totals.nodes.max(1) as f64),
            DecisionSource::Adapted,
        ),
        None => (
            static_params(stats, features, seeds),
            DecisionSource::Estimated,
        ),
    };

    let mut champion = candidates[0];
    let mut champion_cost = cost(champion, &params, features);
    for &alt in &candidates[1..] {
        let c = cost(alt, &params, features);
        if c < champion_cost {
            champion = alt;
            champion_cost = c;
        }
    }

    let mut chosen = champion;
    let mut chosen_cost = champion_cost;
    if let Some(advice) = &advice {
        if let Some(champion_wall) = advice.observed_micros(champion, seeds) {
            // The champion has been measured: trust measurements among all
            // measured candidates, with 10% hysteresis so measurement noise
            // cannot flap the plan between runs.
            chosen_cost = champion_wall;
            for &alt in candidates {
                if alt == chosen {
                    continue;
                }
                if let Some(wall) = advice.observed_micros(alt, seeds) {
                    if wall < 0.9 * chosen_cost {
                        chosen = alt;
                        chosen_cost = wall;
                    }
                }
            }
        }
    }

    CostDecision {
        alternative: chosen,
        estimated_micros: chosen_cost.round() as u64,
        source: if candidates.len() == 1 {
            DecisionSource::Forced
        } else {
            source
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqy_xdm::DocumentStatistics;

    fn features(distributive: bool) -> OccurrenceFeatures {
        OccurrenceFeatures {
            distributive,
            algebraic: true,
            batch_capable: true,
            uses_id: true,
            constructs: false,
            body_size: 8,
        }
    }

    fn stats(nodes: u64, parents: u64, child_links: u64) -> StoreStatistics {
        StoreStatistics {
            revision: 1,
            documents: 1,
            totals: DocumentStatistics {
                nodes,
                elements: nodes,
                parents,
                child_links,
                max_depth: 64,
                ..DocumentStatistics::default()
            },
            per_document: Vec::new(),
            text_pool_strings: 0,
        }
    }

    fn alt(
        strategy: FixpointStrategy,
        backend: FixpointBackendTag,
        batched: bool,
    ) -> PlanAlternative {
        PlanAlternative {
            strategy,
            backend,
            batched,
        }
    }

    #[test]
    fn empty_store_defaults_prefer_delta() {
        let st = stats(0, 0, 0);
        let f = features(true);
        let p = static_params(&st, &f, 1.0);
        assert!(
            p.depth >= 3.0,
            "empty-store depth default too shallow: {}",
            p.depth
        );
        let delta = cost(
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                false,
            ),
            &p,
            &f,
        );
        let naive = cost(
            alt(
                FixpointStrategy::Naive,
                FixpointBackendTag::Interpreted,
                false,
            ),
            &p,
            &f,
        );
        assert!(delta < naive, "delta {delta} should beat naive {naive}");
    }

    #[test]
    fn high_fanout_shallow_estimate_prefers_naive() {
        // A 4000-child root: fanout ≈ N, so the estimated depth is < 2 and
        // Naïve's re-feeding never materializes.
        let st = stats(4030, 31, 4029);
        let f = features(true);
        let p = static_params(&st, &f, 1.0);
        assert!(p.depth < 2.0, "estimated depth {} should be < 2", p.depth);
        let delta = cost(
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                false,
            ),
            &p,
            &f,
        );
        let naive = cost(
            alt(
                FixpointStrategy::Naive,
                FixpointBackendTag::Interpreted,
                false,
            ),
            &p,
            &f,
        );
        assert!(naive < delta, "naive {naive} should beat delta {delta}");
    }

    #[test]
    fn batched_never_costs_more_than_per_seed_statically() {
        for &(n, parents, links) in &[
            (30u64, 10u64, 29u64),
            (5000, 1200, 4999),
            (200_000, 60_000, 199_999),
        ] {
            let st = stats(n, parents, links);
            for &distributive in &[true, false] {
                let f = features(distributive);
                for seeds in [1usize, 4, 64] {
                    let p = static_params(&st, &f, seeds as f64);
                    for strategy in [FixpointStrategy::Naive, FixpointStrategy::Delta] {
                        for backend in [
                            FixpointBackendTag::Interpreted,
                            FixpointBackendTag::Algebraic,
                        ] {
                            let b = cost(alt(strategy, backend, true), &p, &f);
                            let s = cost(alt(strategy, backend, false), &p, &f);
                            assert!(
                                b < s,
                                "batched {b} ≥ per-seed {s} at n={n} seeds={seeds} {strategy:?} {backend:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batched_backend_ranking_flips_with_depth() {
        let f = features(true);
        // Shallow: the algebraic batched route's per-iteration re-evaluation
        // has few iterations to pay for and wins.
        let shallow = CostParams {
            depth: 3.0,
            result: 40.0,
            seeds: 50.0,
            store_nodes: 2000.0,
        };
        let alg = cost(
            alt(FixpointStrategy::Delta, FixpointBackendTag::Algebraic, true),
            &shallow,
            &f,
        );
        let src = cost(
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                true,
            ),
            &shallow,
            &f,
        );
        assert!(
            alg < src,
            "shallow: algebraic {alg} should beat source {src}"
        );
        // Deep: the source-level shared driver's once-per-run memoization wins.
        let deep = CostParams {
            depth: 30.0,
            result: 40.0,
            seeds: 50.0,
            store_nodes: 2000.0,
        };
        let alg = cost(
            alt(FixpointStrategy::Delta, FixpointBackendTag::Algebraic, true),
            &deep,
            &f,
        );
        let src = cost(
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                true,
            ),
            &deep,
            &f,
        );
        assert!(src < alg, "deep: source {src} should beat algebraic {alg}");
    }

    #[test]
    fn feedback_corrects_a_shallow_misprediction() {
        // Static estimate says depth < 2 → Naïve; the observed run reveals a
        // 30-deep chain and the next decision flips to Delta.
        let st = stats(4030, 31, 4029);
        let f = OccurrenceFeatures {
            algebraic: false,
            batch_capable: false,
            ..features(true)
        };
        let cell = FeedbackCell::new();
        let grid = [
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                false,
            ),
            alt(
                FixpointStrategy::Naive,
                FixpointBackendTag::Interpreted,
                false,
            ),
        ];
        let first = decide(&grid, &f, &st, &cell, 1);
        assert_eq!(first.alternative.strategy, FixpointStrategy::Naive);
        assert_eq!(first.source, DecisionSource::Estimated);

        cell.observe(&FixpointStats {
            strategy: Some(FixpointStrategyTag::Naive),
            backend: FixpointBackendTag::Interpreted,
            iterations: 31,
            result_size: 30,
            wall_micros: 900,
            ..FixpointStats::default()
        });
        assert!(cell.finish_run(st.fingerprint()).is_some());

        let second = decide(&grid, &f, &st, &cell, 1);
        assert_eq!(second.alternative.strategy, FixpointStrategy::Delta);
        assert_eq!(second.source, DecisionSource::Adapted);

        // Once Delta has been measured too, wall times settle the ranking.
        cell.observe(&FixpointStats {
            strategy: Some(FixpointStrategyTag::Delta),
            backend: FixpointBackendTag::Interpreted,
            iterations: 31,
            result_size: 30,
            wall_micros: 120,
            ..FixpointStats::default()
        });
        cell.finish_run(st.fingerprint());
        let third = decide(&grid, &f, &st, &cell, 1);
        assert_eq!(third.alternative.strategy, FixpointStrategy::Delta);
        assert_eq!(third.estimated_micros, 120);
    }

    #[test]
    fn fingerprint_change_discards_observations() {
        let st = stats(4030, 31, 4029);
        let cell = FeedbackCell::new();
        cell.observe(&FixpointStats {
            strategy: Some(FixpointStrategyTag::Naive),
            backend: FixpointBackendTag::Interpreted,
            iterations: 31,
            result_size: 30,
            wall_micros: 900,
            ..FixpointStats::default()
        });
        cell.finish_run(st.fingerprint());
        assert_eq!(cell.observed_alternatives(), 1);

        // Materially different data → different fingerprint → observations
        // are dropped and the decision is Estimated again.
        let grown = stats(1_000_000, 400_000, 999_999);
        assert_ne!(st.fingerprint(), grown.fingerprint());
        let grid = [
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                false,
            ),
            alt(
                FixpointStrategy::Naive,
                FixpointBackendTag::Interpreted,
                false,
            ),
        ];
        let d = decide(&grid, &features(true), &grown, &cell, 1);
        assert_eq!(d.source, DecisionSource::Estimated);
        cell.finish_run(grown.fingerprint());
        assert_eq!(cell.observed_alternatives(), 0);
    }

    #[test]
    fn forced_single_candidate_reports_forced() {
        let st = stats(100, 40, 99);
        let cell = FeedbackCell::new();
        let d = decide(
            &[alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Algebraic,
                false,
            )],
            &features(true),
            &st,
            &cell,
            1,
        );
        assert_eq!(d.source, DecisionSource::Forced);
        assert_eq!(d.alternative.backend, FixpointBackendTag::Algebraic);
    }
}
