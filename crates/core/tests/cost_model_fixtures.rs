//! Cost-model regression fixtures (PR 9).
//!
//! Part 1 pins the plan the cost model must choose for each (workload,
//! scale) cell of the paper's Table-2 grid, under *committed* synthetic
//! store statistics — so a formula change that silently flips a cell fails
//! loudly here rather than in a benchmark.
//!
//! Part 2 exercises the feedback loop end to end on a live engine: a
//! document engineered so the static estimate mispredicts (a deep chain
//! hiding behind a wide root looks shallow to the fanout model), where the
//! second execution of the same prepared query must re-route using the
//! observed statistics of the first.

use xqy_ifp::cost::{self, DecisionSource, FeedbackCell, OccurrenceFeatures, PlanAlternative};
use xqy_ifp::eval::{FixpointBackendTag, FixpointStrategy};
use xqy_ifp::xdm::{DocumentStatistics, Sequence, StoreStatistics};
use xqy_ifp::{Backend, Bindings, Engine, Strategy};

/// Committed statistics for one scale of the curriculum workload: `fanout`
/// ≈ 10/3 per parent, so estimated recursion depth grows with the log of
/// the node count (≈6.3 / ≈9.0 / ≈10.9 for the three scales).
fn curriculum_stats(nodes: u64, parents: u64, child_links: u64) -> StoreStatistics {
    StoreStatistics {
        revision: 1,
        documents: 1,
        totals: DocumentStatistics {
            nodes,
            elements: nodes,
            parents,
            child_links,
            max_fanout: 40,
            max_depth: 64,
            id_entries: parents,
            ..DocumentStatistics::default()
        },
        per_document: Vec::new(),
        text_pool_strings: nodes / 4,
    }
}

fn small() -> StoreStatistics {
    curriculum_stats(2_000, 600, 1_999)
}

fn medium() -> StoreStatistics {
    curriculum_stats(50_000, 15_000, 49_999)
}

fn large() -> StoreStatistics {
    curriculum_stats(500_000, 150_000, 499_999)
}

/// Q1: the prerequisite-closure query — distributive, inside the algebraic
/// subset, batch-capable, hops the `id()` space.
fn q1() -> OccurrenceFeatures {
    OccurrenceFeatures {
        distributive: true,
        algebraic: true,
        batch_capable: true,
        uses_id: true,
        constructs: false,
        body_size: 8,
    }
}

/// Q2: a guarded accumulator inspection — non-distributive (Delta unsound)
/// and outside the algebraic subset, so only the source-level Naïve routes
/// remain.
fn q2() -> OccurrenceFeatures {
    OccurrenceFeatures {
        distributive: false,
        algebraic: false,
        batch_capable: false,
        uses_id: true,
        constructs: false,
        body_size: 24,
    }
}

fn alt(strategy: FixpointStrategy, backend: FixpointBackendTag, batched: bool) -> PlanAlternative {
    PlanAlternative {
        strategy,
        backend,
        batched,
    }
}

/// The full valid grid for `features`, in the preference order the
/// prepared-query layer uses: batched points first, Delta before Naïve,
/// algebraic before source-level.
fn grid(features: &OccurrenceFeatures, batched_context: bool) -> Vec<PlanAlternative> {
    let strategies: &[FixpointStrategy] = if features.distributive {
        &[FixpointStrategy::Delta, FixpointStrategy::Naive]
    } else {
        &[FixpointStrategy::Naive]
    };
    let backends: &[FixpointBackendTag] = if features.algebraic {
        &[
            FixpointBackendTag::Algebraic,
            FixpointBackendTag::Interpreted,
        ]
    } else {
        &[FixpointBackendTag::Interpreted]
    };
    let mut out = Vec::new();
    if batched_context {
        for &s in strategies {
            for &b in backends {
                if b == FixpointBackendTag::Algebraic && !features.batch_capable {
                    continue;
                }
                out.push(alt(s, b, true));
            }
        }
    }
    for &s in strategies {
        for &b in backends {
            out.push(alt(s, b, false));
        }
    }
    out
}

fn pin(
    name: &str,
    stats: &StoreStatistics,
    features: &OccurrenceFeatures,
    batched_context: bool,
    seeds: usize,
    expect: PlanAlternative,
) {
    let candidates = grid(features, batched_context);
    let decision = cost::decide(&candidates, features, stats, &FeedbackCell::new(), seeds);
    assert_eq!(
        decision.alternative,
        expect,
        "{name}: expected {}, cost model chose {}",
        expect.label(),
        decision.alternative.label()
    );
    let expected_source = if candidates.len() == 1 {
        DecisionSource::Forced
    } else {
        DecisionSource::Estimated
    };
    assert_eq!(decision.source, expected_source, "{name}");
    assert!(decision.estimated_micros > 0, "{name}: zero estimate");
    // The pin must agree with the raw formulas: the chosen point prices at
    // the minimum over the whole candidate grid.
    let params = cost::static_params(stats, features, seeds as f64);
    let chosen = cost::cost(decision.alternative, &params, features);
    for &c in &candidates {
        assert!(
            chosen <= cost::cost(c, &params, features),
            "{name}: {} is not the cost minimum",
            decision.alternative.label()
        );
    }
}

/// Table-2 pins: which grid point wins each (workload, scale) cell.
#[test]
fn table2_cell_choices_are_pinned() {
    // Q1, one seed per execution: the algebraic Delta loop wins at every
    // scale (the interpreter's per-node constant dominates it).
    for (name, st) in [
        ("q1/small/execute", small()),
        ("q1/medium/execute", medium()),
        ("q1/large/execute", large()),
    ] {
        pin(
            name,
            &st,
            &q1(),
            false,
            1,
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Algebraic,
                false,
            ),
        );
    }

    // Q1 batched, small scale: shallow recursion — the algebraic batched
    // route's per-iteration re-evaluation has little depth to pay for.
    pin(
        "q1/small/batched",
        &small(),
        &q1(),
        true,
        32,
        alt(FixpointStrategy::Delta, FixpointBackendTag::Algebraic, true),
    );

    // Q1 batched, medium and large scale: the Table-2 reversal.  Deeper
    // recursion favors the shared source-level driver, which memoizes each
    // distinct frontier node's image once per run.
    for (name, st) in [
        ("q1/medium/batched", medium()),
        ("q1/large/batched", large()),
    ] {
        pin(
            name,
            &st,
            &q1(),
            true,
            128,
            alt(
                FixpointStrategy::Delta,
                FixpointBackendTag::Interpreted,
                true,
            ),
        );
    }

    // Q2 (non-distributive, interpreter-only): Naïve source-level, batched
    // when a batch context exists — grouping still shares per-run setup.
    pin(
        "q2/medium/batched",
        &medium(),
        &q2(),
        true,
        128,
        alt(
            FixpointStrategy::Naive,
            FixpointBackendTag::Interpreted,
            true,
        ),
    );
    pin(
        "q2/medium/execute",
        &medium(),
        &q2(),
        false,
        1,
        alt(
            FixpointStrategy::Naive,
            FixpointBackendTag::Interpreted,
            false,
        ),
    );

    // A wide, flat store: estimated depth < 2, so Naïve's re-feeding never
    // materializes and Delta's difference bookkeeping is pure overhead.
    let wide = curriculum_stats(4_030, 31, 4_029);
    pin(
        "wide/shallow/execute",
        &wide,
        &q1(),
        false,
        1,
        alt(
            FixpointStrategy::Naive,
            FixpointBackendTag::Algebraic,
            false,
        ),
    );
}

/// A single-candidate grid is reported as [`DecisionSource::Forced`].
#[test]
fn forced_knobs_bypass_the_model() {
    let only = alt(
        FixpointStrategy::Delta,
        FixpointBackendTag::Interpreted,
        false,
    );
    let d = cost::decide(&[only], &q1(), &small(), &FeedbackCell::new(), 1);
    assert_eq!(d.source, DecisionSource::Forced);
    assert_eq!(d.alternative, only);
}

/// The misprediction document: 4000 leaves under the root make the store
/// look wide-and-shallow (estimated depth ≈ 1.7), while the query's seed
/// sits at the head of a `depth`-deep chain the estimate cannot see.
fn trap_document(leaves: usize, depth: usize) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..leaves {
        xml.push_str("<w/>");
    }
    for _ in 0..depth {
        xml.push_str("<d>");
    }
    for _ in 0..depth {
        xml.push_str("</d>");
    }
    xml.push_str("</r>");
    xml
}

/// End-to-end feedback re-route: run 1 follows the (wrong) static estimate
/// and reports `Estimated`; run 2 of the *same prepared query* sees the
/// observed iteration count and switches algorithms, reporting `Adapted`.
#[test]
fn second_execution_reroutes_a_mispredicted_occurrence() {
    let mut engine = Engine::new();
    engine
        .load_document("trap.xml", &trap_document(4_000, 30))
        .unwrap();
    engine.set_strategy(Strategy::Auto);

    // Forcing the source-level back-end isolates the strategy decision:
    // the candidate grid is exactly {Naïve, Delta} × {interpreted}.
    let prepared = engine
        .prepare("with $x seeded by $seed recurse $x/*")
        .unwrap()
        .with_backend(Backend::SourceLevel);

    // Seed at the head of the chain: the true recursion is 30 deep.
    let head = engine.run("doc('trap.xml')/r/d").unwrap().result;
    assert_eq!(head.len(), 1);
    let bindings = Bindings::new().with("seed", head.clone());

    let first = prepared.execute(&mut engine, &bindings).unwrap();
    let plan = &first.occurrences[0];
    assert_eq!(
        plan.strategy,
        FixpointStrategy::Naive,
        "the static estimate must fall into the trap (estimated depth < 2)"
    );
    assert_eq!(plan.decided_by, DecisionSource::Estimated);
    assert!(plan.observed_cost_micros.is_some());
    let deep_iterations = first.fixpoints[0].iterations;
    assert!(
        deep_iterations >= 29,
        "the chain walk must actually be deep, got {deep_iterations} iterations"
    );

    let second = prepared.execute(&mut engine, &bindings).unwrap();
    let plan = &second.occurrences[0];
    assert_eq!(
        plan.strategy,
        FixpointStrategy::Delta,
        "observed depth {deep_iterations} must re-route the second run to Delta"
    );
    assert_eq!(plan.decided_by, DecisionSource::Adapted);
    // Same algorithm change, same answer.
    assert_eq!(first.result.nodes(), second.result.nodes());

    // The re-route sticks: with both alternatives measured, wall times keep
    // the cheaper algorithm in place on every later run.
    let third = prepared.execute(&mut engine, &bindings).unwrap();
    assert_eq!(third.occurrences[0].strategy, FixpointStrategy::Delta);
    assert_eq!(third.occurrences[0].decided_by, DecisionSource::Adapted);
    assert_eq!(first.result.nodes(), third.result.nodes());
}

/// The adapted choice is invisible to correctness: Auto with feedback must
/// keep matching a forced-Naïve oracle on the trap document, including
/// under batched execution.
#[test]
fn adapted_plans_preserve_the_oracle_answer() {
    let xml = trap_document(200, 12);
    let mut oracle_engine = Engine::new();
    oracle_engine.load_document("trap.xml", &xml).unwrap();
    oracle_engine.set_strategy(Strategy::Naive);
    let mut auto_engine = Engine::new();
    auto_engine.load_document("trap.xml", &xml).unwrap();
    auto_engine.set_strategy(Strategy::Auto);

    let query = "with $x seeded by $seed recurse $x/*";
    let oracle_prepared = oracle_engine
        .prepare(query)
        .unwrap()
        .with_backend(Backend::SourceLevel);
    let auto_prepared = auto_engine.prepare(query).unwrap();

    let seeds = auto_engine.run("doc('trap.xml')/r/d").unwrap().result;
    let oracle_seeds = oracle_engine.run("doc('trap.xml')/r/d").unwrap().result;
    let seeds = Sequence::from_nodes(vec![seeds.nodes()[0], seeds.nodes()[0]]);
    let oracle_seeds = Sequence::from_nodes(vec![oracle_seeds.nodes()[0], oracle_seeds.nodes()[0]]);

    for _ in 0..3 {
        let auto = auto_prepared
            .execute_batched(&mut auto_engine, "seed", &seeds, &Bindings::new())
            .unwrap();
        let oracle = oracle_prepared
            .execute_batched(&mut oracle_engine, "seed", &oracle_seeds, &Bindings::new())
            .unwrap();
        assert_eq!(auto.per_seed.len(), oracle.per_seed.len());
        for (a, o) in auto.per_seed.iter().zip(oracle.per_seed.iter()) {
            assert_eq!(a.len(), o.len());
        }
        assert_eq!(auto.outcome.result.len(), oracle.outcome.result.len());
    }
}
