//! The differential plan-oracle harness (PR 9).
//!
//! Every point of the `{Naïve, Delta} × {source-level, algebraic} ×
//! {per-seed, batched}` plan grid computes the **same function**; only the
//! cost differs.  This harness pins that down: for random fixpoint bodies,
//! random document shapes and random seed sets, it executes the query under
//! every *valid* grid point (Delta needs a distributivity certificate, the
//! algebraic routes a compiled plan) and asserts the per-seed results are
//! identical — `(len, display)` — to a fixed oracle: forced Naïve on the
//! source-level interpreter, one execution per seed.
//!
//! The `Auto` knobs are then held to the same bar: whatever the cost model
//! picks must (a) be a point of the valid grid and (b) reproduce the oracle
//! bit for bit.
//!
//! The whole suite is thread-policy agnostic: CI re-runs it under
//! `XQY_FIXPOINT_THREADS=4`, where the batched drivers shard their work.

use proptest::prelude::*;
use xqy_ifp::eval::{FixpointBackendTag, FixpointStrategy};
use xqy_ifp::xdm::Sequence;
use xqy_ifp::{Backend, Bindings, Engine, PreparedQuery, Strategy};

/// A curriculum document whose prerequisite graph is given by `edges`,
/// plus a decorative `<filler>` subtree (a `wide`-fanout row of leaves and
/// a `chain`-deep spine) that perturbs the store statistics — and thereby
/// the cost model's estimates — without touching the `id()` space the
/// recursion bodies traverse.
fn curriculum_xml(courses: usize, edges: &[(usize, usize)], wide: usize, chain: usize) -> String {
    let mut out = String::from("<curriculum>");
    for i in 0..courses {
        out.push_str(&format!("<course code=\"c{i}\"><prerequisites>"));
        for (from, to) in edges {
            if *from == i {
                out.push_str(&format!("<pre_code>c{}</pre_code>", to % courses));
            }
        }
        out.push_str("</prerequisites></course>");
    }
    out.push_str("<filler>");
    for _ in 0..wide {
        out.push_str("<leaf/>");
    }
    for _ in 0..chain {
        out.push_str("<deep>");
    }
    for _ in 0..chain {
        out.push_str("</deep>");
    }
    out.push_str("</filler></curriculum>");
    out
}

fn engine_for(xml: &str) -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document_with_ids("c.xml", xml, &["code"])
        .unwrap();
    engine
}

fn all_courses(engine: &mut Engine) -> Sequence {
    engine.run("doc('c.xml')/curriculum/course").unwrap().result
}

/// `(len, serialized display)` of a result sequence — the oracle identity.
fn signature(engine: &Engine, seq: &Sequence) -> (usize, String) {
    (seq.len(), engine.display(seq))
}

/// One execution per seed under the given knobs, returning per-seed
/// signatures.
fn per_seed_signatures(
    prepared: &PreparedQuery,
    engine: &mut Engine,
    seeds: &Sequence,
) -> Vec<(usize, String)> {
    seeds
        .iter()
        .map(|item| {
            let bindings = Bindings::new().with("seed", Sequence::singleton(item.clone()));
            let outcome = prepared.execute(engine, &bindings).unwrap();
            signature(engine, &outcome.result)
        })
        .collect()
}

/// One batched execution over all seeds, returning per-seed signatures.
fn batched_signatures(
    prepared: &PreparedQuery,
    engine: &mut Engine,
    seeds: &Sequence,
) -> Vec<(usize, String)> {
    let batch = prepared
        .execute_batched(engine, "seed", seeds, &Bindings::new())
        .unwrap();
    batch
        .per_seed
        .iter()
        .map(|seq| signature(engine, seq))
        .collect()
}

/// The body pool: a mix of algebraic-subset and interpreter-only bodies,
/// distributive and not, `id()`-hopping and purely structural.
fn body_pool() -> impl proptest::strategy::Strategy<Value = &'static str> {
    prop_oneof![
        Just("$x/id(./prerequisites/pre_code)"),
        Just("$x/prerequisites/pre_code"),
        Just("$x/*"),
        Just("$x/self::course"),
        Just("$x/prerequisites union $x/self::course"),
        Just("$x/id(./prerequisites/pre_code) except $x/self::course"),
        Just("($x/self::course, $x/id(./prerequisites/pre_code))"),
        // Outside the algebraic subset (predicates / position):
        Just("$x/id(./prerequisites/pre_code)[@code]"),
        Just("$x/*[exists(./pre_code)]"),
        Just("($x/id(./prerequisites/pre_code))[position() <= 3]"),
        // Non-distributive (count over the whole accumulator):
        Just("if (count($x) > 1) then $x/self::course else $x/id(./prerequisites/pre_code)"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid grid point ≡ the Naïve/source-level per-seed oracle,
    /// and Auto's choice is (a) a valid grid point and (b) also ≡ oracle.
    #[test]
    fn every_grid_point_matches_the_oracle(
        courses in 2usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
        seed_picks in proptest::collection::vec(0usize..8, 1..6),
        wide in 0usize..60,
        chain in 0usize..10,
        body in body_pool(),
    ) {
        let xml = curriculum_xml(courses, &edges, wide, chain);
        let query = format!("with $x seeded by $seed recurse {body}");
        let mut engine = engine_for(&xml);
        let courses_seq = all_courses(&mut engine);
        let seeds = Sequence::from_nodes(
            seed_picks
                .iter()
                .map(|&i| courses_seq.nodes()[i % courses_seq.len()])
                .collect::<Vec<_>>(),
        );

        // The oracle: forced Naïve, source-level, one execution per seed.
        let oracle_prepared = engine
            .prepare(&query)
            .unwrap()
            .with_backend(Backend::SourceLevel);
        let analysis = engine.prepare(&query).unwrap();
        let distributive = analysis.distributivity()[0].is_distributive();
        let algebraic = analysis.occurrences()[0].is_algebraic_capable();
        let oracle = {
            let mut e = engine_for(&xml);
            e.set_strategy(Strategy::Naive);
            let p = e.prepare(&query).unwrap().with_backend(Backend::SourceLevel);
            per_seed_signatures(&p, &mut e, &seeds)
        };
        drop(oracle_prepared);

        // Every valid forced grid point must reproduce the oracle, both one
        // fixpoint per seed and batched.
        let mut strategies = vec![Strategy::Naive];
        if distributive {
            strategies.push(Strategy::Delta);
        }
        let mut backends = vec![Backend::SourceLevel];
        if algebraic {
            backends.push(Backend::Algebraic);
        }
        for &strategy in &strategies {
            for &backend in &backends {
                let mut e = engine_for(&xml);
                e.set_strategy(strategy);
                let p = e.prepare(&query).unwrap().with_backend(backend);
                let per_seed = per_seed_signatures(&p, &mut e, &seeds);
                prop_assert_eq!(
                    &per_seed, &oracle,
                    "{:?}/{:?}/per-seed diverged from oracle on body {}",
                    strategy, backend, body
                );
                let batched = batched_signatures(&p, &mut e, &seeds);
                prop_assert_eq!(
                    &batched, &oracle,
                    "{:?}/{:?}/batched diverged from oracle on body {}",
                    strategy, backend, body
                );
            }
        }

        // Auto: the cost model may pick any valid grid point — and nothing
        // outside it — and must reproduce the oracle too.
        let mut e = engine_for(&xml);
        e.set_strategy(Strategy::Auto);
        let p = e.prepare(&query).unwrap().with_backend(Backend::Auto);
        let auto_per_seed = per_seed_signatures(&p, &mut e, &seeds);
        prop_assert_eq!(&auto_per_seed, &oracle, "Auto/per-seed diverged on body {}", body);
        let auto_batch = p
            .execute_batched(&mut e, "seed", &seeds, &Bindings::new())
            .unwrap();
        let auto_batched: Vec<(usize, String)> = auto_batch
            .per_seed
            .iter()
            .map(|seq| signature(&e, seq))
            .collect();
        prop_assert_eq!(&auto_batched, &oracle, "Auto/batched diverged on body {}", body);
        for plan in &auto_batch.outcome.occurrences {
            prop_assert!(
                plan.strategy == FixpointStrategy::Naive || distributive,
                "Auto chose Delta for a non-distributive body {}",
                body
            );
            prop_assert!(
                plan.backend == FixpointBackendTag::Interpreted || algebraic,
                "Auto chose the algebraic back-end for an uncompilable body {}",
                body
            );
        }
    }
}

/// Auto's decision report is drawn from the valid grid on a fixed document
/// too (a deterministic, non-proptest entry point for quick runs).
#[test]
fn auto_decision_is_a_valid_grid_point() {
    let xml = curriculum_xml(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 10, 4);
    let mut engine = engine_for(&xml);
    engine.set_strategy(Strategy::Auto);
    let prepared = engine
        .prepare("with $x seeded by $seed recurse $x/id(./prerequisites/pre_code)")
        .unwrap()
        .with_backend(Backend::Auto);
    let seeds = all_courses(&mut engine);
    let batch = prepared
        .execute_batched(&mut engine, "seed", &seeds, &Bindings::new())
        .unwrap();
    assert!(batch.batched);
    let plan = &batch.outcome.occurrences[0];
    // The body is distributive and batch-capable: any grid point is legal,
    // and the report must carry the decision provenance and costs.
    assert_eq!(plan.strategy, FixpointStrategy::Delta);
    assert!(plan.batched);
    assert!(plan.estimated_cost_micros > 0);
    assert!(plan.observed_cost_micros.is_some());
}
