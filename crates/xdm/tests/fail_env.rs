//! The `XQY_FAULTS` environment path of `xqy_xdm::fail`, which must be
//! pinned from a process where no other code has touched the failpoint
//! API first: the spec is parsed lazily by the *first* `point()` call,
//! and a regression here (e.g. a disabled fast path that never reaches
//! the parser) is invisible to tests that arm sites programmatically.
//! Integration tests get their own process, and this file holds exactly
//! one test, so the set-env-then-first-use ordering is deterministic.

use xqy_xdm::fail;

#[test]
fn env_spec_arms_failpoints_without_any_programmatic_call() {
    // Safe here: one test, one thread, set before any fail:: use.
    std::env::set_var("XQY_FAULTS", "env.site=error@2; env.panic=panic@1");

    // First use ever in this process: the fast path must initialize the
    // registry (parsing the env spec) rather than short-circuit to "no
    // faults armed".
    assert!(fail::point("env.site").is_ok(), "hit 1 of 2 must pass");
    let err = fail::point("env.site").expect_err("hit 2 must fire from the env spec");
    assert_eq!(err.site, "env.site");
    assert_eq!(err.hit, 2);

    let caught = std::panic::catch_unwind(|| fail::point_panic("env.panic"));
    let payload = caught.expect_err("panic action must fire from the env spec");
    let message = payload
        .downcast_ref::<String>()
        .expect("injected panics carry a string payload");
    assert!(message.contains("injected fault at env.panic"));

    let fired = fail::fired_sites();
    assert!(fired.contains(&"env.site".to_string()), "got {fired:?}");
    assert!(fired.contains(&"env.panic".to_string()), "got {fired:?}");
    fail::reset();
}
