//! Approximate memory accounting for per-query resource budgets.
//!
//! A [`QueryBudget`] is a shared counter of *approximate bytes allocated on
//! behalf of one query*.  Growth points in the engine charge it as they
//! materialise data — new text payloads interned into the
//! [`TextPool`](crate::intern::TextPool), bulk
//! [`Sequence`](crate::Sequence) construction, node creation in the store
//! arena, and column allocation in the relational executor — and the
//! fixpoint drivers *check* it at their existing per-iteration barriers, so
//! a query that blows its budget aborts between iterations, never
//! mid-mutation.
//!
//! The accounting is deliberately approximate: it exists to stop runaway
//! accumulators (Koch's complexity results make unbounded intermediate
//! results inherent to the workload), not to audit the allocator.  Charges
//! flow through a thread-local handle installed for the duration of a query
//! ([`install`]); when no budget is installed every charge is a no-op, and
//! the shard helpers propagate the installed budget into worker threads so
//! parallel fixpoint evaluation charges the same counter.
//!
//! Before failing, a budget grants one round of **relief**
//! ([`QueryBudget::try_relieve`]): the checking driver drops recomputable
//! caches (string-value memos, static plan-result tables), credits the
//! freed estimate back, and retries the check — graceful degradation ahead
//! of a typed `BudgetExceeded` error.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared byte-accounting cell for a single query run.
#[derive(Debug)]
pub struct QueryBudget {
    limit: u64,
    charged: AtomicU64,
    relieved: AtomicBool,
}

impl QueryBudget {
    /// A budget allowing approximately `limit` bytes of materialised data.
    pub fn new(limit: u64) -> Arc<Self> {
        Arc::new(QueryBudget {
            limit,
            charged: AtomicU64::new(0),
            relieved: AtomicBool::new(false),
        })
    }

    /// Record `bytes` of growth.
    #[inline]
    pub fn charge(&self, bytes: u64) {
        self.charged.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Return `bytes` to the budget (saturating at zero), used when relief
    /// frees a cache whose contents had been charged.
    pub fn credit(&self, bytes: u64) {
        let mut cur = self.charged.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.charged.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Approximate bytes charged so far.
    pub fn used(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// `Some(used)` when the budget is currently exceeded.
    pub fn over_limit(&self) -> Option<u64> {
        let used = self.used();
        (used > self.limit).then_some(used)
    }

    /// Claim the single relief round.  The first caller gets `true` and
    /// should degrade (drop memos/caches, credit the freed bytes, fall back
    /// to sequential evaluation) before re-checking; later callers get
    /// `false` and should fail with `BudgetExceeded`.
    pub fn try_relieve(&self) -> bool {
        !self.relieved.swap(true, Ordering::Relaxed)
    }

    /// Whether relief has been claimed (degradation happened).
    pub fn relieved(&self) -> bool {
        self.relieved.load(Ordering::Relaxed)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<QueryBudget>>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previously installed budget (if any) on drop.
#[derive(Debug)]
pub struct BudgetScope {
    prev: Option<Arc<QueryBudget>>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Install `budget` as this thread's active accounting cell for the
/// lifetime of the returned scope.
pub fn install(budget: Arc<QueryBudget>) -> BudgetScope {
    ACTIVE.with(|a| BudgetScope {
        prev: a.borrow_mut().replace(budget),
    })
}

/// The budget installed on this thread, if any (shard workers re-install
/// the spawning thread's budget so charges flow to the same cell).
pub fn current() -> Option<Arc<QueryBudget>> {
    ACTIVE.with(|a| a.borrow().clone())
}

/// Charge `bytes` against the installed budget; free when none is.
#[inline]
pub fn charge(bytes: u64) {
    ACTIVE.with(|a| {
        if let Some(b) = a.borrow().as_ref() {
            b.charge(bytes);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_credit_and_limits() {
        let b = QueryBudget::new(100);
        b.charge(60);
        assert_eq!(b.used(), 60);
        assert_eq!(b.over_limit(), None);
        b.charge(60);
        assert_eq!(b.over_limit(), Some(120));
        b.credit(200); // saturates
        assert_eq!(b.used(), 0);
        assert!(b.try_relieve());
        assert!(!b.try_relieve(), "relief is single-shot");
        assert!(b.relieved());
    }

    #[test]
    fn thread_local_install_is_scoped() {
        assert!(current().is_none());
        charge(10); // no-op without an installed budget
        let b = QueryBudget::new(1000);
        {
            let _scope = install(Arc::clone(&b));
            charge(25);
            charge(17);
            {
                // Nested install shadows and restores.
                let inner = QueryBudget::new(10);
                let _scope2 = install(Arc::clone(&inner));
                charge(5);
                assert_eq!(inner.used(), 5);
            }
            charge(1);
        }
        assert_eq!(b.used(), 43);
        assert!(current().is_none());
        charge(99); // dropped on the floor again
        assert_eq!(b.used(), 43);
    }

    #[test]
    fn budget_crosses_threads_via_arc() {
        let b = QueryBudget::new(u64::MAX);
        let b2 = Arc::clone(&b);
        std::thread::spawn(move || {
            let _scope = install(b2);
            charge(7);
        })
        .join()
        .unwrap();
        assert_eq!(b.used(), 7);
    }
}
