//! A minimal scoped-thread shard pool for the parallel fixpoint drivers.
//!
//! The batched fixpoint loops of `xqy_eval` / `xqy_algebra` are built from
//! embarrassingly parallel per-seed (and per-bitmap-word) phases separated
//! by an iteration barrier.  This module provides the two splitting
//! primitives they need, on plain [`std::thread::scope`] — no vendored
//! thread-pool crate, no global state, no work stealing.  Threads are
//! spawned per call; the drivers only shard phases whose work comfortably
//! dwarfs thread spawn cost, and callers pass `threads <= 1` to run the
//! exact sequential code path (the parallelism gate the engine's
//! `Parallelism::Sequential` default relies on).
//!
//! Results are returned **in shard order**, so a sharded phase composes
//! deterministically: splitting, processing and re-concatenating preserves
//! the sequential output exactly when the per-item work is itself
//! deterministic.

/// Split `items` into at most `threads` contiguous shards and run `f` on
/// each shard (`f(shard_index, shard)`) — concurrently when `threads > 1`,
/// inline otherwise.  Returns the per-shard results in shard order.
///
/// With `threads <= 1` (or a single item) this is exactly
/// `vec![f(0, items)]` on the calling thread: no threads are spawned and
/// the sequential code path is reproduced verbatim.
pub fn for_each_shard<T: Send, R: Send>(
    threads: usize,
    items: &mut [T],
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let shards = threads.min(items.len()).max(1);
    if shards <= 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(shards);
    let budget = crate::budget::current();
    std::thread::scope(|scope| {
        let f = &f;
        let budget = &budget;
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(idx, shard)| {
                scope.spawn(move || {
                    let _budget = budget.clone().map(crate::budget::install);
                    crate::fail::point_panic("shard.worker");
                    f(idx, shard)
                })
            })
            .collect();
        handles.into_iter().map(join_shard).collect()
    })
}

/// Map `f` over `items` in at most `threads` contiguous shards, returning
/// the per-item results **in input order** (a parallel `iter().map()`).
///
/// With `threads <= 1` no threads are spawned and this is a plain
/// sequential map.
pub fn map_sharded<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let shards = threads.min(items.len()).max(1);
    if shards <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(shards);
    let budget = crate::budget::current();
    std::thread::scope(|scope| {
        let f = &f;
        let budget = &budget;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let _budget = budget.clone().map(crate::budget::install);
                    crate::fail::point_panic("shard.worker");
                    shard.iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| join_shard(h)).collect()
    })
}

/// Run `f` over matching contiguous shards of two equal-length slices
/// (`f(left_shard, right_shard)`), concurrently when `threads > 1`.
/// Returns per-shard results in shard order.  This is the word-sharding
/// primitive of the [`crate::NodeSet`] kernels: `left` is the mutated
/// bitmap, `right` the operand's matching word range.
pub fn zip_shards<A: Send, B: Sync, R: Send>(
    threads: usize,
    left: &mut [A],
    right: &[B],
    f: impl Fn(&mut [A], &[B]) -> R + Sync,
) -> Vec<R> {
    debug_assert_eq!(left.len(), right.len());
    let shards = threads.min(left.len()).max(1);
    if shards <= 1 {
        return vec![f(left, right)];
    }
    let chunk = left.len().div_ceil(shards);
    let budget = crate::budget::current();
    std::thread::scope(|scope| {
        let f = &f;
        let budget = &budget;
        let handles: Vec<_> = left
            .chunks_mut(chunk)
            .zip(right.chunks(chunk))
            .map(|(a, b)| {
                scope.spawn(move || {
                    let _budget = budget.clone().map(crate::budget::install);
                    crate::fail::point_panic("shard.worker");
                    f(a, b)
                })
            })
            .collect();
        handles.into_iter().map(join_shard).collect()
    })
}

/// Join a shard, re-raising a shard panic on the calling thread so a
/// failed parallel phase aborts the whole fixpoint run instead of
/// silently dropping a shard's contribution.  The re-raised panic then
/// unwinds to the nearest containment boundary — in the service, the
/// `catch_unwind` wrapping per-query execution, which converts it into a
/// typed `ServiceError::Internal` instead of letting it cross the API.
fn join_shard<R>(handle: std::thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(result) => result,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_shard_preserves_order_and_covers_all_items() {
        for threads in [0, 1, 2, 3, 8, 100] {
            let mut items: Vec<u32> = (0..23).collect();
            let sums = for_each_shard(threads, &mut items, |_, shard| {
                for item in shard.iter_mut() {
                    *item *= 2;
                }
                shard.iter().sum::<u32>()
            });
            assert_eq!(items, (0..23).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(sums.iter().sum::<u32>(), (0..23).sum::<u32>() * 2);
            if threads <= 1 {
                assert_eq!(sums.len(), 1);
            }
        }
    }

    #[test]
    fn map_sharded_matches_sequential_map() {
        let items: Vec<u32> = (0..57).collect();
        let expected: Vec<u32> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 5, 64] {
            assert_eq!(map_sharded(threads, &items, |&i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(for_each_shard(8, &mut empty, |_, s| s.len()), vec![0]);
        assert_eq!(map_sharded(8, &[42u8], |&b| b), vec![42]);
    }

    #[test]
    fn zip_shards_pairs_matching_ranges() {
        for threads in [0, 1, 2, 3, 16] {
            let mut left: Vec<u64> = (0..41).collect();
            let right: Vec<u64> = (0..41).map(|i| i * 10).collect();
            let sums = zip_shards(threads, &mut left, &right, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a.len()
            });
            assert_eq!(left, (0..41).map(|i| i * 11).collect::<Vec<_>>());
            assert_eq!(sums.iter().sum::<usize>(), 41);
        }
    }

    #[test]
    fn shard_indexes_are_contiguous() {
        let mut items: Vec<u8> = vec![0; 10];
        let mut idxs = for_each_shard(4, &mut items, |idx, _| idx);
        idxs.sort_unstable();
        assert_eq!(idxs, (0..idxs.len()).collect::<Vec<_>>());
    }
}
