//! String interning: map strings to dense, `Copy` integer symbols.
//!
//! The relational executor compares, joins and deduplicates on string
//! values constantly — attribute values, `string()` results, literals.
//! Carrying those as `String` cells means every probe allocates and every
//! comparison walks bytes.  An [`Interner`] assigns each distinct string a
//! stable [`StrId`] once; afterwards equality is an integer compare and a
//! table cell is a `Copy` word.
//!
//! The pool only ever grows (symbols stay valid for the interner's whole
//! lifetime), which is exactly the lifetime story of a prepared query's
//! executor: strings interned while evaluating one seed are still valid —
//! and already cached — for every later seed of a per-item loop.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// A symbol: the dense id of an interned string.
///
/// Only meaningful together with the [`Interner`] (or [`TextPool`]) that
/// produced it; two `StrId`s from the same pool are equal iff their strings
/// are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// Process-wide source of [`TextPool::pool_id`] values.  Pool ids being
/// globally unique means equal ids imply one linear growth history: a cache
/// translating another pool's symbols can never be fooled by a different
/// pool that happens to have interned the same number of strings.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_pool_id() -> u64 {
    NEXT_POOL_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A grow-only, `Arc`-shared string pool for node text payloads.
///
/// This is the store-owned variant of [`Interner`]: cloning a `TextPool` is
/// O(1) (the clone shares the backing storage), which is what makes cloning
/// a whole [`NodeStore`](crate::NodeStore) — the service layer's
/// `publish()` — cheap even when documents carry megabytes of text.  The
/// first `intern` *after* a shared clone deep-copies the storage once
/// (`Arc::make_mut`), so diverging copies pay for their own growth and only
/// they do.
///
/// # Pool identity
///
/// Every pool carries a globally unique [`pool_id`](TextPool::pool_id).
/// The id is kept across private growth but **replaced** whenever an intern
/// grows the pool while its storage is still shared: the id therefore names
/// one linear growth history, so for two pools with equal ids every symbol
/// they both know resolves to the same string.  Consumers caching per-pool
/// symbol translations (the algebraic executor) key on the id and compare
/// it to detect divergence.
#[derive(Debug, Clone)]
pub struct TextPool {
    /// Lookup map; shares the `Arc<str>` storage with `strings`.
    map: Arc<HashMap<Arc<str>, u32>>,
    /// `strings[id]` is the string of `StrId(id)`.
    strings: Arc<Vec<Arc<str>>>,
    /// Globally unique identity of this pool's growth history.
    pool_id: u64,
}

impl Default for TextPool {
    fn default() -> Self {
        TextPool::new()
    }
}

impl TextPool {
    /// An empty pool with a fresh identity.
    pub fn new() -> Self {
        TextPool {
            map: Arc::new(HashMap::new()),
            strings: Arc::new(Vec::new()),
            pool_id: fresh_pool_id(),
        }
    }

    /// The pool's globally unique identity (see the type docs).
    pub fn pool_id(&self) -> u64 {
        self.pool_id
    }

    /// `true` when `self` and `other` share the same backing storage
    /// (i.e. one is an O(1) clone of the other and neither has grown).
    pub fn shares_storage_with(&self, other: &TextPool) -> bool {
        Arc::ptr_eq(&self.strings, &other.strings)
    }

    /// Intern `s`, returning its symbol (allocating only on first sight).
    ///
    /// Growing a pool whose storage is still shared with clones first
    /// deep-copies the storage and takes a fresh [`pool_id`](TextPool::pool_id)
    /// — the clones keep the old identity, this pool starts a new one.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.map.get(s) {
            return StrId(id);
        }
        if Arc::strong_count(&self.strings) > 1 || Arc::strong_count(&self.map) > 1 {
            self.pool_id = fresh_pool_id();
        }
        let strings = Arc::make_mut(&mut self.strings);
        let map = Arc::make_mut(&mut self.map);
        let id = strings.len() as u32;
        // First sight of this payload: charge the bytes plus the map/vec
        // entry overhead against any installed per-query budget.
        crate::budget::charge(s.len() as u64 + 48);
        let owned: Arc<str> = Arc::from(s);
        strings.push(owned.clone());
        map.insert(owned, id);
        StrId(id)
    }

    /// The symbol of `s`, if it has been interned (never allocates).
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.map.get(s).map(|&id| StrId(id))
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this pool (or a clone of it).
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// The shared `Arc<str>` behind `id` — the zero-copy handle atomized
    /// values carry.
    ///
    /// # Panics
    /// Panics if `id` did not come from this pool (or a clone of it).
    pub fn resolve_arc(&self, id: StrId) -> &Arc<str> {
        &self.strings[id.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A grow-only string pool assigning each distinct string one [`StrId`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Lookup map; shares the `Arc<str>` storage with `strings`.
    map: HashMap<Arc<str>, u32>,
    /// `strings[id]` is the string of `StrId(id)`.
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its symbol (allocating only on first sight).
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.map.get(s) {
            return StrId(id);
        }
        let id = self.strings.len() as u32;
        let owned: Arc<str> = Arc::from(s);
        self.strings.push(owned.clone());
        self.map.insert(owned, id);
        StrId(id)
    }

    /// The symbol of `s`, if it has been interned (never allocates).
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.map.get(s).map(|&id| StrId(id))
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut pool = Interner::new();
        let a = pool.intern("alpha");
        let b = pool.intern("beta");
        assert_ne!(a, b);
        assert_eq!(pool.intern("alpha"), a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), "alpha");
        assert_eq!(pool.resolve(b), "beta");
    }

    #[test]
    fn get_never_interns() {
        let mut pool = Interner::new();
        assert!(pool.get("x").is_none());
        let x = pool.intern("x");
        assert_eq!(pool.get("x"), Some(x));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_and_distinct_strings() {
        let mut pool = Interner::new();
        assert!(pool.is_empty());
        let empty = pool.intern("");
        assert_eq!(pool.resolve(empty), "");
        assert!(!pool.is_empty());
    }

    #[test]
    fn text_pool_clone_is_shared_until_growth() {
        let mut pool = TextPool::new();
        let a = pool.intern("alpha");
        assert_eq!(pool.intern("alpha"), a);

        let clone = pool.clone();
        assert!(clone.shares_storage_with(&pool));
        assert_eq!(clone.pool_id(), pool.pool_id());
        assert_eq!(clone.resolve(a), "alpha");

        // Re-interning an existing string never diverges.
        let mut clone2 = clone.clone();
        assert_eq!(clone2.intern("alpha"), a);
        assert!(clone2.shares_storage_with(&pool));
        assert_eq!(clone2.pool_id(), pool.pool_id());

        // Growing while shared deep-copies and takes a fresh identity; the
        // original keeps its storage, id and symbols.
        let old_id = pool.pool_id();
        let b = clone2.intern("beta");
        assert!(!clone2.shares_storage_with(&pool));
        assert_ne!(clone2.pool_id(), old_id);
        assert_eq!(pool.pool_id(), old_id);
        assert_eq!(pool.get("beta"), None);
        assert_eq!(clone2.resolve(a), "alpha");
        assert_eq!(clone2.resolve(b), "beta");
    }

    #[test]
    fn text_pool_private_growth_keeps_identity() {
        let mut pool = TextPool::new();
        let id = pool.pool_id();
        pool.intern("x");
        pool.intern("y");
        assert_eq!(pool.pool_id(), id, "sole owner keeps its linear history");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn distinct_pools_have_distinct_identities() {
        assert_ne!(TextPool::new().pool_id(), TextPool::new().pool_id());
    }

    #[test]
    fn resolve_arc_is_the_shared_payload() {
        let mut pool = TextPool::new();
        let a = pool.intern("payload");
        let arc1 = pool.resolve_arc(a).clone();
        let arc2 = pool.resolve_arc(a).clone();
        assert!(Arc::ptr_eq(&arc1, &arc2));
        assert_eq!(&*arc1, "payload");
    }
}
