//! String interning: map strings to dense, `Copy` integer symbols.
//!
//! The relational executor compares, joins and deduplicates on string
//! values constantly — attribute values, `string()` results, literals.
//! Carrying those as `String` cells means every probe allocates and every
//! comparison walks bytes.  An [`Interner`] assigns each distinct string a
//! stable [`StrId`] once; afterwards equality is an integer compare and a
//! table cell is a `Copy` word.
//!
//! The pool only ever grows (symbols stay valid for the interner's whole
//! lifetime), which is exactly the lifetime story of a prepared query's
//! executor: strings interned while evaluating one seed are still valid —
//! and already cached — for every later seed of a per-item loop.

use std::collections::HashMap;
use std::sync::Arc;

/// A symbol: the dense id of an interned string.
///
/// Only meaningful together with the [`Interner`] that produced it; two
/// `StrId`s from the same interner are equal iff their strings are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// A grow-only string pool assigning each distinct string one [`StrId`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Lookup map; shares the `Arc<str>` storage with `strings`.
    map: HashMap<Arc<str>, u32>,
    /// `strings[id]` is the string of `StrId(id)`.
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its symbol (allocating only on first sight).
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.map.get(s) {
            return StrId(id);
        }
        let id = self.strings.len() as u32;
        let owned: Arc<str> = Arc::from(s);
        self.strings.push(owned.clone());
        self.map.insert(owned, id);
        StrId(id)
    }

    /// The symbol of `s`, if it has been interned (never allocates).
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.map.get(s).map(|&id| StrId(id))
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut pool = Interner::new();
        let a = pool.intern("alpha");
        let b = pool.intern("beta");
        assert_ne!(a, b);
        assert_eq!(pool.intern("alpha"), a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), "alpha");
        assert_eq!(pool.resolve(b), "beta");
    }

    #[test]
    fn get_never_interns() {
        let mut pool = Interner::new();
        assert!(pool.get("x").is_none());
        let x = pool.intern("x");
        assert_eq!(pool.get("x"), Some(x));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_and_distinct_strings() {
        let mut pool = Interner::new();
        assert!(pool.is_empty());
        let empty = pool.intern("");
        assert_eq!(pool.resolve(empty), "");
        assert!(!pool.is_empty());
    }
}
