//! XML serialization of nodes and subtrees.

use crate::node::{NodeId, NodeKind};
use crate::store::NodeStore;

/// Serialize the subtree rooted at `node` to XML text.
///
/// Attribute values and character data are escaped; document nodes serialize
/// as the concatenation of their children.
pub fn serialize_node(store: &NodeStore, node: NodeId) -> String {
    let mut out = String::new();
    write_node(store, node, &mut out);
    out
}

fn write_node(store: &NodeStore, node: NodeId, out: &mut String) {
    match store.kind(node) {
        NodeKind::Document => {
            for child in store.children(node) {
                write_node(store, child, out);
            }
        }
        NodeKind::Element(name) => {
            out.push('<');
            out.push_str(&name.to_string());
            for attr in store.attributes(node) {
                if let NodeKind::Attribute(aname, value) = store.kind(attr) {
                    out.push(' ');
                    out.push_str(&aname.to_string());
                    out.push_str("=\"");
                    out.push_str(&escape_attribute(store.resolve_text(*value)));
                    out.push('"');
                }
            }
            let children = store.children(node);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for child in children {
                    write_node(store, child, out);
                }
                out.push_str("</");
                out.push_str(&name.to_string());
                out.push('>');
            }
        }
        NodeKind::Attribute(name, value) => {
            // A bare attribute node serializes as name="value".
            out.push_str(&name.to_string());
            out.push_str("=\"");
            out.push_str(&escape_attribute(store.resolve_text(*value)));
            out.push('"');
        }
        NodeKind::Text(text) => out.push_str(&escape_text(store.resolve_text(*text))),
        NodeKind::Comment(text) => {
            out.push_str("<!--");
            out.push_str(store.resolve_text(*text));
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction(target, content) => {
            let content = store.resolve_text(*content);
            out.push_str("<?");
            out.push_str(store.resolve_text(*target));
            if !content.is_empty() {
                out.push(' ');
                out.push_str(content);
            }
            out.push_str("?>");
        }
    }
}

/// Escape character data (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escape an attribute value (`&`, `<`, `"`).
pub fn escape_attribute(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_simple_markup() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<a x=\"1\"><b>text</b><c/></a>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(
            serialize_node(&store, root),
            "<a x=\"1\"><b>text</b><c/></a>"
        );
    }

    #[test]
    fn escapes_special_characters() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<a x=\"a &amp; b\">1 &lt; 2</a>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(
            serialize_node(&store, root),
            "<a x=\"a &amp; b\">1 &lt; 2</a>"
        );
    }

    #[test]
    fn document_node_serializes_children() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<a><!-- c --><b/></a>").unwrap();
        let docnode = store.document_node(doc).unwrap();
        assert_eq!(serialize_node(&store, docnode), "<a><!-- c --><b/></a>");
    }

    #[test]
    fn parse_serialize_roundtrip_is_stable() {
        let mut store = NodeStore::new();
        let text = "<r><a id=\"1\"><b/>mixed<c k=\"v\">x</c></a></r>";
        let doc = store.parse_document(text).unwrap();
        let root = store.document_element(doc).unwrap();
        let once = serialize_node(&store, root);
        let doc2 = store.parse_document(&once).unwrap();
        let root2 = store.document_element(doc2).unwrap();
        let twice = serialize_node(&store, root2);
        assert_eq!(once, twice);
    }
}
