//! Node handles, node kinds, axes and node tests.

use std::fmt;

use crate::intern::StrId;

/// A (possibly prefixed) XML name.
///
/// Namespace support in this engine is intentionally minimal — the queries of
/// the reproduced paper operate on un-namespaced documents — but prefixes are
/// preserved so that serialization round-trips.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Optional prefix (the part before `:`).
    pub prefix: Option<String>,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// Create a name without a prefix.
    pub fn local(name: impl Into<String>) -> Self {
        QName {
            prefix: None,
            local: name.into(),
        }
    }

    /// Parse a lexical QName of the form `local` or `prefix:local`.
    pub fn parse(lexical: &str) -> Self {
        match lexical.split_once(':') {
            Some((p, l)) => QName {
                prefix: Some(p.to_string()),
                local: l.to_string(),
            },
            None => QName::local(lexical),
        }
    }

    /// `true` if this name matches `other` ignoring prefixes (namespace-free
    /// matching, which is what the benchmark queries require).
    pub fn matches_local(&self, local: &str) -> bool {
        self.local == local
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{}:{}", p, self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

/// Identifier of a node inside a [`NodeStore`](crate::NodeStore).
///
/// A `NodeId` is a pair of the owning document's index and the node's index
/// inside that document's arena.  It is `Copy`, `Ord` and `Hash`, and the
/// derived ordering **is not** document order — use
/// [`NodeStore::doc_order`](crate::NodeStore::doc_order) for that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Index of the owning document in the store.
    pub doc: u32,
    /// Index of the node within the document arena.
    pub node: u32,
}

impl NodeId {
    /// Construct a node id from raw parts.
    pub fn new(doc: u32, node: u32) -> Self {
        NodeId { doc, node }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.doc, self.node)
    }
}

/// The kind of a node, together with kind-specific payload.
///
/// Text-shaped payloads (attribute values, text/comment content, PI targets
/// and content) are interned into the owning store's text pool at creation
/// time and carried here as [`StrId`] symbols — resolve them through
/// [`NodeStore::resolve_text`](crate::NodeStore::resolve_text) (or the
/// higher-level `string_value_ref` / `attribute_value` accessors).  This is
/// what makes `string_value` of leaf nodes a borrow instead of a clone.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The document node (root of a parsed document).
    Document,
    /// An element node with its name.
    Element(QName),
    /// An attribute node with name and interned string value.
    Attribute(QName, StrId),
    /// A text node (interned content).
    Text(StrId),
    /// A comment node (interned content).
    Comment(StrId),
    /// A processing instruction with interned target and content.
    ProcessingInstruction(StrId, StrId),
}

impl NodeKind {
    /// Short name of the kind (used in error messages and `node-kind()`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Document => "document",
            NodeKind::Element(_) => "element",
            NodeKind::Attribute(_, _) => "attribute",
            NodeKind::Text(_) => "text",
            NodeKind::Comment(_) => "comment",
            NodeKind::ProcessingInstruction(_, _) => "processing-instruction",
        }
    }

    /// The node's name, if it has one.
    pub fn name(&self) -> Option<&QName> {
        match self {
            NodeKind::Element(n) | NodeKind::Attribute(n, _) => Some(n),
            _ => None,
        }
    }

    /// `true` for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element(_))
    }

    /// `true` for attribute nodes.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute(_, _))
    }

    /// `true` for text nodes.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// XPath axes supported by the engine.
///
/// These cover everything the paper's queries and the Regular XPath fragment
/// need: the vertical axes (`child`, `descendant`, `parent`, `ancestor`,
/// plus their `-or-self` variants), the horizontal sibling axes, the global
/// `following` / `preceding` axes, and `attribute` / `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The children of the context node, in document order.
    Child,
    /// All descendants (children, their children, ...).
    Descendant,
    /// The context node followed by its descendants.
    DescendantOrSelf,
    /// The parent node, if any.
    Parent,
    /// All ancestors up to and including the document node.
    Ancestor,
    /// The context node followed by its ancestors.
    AncestorOrSelf,
    /// Siblings after the context node, in document order.
    FollowingSibling,
    /// Siblings before the context node, in reverse document order.
    PrecedingSibling,
    /// All nodes after the context node in document order (excluding
    /// descendants and attributes).
    Following,
    /// All nodes before the context node in document order (excluding
    /// ancestors and attributes).
    Preceding,
    /// The attributes of the context node.
    Attribute,
    /// The context node itself.
    SelfAxis,
}

impl Axis {
    /// `true` if the axis yields nodes in reverse document order.
    pub fn is_reverse(&self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    /// The axis name as written in XPath.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::Attribute => "attribute",
            Axis::SelfAxis => "self",
        }
    }

    /// Parse an axis name (`child`, `descendant-or-self`, ...).
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "attribute" => Axis::Attribute,
            "self" => Axis::SelfAxis,
            _ => return None,
        })
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A node test, filtering the nodes produced by an axis step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `*` — any element (or any attribute on the attribute axis).
    AnyElement,
    /// A name test, e.g. `person` or `@id`.
    Name(String),
    /// `node()` — any node.
    AnyNode,
    /// `text()` — text nodes only.
    Text,
    /// `comment()` — comment nodes only.
    Comment,
    /// `processing-instruction()` — PI nodes only.
    ProcessingInstruction,
    /// `document-node()` — the document node.
    Document,
    /// `element(name)` — element with the given name (or any element when
    /// `None`).
    Element(Option<String>),
    /// `attribute(name)` — attribute with the given name (or any attribute
    /// when `None`).
    Attribute(Option<String>),
}

impl NodeTest {
    /// Does `kind` satisfy this node test when reached via `axis`?
    ///
    /// The *principal node kind* rule of XPath applies: on the `attribute`
    /// axis, name tests and `*` match attribute nodes; on every other axis
    /// they match element nodes.
    pub fn matches(&self, axis: Axis, kind: &NodeKind) -> bool {
        let principal_is_attribute = axis == Axis::Attribute;
        match self {
            NodeTest::AnyNode => true,
            NodeTest::Text => kind.is_text(),
            NodeTest::Comment => matches!(kind, NodeKind::Comment(_)),
            NodeTest::ProcessingInstruction => {
                matches!(kind, NodeKind::ProcessingInstruction(_, _))
            }
            NodeTest::Document => matches!(kind, NodeKind::Document),
            NodeTest::AnyElement => {
                if principal_is_attribute {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                }
            }
            NodeTest::Name(name) => {
                let principal = if principal_is_attribute {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                };
                principal && kind.name().map(|n| n.matches_local(name)).unwrap_or(false)
            }
            NodeTest::Element(name) => {
                kind.is_element()
                    && name
                        .as_ref()
                        .map(|n| kind.name().map(|q| q.matches_local(n)).unwrap_or(false))
                        .unwrap_or(true)
            }
            NodeTest::Attribute(name) => {
                kind.is_attribute()
                    && name
                        .as_ref()
                        .map(|n| kind.name().map(|q| q.matches_local(n)).unwrap_or(false))
                        .unwrap_or(true)
            }
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::AnyElement => write!(f, "*"),
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::AnyNode => write!(f, "node()"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Comment => write!(f, "comment()"),
            NodeTest::ProcessingInstruction => write!(f, "processing-instruction()"),
            NodeTest::Document => write!(f, "document-node()"),
            NodeTest::Element(Some(n)) => write!(f, "element({n})"),
            NodeTest::Element(None) => write!(f, "element()"),
            NodeTest::Attribute(Some(n)) => write!(f, "attribute({n})"),
            NodeTest::Attribute(None) => write!(f, "attribute()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_parse_and_display() {
        let plain = QName::parse("course");
        assert_eq!(plain.prefix, None);
        assert_eq!(plain.local, "course");
        assert_eq!(plain.to_string(), "course");

        let prefixed = QName::parse("xs:integer");
        assert_eq!(prefixed.prefix.as_deref(), Some("xs"));
        assert_eq!(prefixed.local, "integer");
        assert_eq!(prefixed.to_string(), "xs:integer");
    }

    #[test]
    fn axis_roundtrip_names() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::Attribute,
            Axis::SelfAxis,
        ] {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("no-such-axis"), None);
    }

    #[test]
    fn reverse_axes_are_flagged() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Descendant.is_reverse());
    }

    #[test]
    fn name_test_respects_principal_node_kind() {
        let elem = NodeKind::Element(QName::local("id"));
        let attr = NodeKind::Attribute(QName::local("id"), StrId(0));
        let test = NodeTest::Name("id".into());
        assert!(test.matches(Axis::Child, &elem));
        assert!(!test.matches(Axis::Child, &attr));
        assert!(test.matches(Axis::Attribute, &attr));
        assert!(!test.matches(Axis::Attribute, &elem));
    }

    #[test]
    fn wildcard_matches_elements_only_on_child_axis() {
        let elem = NodeKind::Element(QName::local("a"));
        let text = NodeKind::Text(StrId(0));
        assert!(NodeTest::AnyElement.matches(Axis::Child, &elem));
        assert!(!NodeTest::AnyElement.matches(Axis::Child, &text));
        assert!(NodeTest::AnyNode.matches(Axis::Child, &text));
    }

    #[test]
    fn kind_tests_match_their_kinds() {
        assert!(NodeTest::Text.matches(Axis::Child, &NodeKind::Text(StrId(0))));
        assert!(NodeTest::Comment.matches(Axis::Child, &NodeKind::Comment(StrId(0))));
        assert!(NodeTest::Document.matches(Axis::SelfAxis, &NodeKind::Document));
        assert!(NodeTest::Element(Some("a".into()))
            .matches(Axis::Child, &NodeKind::Element(QName::local("a"))));
        assert!(!NodeTest::Element(Some("a".into()))
            .matches(Axis::Child, &NodeKind::Element(QName::local("b"))));
        assert!(NodeTest::Attribute(None).matches(
            Axis::Attribute,
            &NodeKind::Attribute(QName::local("x"), StrId(0))
        ));
    }
}
