//! Node-set operations: `fs:ddo`, `union`, `except`, `intersect`,
//! set-equality and subset tests.
//!
//! These are the primitives the inflationary fixed point semantics of the
//! paper is written in (Definition 2.1 uses `union` and set-equality, the
//! Delta algorithm of Figure 3(b) additionally needs `except`).
//!
//! Large operands run on the bitset-backed [`NodeSet`] kernel: building the
//! sets is O(n) bit inserts, the set algebra itself is word-parallel, and
//! materializing back to a document-ordered `Vec<NodeId>` is a linear
//! bitmap scan on parsed documents (see [`NodeSet::to_vec`]).  The bitmap
//! for a document is sized by the highest arena index present, so for
//! *small* operands inside a large document the dense path would allocate
//! and scan far more than the operands warrant — those calls take a sparse
//! path instead (sort / nested scans over at most [`SPARSE_LIMIT`] ids).
//!
//! The fixpoint runtimes in `xqy_eval` / `xqy_algebra` keep their
//! accumulators as `NodeSet`s directly and bypass the slice round-trip
//! entirely; the slice API here serves the general evaluator (`union` /
//! `intersect` / `except` expressions, `fs:ddo`).
//!
//! The pre-`NodeSet` implementations (sort-based `ddo`, `HashSet` filters)
//! are preserved in [`baseline`] so the `nodeset` micro-benchmark can
//! quantify the difference; they are not used by the engine.

use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::store::NodeStore;

/// Operand-size threshold below which the slice operations use sparse
/// sort/scan algorithms instead of the dense bitmaps (whose cost scales
/// with the highest arena index present, not with the operand size).
pub const SPARSE_LIMIT: usize = 64;

/// `fs:distinct-doc-order` — sort into document order, drop duplicates.
pub fn ddo(store: &NodeStore, nodes: &[NodeId]) -> Vec<NodeId> {
    if nodes.len() <= 1 {
        // Zero- and one-element inputs are trivially distinct and ordered —
        // the per-node steps of a path expression hit this constantly.
        return nodes.to_vec();
    }
    if nodes.len() <= SPARSE_LIMIT {
        let mut out = nodes.to_vec();
        store.sort_distinct(&mut out);
        return out;
    }
    NodeSet::from_nodes(nodes.iter().copied()).to_vec(store)
}

/// Node-set union (`union` / `|`): all nodes of either operand, in document
/// order, without duplicates.
pub fn node_union(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    if a.len() + b.len() <= SPARSE_LIMIT {
        let mut out: Vec<NodeId> = Vec::with_capacity(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        store.sort_distinct(&mut out);
        return out;
    }
    let mut set = NodeSet::from_nodes(a.iter().copied());
    set.extend(b.iter().copied());
    set.to_vec(store)
}

/// Node-set difference (`except`): nodes of `a` not in `b`, in document order.
pub fn node_except(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    if a.len() + b.len() <= SPARSE_LIMIT {
        let filtered: Vec<NodeId> = a.iter().copied().filter(|n| !b.contains(n)).collect();
        return ddo(store, &filtered);
    }
    let mut set = NodeSet::from_nodes(a.iter().copied());
    set.except_in_place(&NodeSet::from_nodes(b.iter().copied()));
    set.to_vec(store)
}

/// Node-set intersection (`intersect`): nodes in both operands, in document
/// order.
pub fn intersect(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    if a.len() + b.len() <= SPARSE_LIMIT {
        let filtered: Vec<NodeId> = a.iter().copied().filter(|n| b.contains(n)).collect();
        return ddo(store, &filtered);
    }
    let mut set = NodeSet::from_nodes(a.iter().copied());
    set.intersect_in_place(&NodeSet::from_nodes(b.iter().copied()));
    set.to_vec(store)
}

/// Set-equality of two node sequences: equal as sets of node identities
/// (the paper's `fs:ddo(X1) = fs:ddo(X2)` — but identity sets need no
/// document order, so no store access and no sorting is required).
pub fn set_equal(a: &[NodeId], b: &[NodeId]) -> bool {
    if a.len() + b.len() <= SPARSE_LIMIT {
        // Mutual subset inclusion is set equality, duplicates and all.
        return a.iter().all(|n| b.contains(n)) && b.iter().all(|n| a.contains(n));
    }
    NodeSet::from_nodes(a.iter().copied()) == NodeSet::from_nodes(b.iter().copied())
}

/// `true` when every node of `a` also occurs in `b`.
pub fn is_subset(a: &[NodeId], b: &[NodeId]) -> bool {
    if a.len() + b.len() <= SPARSE_LIMIT {
        return a.iter().all(|n| b.contains(n));
    }
    let bset = NodeSet::from_nodes(b.iter().copied());
    a.iter().all(|&n| bset.contains(n))
}

pub mod baseline {
    //! The pre-`NodeSet` implementations, kept verbatim for the `nodeset`
    //! micro-benchmark (`crates/bench/benches/nodeset.rs`) to compare
    //! against.  Not used by the engine.

    use std::collections::HashSet;

    use crate::node::NodeId;
    use crate::store::NodeStore;

    /// Sort-based `fs:distinct-doc-order`.
    pub fn ddo(store: &NodeStore, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut out = nodes.to_vec();
        store.sort_distinct(&mut out);
        out
    }

    /// Concatenate-then-re-sort union.
    pub fn node_union(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::with_capacity(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        store.sort_distinct(&mut out);
        out
    }

    /// `HashSet`-filter difference with a `ddo` re-sort.
    pub fn node_except(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let bset: HashSet<NodeId> = b.iter().copied().collect();
        let filtered: Vec<NodeId> = a.iter().copied().filter(|n| !bset.contains(n)).collect();
        ddo(store, &filtered)
    }

    /// Double-`ddo` set-equality.
    pub fn set_equal(store: &NodeStore, a: &[NodeId], b: &[NodeId]) -> bool {
        ddo(store, a) == ddo(store, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Axis, NodeTest, QName};

    fn fixture(store: &mut NodeStore) -> Vec<NodeId> {
        let doc = store.parse_document("<r><a/><b/><c/><d/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement)
    }

    #[test]
    fn union_orders_and_dedups() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let left = vec![kids[2], kids[0]];
        let right = vec![kids[1], kids[0]];
        assert_eq!(
            node_union(&store, &left, &right),
            vec![kids[0], kids[1], kids[2]]
        );
    }

    #[test]
    fn union_with_duplicate_heavy_inputs_is_stable() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let left = vec![kids[3], kids[3], kids[1], kids[3], kids[1]];
        let right = vec![kids[1], kids[1], kids[1]];
        assert_eq!(node_union(&store, &left, &right), vec![kids[1], kids[3]]);
    }

    #[test]
    fn union_and_except_with_empty_operands() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let some = vec![kids[2], kids[0]];
        assert_eq!(node_union(&store, &some, &[]), vec![kids[0], kids[2]]);
        assert_eq!(node_union(&store, &[], &some), vec![kids[0], kids[2]]);
        assert!(node_union(&store, &[], &[]).is_empty());
        assert_eq!(node_except(&store, &some, &[]), vec![kids[0], kids[2]]);
        assert!(node_except(&store, &[], &some).is_empty());
        assert!(intersect(&store, &some, &[]).is_empty());
        assert!(set_equal(&[], &[]));
        assert!(!set_equal(&some, &[]));
    }

    #[test]
    fn except_removes_and_orders() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let all = kids.clone();
        let some = vec![kids[1], kids[3]];
        assert_eq!(node_except(&store, &all, &some), vec![kids[0], kids[2]]);
        assert!(node_except(&store, &some, &all).is_empty());
    }

    #[test]
    fn intersect_keeps_common_nodes() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let left = vec![kids[3], kids[0], kids[1]];
        let right = vec![kids[1], kids[3]];
        assert_eq!(intersect(&store, &left, &right), vec![kids[1], kids[3]]);
    }

    #[test]
    fn set_equality_and_subset() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let a = vec![kids[0], kids[1], kids[1]];
        let b = vec![kids[1], kids[0]];
        assert!(set_equal(&a, &b));
        assert!(!set_equal(&a, &kids));
        assert!(is_subset(&b, &kids));
        assert!(!is_subset(&kids, &b));
        assert!(is_subset(&[], &b));
    }

    #[test]
    fn ddo_is_idempotent() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let mixed = vec![kids[3], kids[1], kids[3], kids[0]];
        let once = ddo(&store, &mixed);
        let twice = ddo(&store, &once);
        assert_eq!(once, twice);
        assert_eq!(once, vec![kids[0], kids[1], kids[3]]);
    }

    #[test]
    fn cross_document_operands_order_by_document_creation() {
        let mut store = NodeStore::new();
        let k1 = fixture(&mut store);
        let k2 = fixture(&mut store);
        let mixed = vec![k2[1], k1[2], k2[0], k1[0]];
        assert_eq!(ddo(&store, &mixed), vec![k1[0], k1[2], k2[0], k2[1]]);
        assert_eq!(node_union(&store, &[k2[0]], &[k1[3]]), vec![k1[3], k2[0]]);
        assert_eq!(node_except(&store, &mixed, &k2), vec![k1[0], k1[2]]);
        assert!(!set_equal(&[k1[0]], &[k2[0]]));
    }

    #[test]
    fn document_order_stability_after_union_and_except_chains() {
        // Repeatedly applying union/except must keep results in document
        // order — the invariant the Delta loop's materializations rely on.
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let mut acc: Vec<NodeId> = Vec::new();
        for &k in kids.iter().rev() {
            acc = node_union(&store, &acc, &[k, k]);
            let ordered = ddo(&store, &acc);
            assert_eq!(acc, ordered, "union result left document order");
        }
        let removed = node_except(&store, &acc, &[kids[1]]);
        assert_eq!(removed, vec![kids[0], kids[2], kids[3]]);
        let ordered = ddo(&store, &removed);
        assert_eq!(removed, ordered, "except result left document order");
    }

    #[test]
    fn operations_on_constructed_fragments_still_order_correctly() {
        // Fragment built child-first: arena order != document order; the
        // slice API must still return document order.
        let mut store = NodeStore::new();
        let frag = store.new_fragment();
        let child = store.create_element(frag, QName::local("child"));
        let parent = store.create_element(frag, QName::local("parent"));
        store.append_child(parent, child).unwrap();
        assert_eq!(node_union(&store, &[child], &[parent]), vec![parent, child]);
        assert_eq!(ddo(&store, &[child, parent]), vec![parent, child]);
    }

    #[test]
    fn sparse_and_dense_paths_agree_across_the_threshold() {
        // Operand sizes straddling SPARSE_LIMIT must produce identical
        // results from the sparse and dense implementations.
        let mut store = NodeStore::new();
        let mut xml = String::from("<r>");
        for _ in 0..300 {
            xml.push_str("<c/>");
        }
        xml.push_str("</r>");
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let all = store.children(root);
        for size in [2, SPARSE_LIMIT / 2, SPARSE_LIMIT, SPARSE_LIMIT + 1, 200] {
            // Overlapping picks, reversed so ordering work is exercised.
            let a: Vec<NodeId> = all.iter().rev().step_by(2).take(size).copied().collect();
            let b: Vec<NodeId> = all.iter().skip(size / 2).take(size).copied().collect();
            assert_eq!(
                node_union(&store, &a, &b),
                baseline::node_union(&store, &a, &b),
                "union at size {size}"
            );
            assert_eq!(
                node_except(&store, &a, &b),
                baseline::node_except(&store, &a, &b),
                "except at size {size}"
            );
            assert_eq!(
                set_equal(&a, &b),
                baseline::set_equal(&store, &a, &b),
                "set_equal at size {size}"
            );
            assert_eq!(ddo(&store, &a), baseline::ddo(&store, &a));
        }
        // The motivating case: tiny operands at the far end of a large
        // document stay on the sparse path and in document order.
        let (x, y) = (all[298], all[299]);
        assert_eq!(node_union(&store, &[y], &[x]), vec![x, y]);
    }

    #[test]
    fn baseline_and_nodeset_implementations_agree() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let a = vec![kids[3], kids[0], kids[3], kids[2]];
        let b = vec![kids[2], kids[1]];
        assert_eq!(
            node_union(&store, &a, &b),
            baseline::node_union(&store, &a, &b)
        );
        assert_eq!(
            node_except(&store, &a, &b),
            baseline::node_except(&store, &a, &b)
        );
        assert_eq!(ddo(&store, &a), baseline::ddo(&store, &a));
        assert_eq!(set_equal(&a, &b), baseline::set_equal(&store, &a, &b));
        assert_eq!(
            set_equal(&a, &[kids[0], kids[2], kids[3]]),
            baseline::set_equal(&store, &a, &[kids[0], kids[2], kids[3]])
        );
    }
}
