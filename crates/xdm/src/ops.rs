//! Node-set operations: `fs:ddo`, `union`, `except`, `intersect`,
//! set-equality and subset tests.
//!
//! These are the primitives the inflationary fixed point semantics of the
//! paper is written in (Definition 2.1 uses `union` and set-equality, the
//! Delta algorithm of Figure 3(b) additionally needs `except`).

use std::collections::HashSet;

use crate::node::NodeId;
use crate::store::NodeStore;

/// `fs:distinct-doc-order` — sort into document order, drop duplicates.
pub fn ddo(store: &mut NodeStore, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut out = nodes.to_vec();
    store.sort_distinct(&mut out);
    out
}

/// Node-set union (`union` / `|`): all nodes of either operand, in document
/// order, without duplicates.
pub fn node_union(store: &mut NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    store.sort_distinct(&mut out);
    out
}

/// Node-set difference (`except`): nodes of `a` not in `b`, in document order.
pub fn node_except(store: &mut NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let bset: HashSet<NodeId> = b.iter().copied().collect();
    let filtered: Vec<NodeId> = a.iter().copied().filter(|n| !bset.contains(n)).collect();
    ddo(store, &filtered)
}

/// Node-set intersection (`intersect`): nodes in both operands, in document
/// order.
pub fn intersect(store: &mut NodeStore, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let bset: HashSet<NodeId> = b.iter().copied().collect();
    let filtered: Vec<NodeId> = a.iter().copied().filter(|n| bset.contains(n)).collect();
    ddo(store, &filtered)
}

/// Set-equality of two node sequences: `ddo(a) == ddo(b)`.
pub fn set_equal(store: &mut NodeStore, a: &[NodeId], b: &[NodeId]) -> bool {
    ddo(store, a) == ddo(store, b)
}

/// `true` when every node of `a` also occurs in `b`.
pub fn is_subset(a: &[NodeId], b: &[NodeId]) -> bool {
    let bset: HashSet<NodeId> = b.iter().copied().collect();
    a.iter().all(|n| bset.contains(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Axis, NodeTest};

    fn fixture(store: &mut NodeStore) -> Vec<NodeId> {
        let doc = store.parse_document("<r><a/><b/><c/><d/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement)
    }

    #[test]
    fn union_orders_and_dedups() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let left = vec![kids[2], kids[0]];
        let right = vec![kids[1], kids[0]];
        assert_eq!(
            node_union(&mut store, &left, &right),
            vec![kids[0], kids[1], kids[2]]
        );
    }

    #[test]
    fn except_removes_and_orders() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let all = kids.clone();
        let some = vec![kids[1], kids[3]];
        assert_eq!(node_except(&mut store, &all, &some), vec![kids[0], kids[2]]);
        assert!(node_except(&mut store, &some, &all).is_empty());
    }

    #[test]
    fn intersect_keeps_common_nodes() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let left = vec![kids[3], kids[0], kids[1]];
        let right = vec![kids[1], kids[3]];
        assert_eq!(intersect(&mut store, &left, &right), vec![kids[1], kids[3]]);
    }

    #[test]
    fn set_equality_and_subset() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let a = vec![kids[0], kids[1], kids[1]];
        let b = vec![kids[1], kids[0]];
        assert!(set_equal(&mut store, &a, &b));
        assert!(!set_equal(&mut store, &a, &kids));
        assert!(is_subset(&b, &kids));
        assert!(!is_subset(&kids, &b));
        assert!(is_subset(&[], &b));
    }

    #[test]
    fn ddo_is_idempotent() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let mixed = vec![kids[3], kids[1], kids[3], kids[0]];
        let once = ddo(&mut store, &mixed);
        let twice = ddo(&mut store, &once);
        assert_eq!(once, twice);
        assert_eq!(once, vec![kids[0], kids[1], kids[3]]);
    }
}
