//! Error type for the XDM substrate.

use std::fmt;

/// Errors raised by the data-model layer.
///
/// Parsing errors carry a byte offset into the input so callers can point at
/// the offending location; structural errors describe which invariant was
/// violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdmError {
    /// The XML parser rejected the input.
    Parse {
        /// Byte offset of the error in the source text.
        offset: usize,
        /// Human readable description.
        message: String,
    },
    /// A [`NodeId`](crate::NodeId) referred to a document or node that does
    /// not exist in the store.
    DanglingNode(String),
    /// An operation was applied to a node of the wrong kind
    /// (e.g. asking for the attributes of a text node).
    WrongNodeKind(String),
    /// A value could not be cast to the requested atomic type.
    InvalidCast(String),
    /// A [`SnapshotPin`](crate::store::SnapshotPin) could not be frozen
    /// because the store was mutated after the pin was taken.  Rejecting
    /// the freeze (instead of silently reading moved data) is what makes
    /// the parallel fixpoint drivers' freeze boundary safe.
    ///
    /// # Staleness contract
    ///
    /// A pin records the store's [`load_epoch`](crate::NodeStore::load_epoch)
    /// and [`revision`](crate::NodeStore::revision) at the moment it was
    /// taken.  [`freeze`](crate::store::SnapshotPin::freeze) succeeds iff
    /// *both* counters still match — i.e. no document was loaded **and** no
    /// node was constructed or mutated in between.  Any mutation therefore
    /// permanently invalidates every pin taken before it; a stale pin can
    /// never become fresh again and must be re-taken with
    /// [`pin`](crate::NodeStore::pin).  Callers who only need to measure
    /// drift without freezing can compare
    /// [`SnapshotPin::age`](crate::store::SnapshotPin::age) /
    /// [`SnapshotPin::is_current`](crate::store::SnapshotPin::is_current)
    /// instead of trying and failing.
    StaleSnapshot(String),
}

impl XdmError {
    /// Construct a parse error at `offset`.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        XdmError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdmError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XdmError::DanglingNode(msg) => write!(f, "dangling node reference: {msg}"),
            XdmError::WrongNodeKind(msg) => write!(f, "wrong node kind: {msg}"),
            XdmError::InvalidCast(msg) => write!(f, "invalid cast: {msg}"),
            XdmError::StaleSnapshot(msg) => write!(f, "stale store snapshot: {msg}"),
        }
    }
}

impl std::error::Error for XdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_mentions_offset() {
        let err = XdmError::parse(42, "unexpected '<'");
        let text = err.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("unexpected '<'"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XdmError::parse(1, "x"), XdmError::parse(1, "x"));
        assert_ne!(XdmError::parse(1, "x"), XdmError::parse(2, "x"));
    }
}
