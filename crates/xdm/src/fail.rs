//! Deterministic fault injection (failpoints).
//!
//! A *failpoint* is a named site in the engine (`publish.clone`,
//! `fixpoint.barrier`, …) where a test can ask for a failure to be injected:
//! either a **panic** (to exercise unwind containment) or a typed **error**
//! (to exercise error propagation).  Sites fire under one of two
//! deterministic triggers:
//!
//! * **nth hit** — the site fires exactly once, on its `n`-th execution;
//! * **seeded probability** — every hit fires with probability `p`, driven
//!   by a per-site splitmix64 stream seeded explicitly, so a chaos run is
//!   reproducible from `(fault spec, thread schedule)`.
//!
//! Faults are configured programmatically ([`configure`]) or through the
//! `XQY_FAULTS` environment variable (read once, at first use):
//!
//! ```text
//! XQY_FAULTS="publish.clone=error@1;fixpoint.barrier=panic%5:42"
//!             └────site────┘ └action┘└┤  └───site──────┘ └┤  └┤ └┤
//!                                  nth hit            action  p%  seed
//! ```
//!
//! The subsystem is always compiled in, but costs a single relaxed atomic
//! load per site when no fault is armed — there is no registry lookup, no
//! lock, and no allocation on the disabled path.  Sites that fired are
//! recorded ([`report`]) so a chaos harness can prove coverage.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an `"injected fault at <site>"` payload, exercising the
    /// unwind-containment path.
    Panic,
    /// Return a [`FaultError`] from [`point`], exercising the typed error
    /// path.  Sites without a `Result` channel (e.g. `shard.worker`)
    /// escalate `Error` to a panic.
    Error,
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fire exactly once, on the `n`-th hit (1-based).
    OnNthHit(u64),
    /// Fire each hit independently with the given probability in `[0, 1]`,
    /// from a splitmix64 stream with the given seed.
    Probability {
        /// Chance of firing per hit, `0.0 ..= 1.0`.
        p: f64,
        /// Seed of the per-site random stream.
        seed: u64,
    },
}

/// The typed error produced by an `Error`-action failpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that fired.
    pub site: String,
    /// Which hit of the site fired (1-based).
    pub hit: u64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for FaultError {}

/// Per-site bookkeeping for [`report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// Site name.
    pub site: String,
    /// Times the site was reached while armed.
    pub hits: u64,
    /// Times the site actually fired.
    pub fired: u64,
}

struct SiteState {
    action: FaultAction,
    trigger: FaultTrigger,
    hits: AtomicU64,
    fired: AtomicU64,
    /// splitmix64 state for `Probability` triggers.
    rng: AtomicU64,
}

impl SiteState {
    fn new(action: FaultAction, trigger: FaultTrigger) -> Self {
        let seed = match trigger {
            FaultTrigger::Probability { seed, .. } => seed,
            FaultTrigger::OnNthHit(_) => 0,
        };
        SiteState {
            action,
            trigger,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            rng: AtomicU64::new(seed),
        }
    }

    /// Count a hit and decide whether it fires.
    fn hit(&self) -> Option<(FaultAction, u64)> {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match self.trigger {
            FaultTrigger::OnNthHit(n) => hit == n,
            FaultTrigger::Probability { p, seed: _ } => {
                let x = splitmix64(&self.rng);
                // Map the top 53 bits to [0, 1).
                let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
                unit < p
            }
        };
        if fires {
            self.fired.fetch_add(1, Ordering::Relaxed);
            Some((self.action, hit))
        } else {
            None
        }
    }
}

fn splitmix64(state: &AtomicU64) -> u64 {
    let mut z = state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tri-state armed flag; the only cost paid by the disabled fast path is
/// one relaxed load.  `UNINIT` exists so the very first `point()` call
/// parses `XQY_FAULTS` — were this a plain boolean starting at "off",
/// an env-armed process would never reach the registry that arms it.
const UNINIT: u8 = 0;
const DISABLED: u8 = 1;
const ARMED: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(UNINIT);

static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<SiteState>>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, Arc<SiteState>>> {
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("XQY_FAULTS") {
            match parse_spec(&spec) {
                Ok(sites) => {
                    for (site, action, trigger) in sites {
                        map.insert(site, Arc::new(SiteState::new(action, trigger)));
                    }
                }
                Err(e) => eprintln!("xqy_xdm::fail: ignoring malformed XQY_FAULTS: {e}"),
            }
        }
        let state = if map.is_empty() { DISABLED } else { ARMED };
        // Racing initializers may briefly overwrite a concurrent
        // `configure`'s ARMED with DISABLED; `configure` re-stores ARMED
        // after `lock_registry` returns, so the flag settles correctly.
        STATE.store(state, Ordering::Release);
        Mutex::new(map)
    })
}

/// `true` iff at least one site may be armed, initializing the registry
/// (and with it the `XQY_FAULTS` parse) on the first call.
#[inline]
fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        DISABLED => false,
        ARMED => true,
        _ => {
            registry();
            STATE.load(Ordering::Relaxed) == ARMED
        }
    }
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<String, Arc<SiteState>>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parse an `XQY_FAULTS`-style spec: `site=action@n` or `site=action%p:seed`
/// (`p` is a percentage, possibly fractional), `;`-separated.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, FaultAction, FaultTrigger)>, String> {
    let mut out = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, rest) = part
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in {part:?}"))?;
        let (action_str, trigger) = if let Some((a, n)) = rest.split_once('@') {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad hit count in {part:?}"))?;
            (a, FaultTrigger::OnNthHit(n))
        } else if let Some((a, pr)) = rest.split_once('%') {
            let (pct, seed) = pr
                .split_once(':')
                .ok_or_else(|| format!("missing ':seed' in {part:?}"))?;
            let pct: f64 = pct
                .parse()
                .map_err(|_| format!("bad probability in {part:?}"))?;
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed in {part:?}"))?;
            (
                a,
                FaultTrigger::Probability {
                    p: (pct / 100.0).clamp(0.0, 1.0),
                    seed,
                },
            )
        } else {
            return Err(format!("missing '@n' or '%p:seed' trigger in {part:?}"));
        };
        let action = match action_str {
            "panic" => FaultAction::Panic,
            "error" => FaultAction::Error,
            other => return Err(format!("unknown action {other:?} in {part:?}")),
        };
        out.push((site.trim().to_string(), action, trigger));
    }
    Ok(out)
}

/// Arm a failpoint programmatically (replacing any previous configuration
/// of the same site).
pub fn configure(site: &str, action: FaultAction, trigger: FaultTrigger) {
    lock_registry().insert(site.to_string(), Arc::new(SiteState::new(action, trigger)));
    STATE.store(ARMED, Ordering::Release);
}

/// Arm failpoints from a spec string (same grammar as `XQY_FAULTS`).
pub fn configure_str(spec: &str) -> Result<(), String> {
    for (site, action, trigger) in parse_spec(spec)? {
        configure(&site, action, trigger);
    }
    Ok(())
}

/// Disarm every failpoint and forget its hit counts.
pub fn reset() {
    lock_registry().clear();
    STATE.store(DISABLED, Ordering::Release);
}

/// Hit/fired counts for every armed site, sorted by site name — the raw
/// material of the chaos suite's coverage report.
pub fn report() -> Vec<SiteReport> {
    let mut out: Vec<SiteReport> = lock_registry()
        .iter()
        .map(|(site, st)| SiteReport {
            site: site.clone(),
            hits: st.hits.load(Ordering::Relaxed),
            fired: st.fired.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.site.cmp(&b.site));
    out
}

/// Names of the sites that have fired at least once.
pub fn fired_sites() -> Vec<String> {
    report()
        .into_iter()
        .filter(|r| r.fired > 0)
        .map(|r| r.site)
        .collect()
}

/// Execute the failpoint named `site`.
///
/// Disabled sites return `Ok(())` after a single relaxed atomic load.  An
/// armed site whose trigger fires either panics (action `Panic`) or returns
/// a [`FaultError`] (action `Error`) for the caller to map into its local
/// error type.
#[inline]
pub fn point(site: &str) -> Result<(), FaultError> {
    if !enabled() {
        return Ok(());
    }
    point_slow(site)
}

#[cold]
fn point_slow(site: &str) -> Result<(), FaultError> {
    let state = lock_registry().get(site).cloned();
    if let Some(state) = state {
        if let Some((action, hit)) = state.hit() {
            match action {
                FaultAction::Panic => panic!("injected fault at {site} (hit {hit})"),
                FaultAction::Error => {
                    return Err(FaultError {
                        site: site.to_string(),
                        hit,
                    })
                }
            }
        }
    }
    Ok(())
}

/// Execute the failpoint named `site` in a context with no error channel:
/// both actions escalate to a panic (used by e.g. `shard.worker`, where the
/// panic is surfaced as a typed error at the service boundary).
#[inline]
pub fn point_panic(site: &str) {
    if !enabled() {
        return;
    }
    if let Err(e) = point_slow(site) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests serialise on a lock
    // and reset state around each scenario.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_point_is_ok() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        assert_eq!(point("nonexistent.site"), Ok(()));
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        configure("t.nth", FaultAction::Error, FaultTrigger::OnNthHit(3));
        assert!(point("t.nth").is_ok());
        assert!(point("t.nth").is_ok());
        let err = point("t.nth").unwrap_err();
        assert_eq!(err.site, "t.nth");
        assert_eq!(err.hit, 3);
        assert!(point("t.nth").is_ok());
        let rep = report();
        assert_eq!(rep.len(), 1);
        assert_eq!(rep[0].hits, 4);
        assert_eq!(rep[0].fired, 1);
        reset();
    }

    #[test]
    fn probability_is_seeded_and_reproducible() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let run = |seed: u64| -> Vec<bool> {
            reset();
            configure(
                "t.prob",
                FaultAction::Error,
                FaultTrigger::Probability { p: 0.5, seed },
            );
            let fired: Vec<bool> = (0..64).map(|_| point("t.prob").is_err()).collect();
            reset();
            fired
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce the same firing pattern");
        assert_ne!(a, c, "different seeds should diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fired), "p=0.5 fired {fired}/64 times");
    }

    #[test]
    fn panic_action_panics_and_is_catchable() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        configure("t.panic", FaultAction::Panic, FaultTrigger::OnNthHit(1));
        let caught = std::panic::catch_unwind(|| {
            let _ = point("t.panic");
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault at t.panic"));
        reset();
    }

    #[test]
    fn spec_grammar_round_trips() {
        let parsed = parse_spec("a.b=error@2; c.d=panic%12.5:99").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0],
            (
                "a.b".to_string(),
                FaultAction::Error,
                FaultTrigger::OnNthHit(2)
            )
        );
        assert_eq!(parsed[1].0, "c.d");
        assert_eq!(parsed[1].1, FaultAction::Panic);
        match parsed[1].2 {
            FaultTrigger::Probability { p, seed } => {
                assert!((p - 0.125).abs() < 1e-9);
                assert_eq!(seed, 99);
            }
            _ => panic!("expected probability trigger"),
        }
        assert!(parse_spec("garbage").is_err());
        assert!(parse_spec("a=panic").is_err(), "trigger is mandatory");
        assert!(parse_spec("a=explode@1").is_err());
    }
}
