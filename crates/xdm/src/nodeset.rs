//! An order-indexed, bitset-backed node-set kernel.
//!
//! [`NodeSet`] is the data structure behind the node-set operations that
//! dominate the cost of the paper's Delta algorithm (Figure 3(b)): each
//! iteration computes `e_rec(∆) except res` and `∆ union res`, and the
//! termination test is a set-equality check.  Representing node sets as
//! per-document `u64` bitmaps over arena indices makes
//!
//! * `union` / `except` / `intersect` word-parallel (64 nodes per
//!   instruction),
//! * set-equality a word-for-word comparison (no sorting, no hashing),
//! * membership an O(1) bit probe,
//!
//! and — because arena indices within a parsed document coincide with
//! pre-order document positions, and documents are ordered by creation —
//! iteration yields document order *for free* on parsed documents.  For
//! constructed fragments whose arena order diverged from document order
//! (out-of-order `append_child`), [`NodeSet::to_vec`] falls back to a
//! rank-based sort for just those documents; the bit-level set algebra is
//! order-independent and never needs ranks.
//!
//! Invariants maintained by every operation (and relied on by `PartialEq`):
//! the per-document bitmaps contain no trailing zero words, and no document
//! entry is empty.  Two `NodeSet`s are therefore equal as Rust values
//! exactly when they denote the same set of node identities.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::shard;
use crate::store::{DocId, NodeStore};

const WORD_BITS: usize = 64;

/// Minimum per-document bitmap size (in words) before the `_sharded`
/// kernels actually split the word range across threads.  Below this the
/// word loop is far cheaper than spawning scoped threads, so the kernels
/// fall back to the sequential loop for that document.
const SHARD_MIN_WORDS: usize = 1024;

/// A set of node identities, stored as per-document `u64` bitmaps.
///
/// Documents are keyed in creation order (which is their document-order
/// rank across documents); bits within a document are keyed by arena index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    docs: BTreeMap<u32, Vec<u64>>,
    len: usize,
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Build a set from node ids (duplicates collapse).
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut set = NodeSet::new();
        for node in nodes {
            set.insert(node);
        }
        set
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no node is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let idx = node.node as usize;
        self.docs
            .get(&node.doc)
            .and_then(|words| words.get(idx / WORD_BITS))
            .is_some_and(|&word| word & (1u64 << (idx % WORD_BITS)) != 0)
    }

    /// Add `node`; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let idx = node.node as usize;
        let words = self.docs.entry(node.doc).or_default();
        let word_idx = idx / WORD_BITS;
        if words.len() <= word_idx {
            words.resize(word_idx + 1, 0);
        }
        let mask = 1u64 << (idx % WORD_BITS);
        let fresh = words[word_idx] & mask == 0;
        if fresh {
            words[word_idx] |= mask;
            self.len += 1;
        }
        fresh
    }

    /// Remove `node`; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let idx = node.node as usize;
        let Some(words) = self.docs.get_mut(&node.doc) else {
            return false;
        };
        let word_idx = idx / WORD_BITS;
        let mask = 1u64 << (idx % WORD_BITS);
        let Some(word) = words.get_mut(word_idx) else {
            return false;
        };
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.len -= 1;
        Self::trim(words);
        if words.is_empty() {
            self.docs.remove(&node.doc);
        }
        true
    }

    /// Add every node of `other` (word-parallel `self ∪= other`).
    pub fn union_in_place(&mut self, other: &NodeSet) {
        for (&doc, other_words) in &other.docs {
            let words = self.docs.entry(doc).or_default();
            if words.len() < other_words.len() {
                words.resize(other_words.len(), 0);
            }
            for (word, &incoming) in words.iter_mut().zip(other_words) {
                let added = incoming & !*word;
                *word |= incoming;
                self.len += added.count_ones() as usize;
            }
        }
    }

    /// Remove every node of `other` (word-parallel `self ∖= other`).
    pub fn except_in_place(&mut self, other: &NodeSet) {
        let mut emptied = Vec::new();
        for (&doc, words) in self.docs.iter_mut() {
            let Some(other_words) = other.docs.get(&doc) else {
                continue;
            };
            for (word, &mask) in words.iter_mut().zip(other_words) {
                let removed = *word & mask;
                *word &= !mask;
                self.len -= removed.count_ones() as usize;
            }
            Self::trim(words);
            if words.is_empty() {
                emptied.push(doc);
            }
        }
        for doc in emptied {
            self.docs.remove(&doc);
        }
    }

    /// Keep only nodes present in `other` (word-parallel `self ∩= other`).
    pub fn intersect_in_place(&mut self, other: &NodeSet) {
        let mut emptied = Vec::new();
        for (&doc, words) in self.docs.iter_mut() {
            match other.docs.get(&doc) {
                None => {
                    for word in words.iter_mut() {
                        self.len -= word.count_ones() as usize;
                        *word = 0;
                    }
                }
                Some(other_words) => {
                    for (i, word) in words.iter_mut().enumerate() {
                        let mask = other_words.get(i).copied().unwrap_or(0);
                        let removed = *word & !mask;
                        *word &= mask;
                        self.len -= removed.count_ones() as usize;
                    }
                }
            }
            Self::trim(words);
            if words.is_empty() {
                emptied.push(doc);
            }
        }
        for doc in emptied {
            self.docs.remove(&doc);
        }
    }

    /// Thread count to use for one document's word range: sequential
    /// unless the range is large enough to amortize thread spawns.
    fn word_shards(threads: usize, words: usize) -> usize {
        if words >= SHARD_MIN_WORDS {
            threads
        } else {
            1
        }
    }

    /// Word-sharded `self ∪= other`: each document's word range is split
    /// into contiguous shards processed by scoped threads, with the
    /// per-shard added-bit counts summed at the join.  Bit-identical to
    /// [`NodeSet::union_in_place`]; `threads <= 1` *is* the sequential
    /// code path.
    pub fn union_in_place_sharded(&mut self, other: &NodeSet, threads: usize) {
        if threads <= 1 {
            return self.union_in_place(other);
        }
        for (&doc, other_words) in &other.docs {
            let words = self.docs.entry(doc).or_default();
            if words.len() < other_words.len() {
                words.resize(other_words.len(), 0);
            }
            let n = other_words.len();
            let added: usize = shard::zip_shards(
                Self::word_shards(threads, n),
                &mut words[..n],
                other_words,
                |mine, incoming| {
                    let mut added = 0usize;
                    for (word, &inc) in mine.iter_mut().zip(incoming) {
                        added += (inc & !*word).count_ones() as usize;
                        *word |= inc;
                    }
                    added
                },
            )
            .into_iter()
            .sum();
            self.len += added;
        }
    }

    /// Word-sharded `self ∖= other`; see [`NodeSet::union_in_place_sharded`].
    pub fn except_in_place_sharded(&mut self, other: &NodeSet, threads: usize) {
        if threads <= 1 {
            return self.except_in_place(other);
        }
        let mut emptied = Vec::new();
        for (&doc, words) in self.docs.iter_mut() {
            let Some(other_words) = other.docs.get(&doc) else {
                continue;
            };
            let n = words.len().min(other_words.len());
            let removed: usize = shard::zip_shards(
                Self::word_shards(threads, n),
                &mut words[..n],
                &other_words[..n],
                |mine, masks| {
                    let mut removed = 0usize;
                    for (word, &mask) in mine.iter_mut().zip(masks) {
                        removed += (*word & mask).count_ones() as usize;
                        *word &= !mask;
                    }
                    removed
                },
            )
            .into_iter()
            .sum();
            self.len -= removed;
            Self::trim(words);
            if words.is_empty() {
                emptied.push(doc);
            }
        }
        for doc in emptied {
            self.docs.remove(&doc);
        }
    }

    /// Word-sharded `self ∩= other`; see [`NodeSet::union_in_place_sharded`].
    pub fn intersect_in_place_sharded(&mut self, other: &NodeSet, threads: usize) {
        if threads <= 1 {
            return self.intersect_in_place(other);
        }
        let mut emptied = Vec::new();
        for (&doc, words) in self.docs.iter_mut() {
            match other.docs.get(&doc) {
                None => {
                    for word in words.iter_mut() {
                        self.len -= word.count_ones() as usize;
                        *word = 0;
                    }
                }
                Some(other_words) => {
                    let n = words.len().min(other_words.len());
                    let removed: usize = shard::zip_shards(
                        Self::word_shards(threads, n),
                        &mut words[..n],
                        &other_words[..n],
                        |mine, masks| {
                            let mut removed = 0usize;
                            for (word, &mask) in mine.iter_mut().zip(masks) {
                                removed += (*word & !mask).count_ones() as usize;
                                *word &= mask;
                            }
                            removed
                        },
                    )
                    .into_iter()
                    .sum();
                    // Words past the operand's bitmap have no counterpart:
                    // everything there leaves the intersection.
                    let mut tail_removed = 0usize;
                    for word in words[n..].iter_mut() {
                        tail_removed += word.count_ones() as usize;
                        *word = 0;
                    }
                    self.len -= removed + tail_removed;
                }
            }
            Self::trim(words);
            if words.is_empty() {
                emptied.push(doc);
            }
        }
        for doc in emptied {
            self.docs.remove(&doc);
        }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let (mut big, small) = if self.len >= other.len {
            (self.clone(), other)
        } else {
            (other.clone(), self)
        };
        big.union_in_place(small);
        big
    }

    /// `self ∖ other` as a new set.
    pub fn except(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.except_in_place(other);
        out
    }

    /// `self ∩ other` as a new set.
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_in_place(other);
        out
    }

    /// `true` when every node of `self` is in `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        if self.len > other.len {
            return false;
        }
        self.docs.iter().all(|(doc, words)| {
            let Some(other_words) = other.docs.get(doc) else {
                return words.iter().all(|&w| w == 0);
            };
            words
                .iter()
                .enumerate()
                .all(|(i, &word)| word & !other_words.get(i).copied().unwrap_or(0) == 0)
        })
    }

    /// `true` when the sets share no node.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.docs.iter().all(|(doc, words)| {
            let Some(other_words) = other.docs.get(doc) else {
                return true;
            };
            words.iter().zip(other_words).all(|(&a, &b)| a & b == 0)
        })
    }

    /// Iterate node ids in (document, arena-index) order.
    ///
    /// For parsed documents this **is** document order; constructed
    /// fragments may need [`NodeSet::to_vec`] instead.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.docs.iter().flat_map(|(&doc, words)| {
            words.iter().enumerate().flat_map(move |(word_idx, &word)| {
                BitIter(word).map(move |bit| NodeId::new(doc, (word_idx * WORD_BITS + bit) as u32))
            })
        })
    }

    /// Materialize the set as a `Vec<NodeId>` in document order.
    ///
    /// Documents whose arena order coincides with document order (all
    /// parsed documents, and constructed fragments built in pre-order) are
    /// emitted straight from the bitmap; only documents whose order
    /// diverged pay for a rank sort.
    ///
    /// Materialization is a pure read: it works through `&NodeStore` (or a
    /// [`crate::store::StoreSnapshot`]), so set results can be rendered
    /// from shared references — including concurrently from the parallel
    /// drivers' shards.
    pub fn to_vec(&self, store: &NodeStore) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len);
        for (&doc, words) in &self.docs {
            let start = out.len();
            for (word_idx, &word) in words.iter().enumerate() {
                for bit in BitIter(word) {
                    out.push(NodeId::new(doc, (word_idx * WORD_BITS + bit) as u32));
                }
            }
            if !store.index_order_is_document_order(DocId(doc)) {
                let mut tail: Vec<NodeId> = out.split_off(start);
                store.sort_distinct(&mut tail);
                out.extend(tail);
            }
        }
        out
    }

    fn trim(words: &mut Vec<u64>) {
        while words.last() == Some(&0) {
            words.pop();
        }
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        NodeSet::from_nodes(iter)
    }
}

impl<'a> FromIterator<&'a NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = &'a NodeId>>(iter: T) -> Self {
        NodeSet::from_nodes(iter.into_iter().copied())
    }
}

/// Iterator over the set bit positions of one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Axis, NodeTest, QName};

    fn fixture(store: &mut NodeStore) -> Vec<NodeId> {
        let doc = store
            .parse_document("<r><a/><b/><c/><d/><e/><f/></r>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement)
    }

    #[test]
    fn insert_contains_remove_and_len() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let mut set = NodeSet::new();
        assert!(set.is_empty());
        assert!(set.insert(kids[0]));
        assert!(!set.insert(kids[0]), "duplicate insert reports absent");
        assert!(set.insert(kids[3]));
        assert_eq!(set.len(), 2);
        assert!(set.contains(kids[0]));
        assert!(!set.contains(kids[1]));
        assert!(set.remove(kids[0]));
        assert!(!set.remove(kids[0]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn equality_is_set_equality_regardless_of_build_order() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let a = NodeSet::from_nodes([kids[2], kids[0], kids[2], kids[4]]);
        let b = NodeSet::from_nodes([kids[4], kids[2], kids[0]]);
        assert_eq!(a, b);
        let c = NodeSet::from_nodes([kids[4], kids[2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn equality_after_removal_normalizes_trailing_words() {
        // A node with arena index >= 64 forces a second bitmap word; removing
        // it must trim the word so equality with a one-word set holds.
        let mut store = NodeStore::new();
        let mut xml = String::from("<r>");
        for _ in 0..70 {
            xml.push_str("<c/>");
        }
        xml.push_str("</r>");
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
        let far = kids[69]; // arena index > 64
        let mut a = NodeSet::from_nodes([kids[0], far]);
        a.remove(far);
        assert_eq!(a, NodeSet::from_nodes([kids[0]]));
        let mut b = NodeSet::from_nodes([kids[0], far]);
        b.except_in_place(&NodeSet::from_nodes([far]));
        assert_eq!(b, NodeSet::from_nodes([kids[0]]));
    }

    #[test]
    fn word_parallel_algebra() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let a = NodeSet::from_nodes([kids[0], kids[1], kids[2]]);
        let b = NodeSet::from_nodes([kids[2], kids[3]]);
        assert_eq!(
            a.union(&b),
            NodeSet::from_nodes([kids[0], kids[1], kids[2], kids[3]])
        );
        assert_eq!(a.except(&b), NodeSet::from_nodes([kids[0], kids[1]]));
        assert_eq!(a.intersect(&b), NodeSet::from_nodes([kids[2]]));
        assert!(NodeSet::from_nodes([kids[0]]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.except(&b).is_disjoint(&b));
        assert_eq!(a.union(&b).len(), 4);
    }

    #[test]
    fn cross_document_sets() {
        let mut store = NodeStore::new();
        let k1 = fixture(&mut store);
        let k2 = fixture(&mut store);
        assert_ne!(k1[0].doc, k2[0].doc);
        let mut set = NodeSet::from_nodes([k2[1], k1[0]]);
        set.insert(k1[3]);
        assert_eq!(set.len(), 3);
        // Iteration is ordered by (doc, index): all of doc 1 before doc 2.
        let ids: Vec<NodeId> = set.iter().collect();
        assert_eq!(ids, vec![k1[0], k1[3], k2[1]]);
        // Except only touches the matching document.
        set.except_in_place(&NodeSet::from_nodes([k2[1], k2[3]]));
        assert_eq!(set, NodeSet::from_nodes([k1[0], k1[3]]));
    }

    #[test]
    fn to_vec_yields_document_order_on_parsed_documents() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let set = NodeSet::from_nodes([kids[5], kids[1], kids[3], kids[1]]);
        assert_eq!(set.to_vec(&store), vec![kids[1], kids[3], kids[5]]);
    }

    #[test]
    fn to_vec_sorts_constructed_fragments_built_out_of_order() {
        // Build a fragment whose arena order differs from document order:
        // create child before parent, then attach.
        let mut store = NodeStore::new();
        let frag = store.new_fragment();
        let child = store.create_element(frag, QName::local("child"));
        let parent = store.create_element(frag, QName::local("parent"));
        store.append_child(parent, child).unwrap();
        // Arena order: child(0), parent(1); document order: parent, child.
        let set = NodeSet::from_nodes([child, parent]);
        assert_eq!(set.to_vec(&store), vec![parent, child]);
        // Bit iteration remains arena-ordered; only to_vec re-sorts.
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![child, parent]);
    }

    #[test]
    fn sharded_kernels_match_sequential_bit_for_bit() {
        // Synthetic ids: the set algebra never touches the store, so
        // bitmaps big enough to cross SHARD_MIN_WORDS can be built without
        // parsing a huge document.
        fn mk(doc: u32, upto: u32, step: usize) -> NodeSet {
            NodeSet::from_nodes((0..upto).step_by(step).map(|i| NodeId::new(doc, i)))
        }
        let a0 = mk(0, 200_000, 3).union(&mk(1, 50_000, 7));
        let b0 = mk(0, 200_000, 5).union(&mk(2, 80_000, 2));
        for threads in [1, 2, 8] {
            let mut sharded = a0.clone();
            sharded.union_in_place_sharded(&b0, threads);
            let mut sequential = a0.clone();
            sequential.union_in_place(&b0);
            assert_eq!(sharded, sequential, "union at {threads} threads");
            assert_eq!(sharded.len(), sharded.iter().count());

            let mut sharded = a0.clone();
            sharded.except_in_place_sharded(&b0, threads);
            let mut sequential = a0.clone();
            sequential.except_in_place(&b0);
            assert_eq!(sharded, sequential, "except at {threads} threads");
            assert_eq!(sharded.len(), sharded.iter().count());

            let mut sharded = a0.clone();
            sharded.intersect_in_place_sharded(&b0, threads);
            let mut sequential = a0.clone();
            sequential.intersect_in_place(&b0);
            assert_eq!(sharded, sequential, "intersect at {threads} threads");
            assert_eq!(sharded.len(), sharded.iter().count());
        }
    }

    #[test]
    fn empty_operand_edge_cases() {
        let mut store = NodeStore::new();
        let kids = fixture(&mut store);
        let empty = NodeSet::new();
        let a = NodeSet::from_nodes([kids[0]]);
        assert_eq!(a.union(&empty), a);
        assert_eq!(empty.union(&a), a);
        assert_eq!(a.except(&empty), a);
        assert_eq!(empty.except(&a), empty);
        assert_eq!(a.intersect(&empty), empty);
        assert!(empty.is_subset(&a));
        assert!(empty.is_subset(&empty));
        assert!(empty.to_vec(&store).is_empty());
        assert_eq!(empty, NodeSet::new());
    }
}
