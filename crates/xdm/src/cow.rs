//! Copy-on-write store handles for concurrent query execution.
//!
//! The serving layer executes many queries at once against one published
//! [`NodeStore`] behind an [`Arc`].  Reads need no coordination — the store
//! is `Sync` — but XQuery node *constructors* mutate the store, and a
//! construction performed by one session must never be visible to (or block)
//! another.  [`CowStore`] resolves this per session: it starts as a cheap
//! shared handle on the published store and transparently switches to a
//! private deep clone on the first write ([`Arc::make_mut`]), so
//! construction-free queries share one store while constructing queries pay
//! for their own copy — and only they do.
//!
//! [`StoreMut`] is the uniform handle the evaluator and the plan executor
//! thread through their call stacks: either classic exclusive access
//! (`&mut NodeStore`, the single-query engine path) or a copy-on-write
//! session store.  It `Deref`s to [`NodeStore`] so read paths are untouched;
//! `DerefMut` routes through [`CowStore::write`], which is where the
//! one-time clone happens.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::store::NodeStore;

/// A session-private copy-on-write view of a shared [`NodeStore`].
///
/// Cloning the handle's `Arc` is O(1); the backing store is deep-cloned at
/// most once, on the first [`write`](CowStore::write) while the `Arc` is
/// still shared.  The clone preserves every [`NodeId`](crate::NodeId), the
/// [load epoch](NodeStore::load_epoch) and the
/// [revision](NodeStore::revision), so node handles, caches keyed on the
/// epoch, and document-order state all remain valid across the switch.
#[derive(Debug, Clone)]
pub struct CowStore {
    inner: Arc<NodeStore>,
    diverged: bool,
}

impl CowStore {
    /// Wrap a shared store.  No copy happens until the first
    /// [`write`](CowStore::write).
    pub fn new(inner: Arc<NodeStore>) -> Self {
        CowStore {
            inner,
            diverged: false,
        }
    }

    /// Wrap an owned store (the handle is the sole owner; writes never
    /// clone).
    pub fn from_store(store: NodeStore) -> Self {
        CowStore::new(Arc::new(store))
    }

    /// Read access to the (possibly still shared) store.
    pub fn read(&self) -> &NodeStore {
        &self.inner
    }

    /// Write access.  If the store is still shared this deep-clones it
    /// first ([`Arc::make_mut`]) — from then on the handle owns a private
    /// copy and later writes are free.
    pub fn write(&mut self) -> &mut NodeStore {
        self.diverged = true;
        Arc::make_mut(&mut self.inner)
    }

    /// `true` once [`write`](CowStore::write) has been taken at least once —
    /// i.e. the session potentially no longer reads the exact store object
    /// it was created over (node construction ran).
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// The backing `Arc`: the original shared store if the session never
    /// wrote, the session-private copy otherwise.  Result nodes of a query
    /// executed over this handle resolve against exactly this store.
    pub fn into_arc(self) -> Arc<NodeStore> {
        self.inner
    }

    /// Borrow the backing `Arc` without consuming the handle.
    pub fn arc(&self) -> &Arc<NodeStore> {
        &self.inner
    }
}

/// Exclusive-or-copy-on-write store access, threaded through the evaluator
/// and the plan executor.
///
/// `Deref`/`DerefMut` make the handle a drop-in replacement for
/// `&mut NodeStore` at method-call sites: `&self` store methods (all read
/// paths) never trigger a copy, while `&mut self` methods (construction)
/// route through [`CowStore::write`] on the copy-on-write variant.
#[derive(Debug)]
pub enum StoreMut<'s> {
    /// Classic exclusive access — the single-query engine path.
    Exclusive(&'s mut NodeStore),
    /// A session's copy-on-write store — the concurrent service path.
    Cow(&'s mut CowStore),
}

impl<'s> StoreMut<'s> {
    /// Read access (never copies).
    pub fn read(&self) -> &NodeStore {
        match self {
            StoreMut::Exclusive(store) => store,
            StoreMut::Cow(cow) => cow.read(),
        }
    }

    /// Write access (a copy-on-write handle clones on first use).
    pub fn write(&mut self) -> &mut NodeStore {
        match self {
            StoreMut::Exclusive(store) => store,
            StoreMut::Cow(cow) => cow.write(),
        }
    }

    /// Reborrow the handle with a shorter lifetime — the store-access
    /// analogue of `&mut *x`, for passing the handle down a call stack
    /// without giving it away.
    pub fn reborrow(&mut self) -> StoreMut<'_> {
        match self {
            StoreMut::Exclusive(store) => StoreMut::Exclusive(store),
            StoreMut::Cow(cow) => StoreMut::Cow(cow),
        }
    }
}

impl<'s> From<&'s mut NodeStore> for StoreMut<'s> {
    fn from(store: &'s mut NodeStore) -> Self {
        StoreMut::Exclusive(store)
    }
}

impl<'s> From<&'s mut CowStore> for StoreMut<'s> {
    fn from(cow: &'s mut CowStore) -> Self {
        StoreMut::Cow(cow)
    }
}

impl Deref for StoreMut<'_> {
    type Target = NodeStore;

    fn deref(&self) -> &NodeStore {
        self.read()
    }
}

impl DerefMut for StoreMut<'_> {
    fn deref_mut(&mut self) -> &mut NodeStore {
        self.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_never_copy_writes_copy_once() {
        let mut base = NodeStore::new();
        base.parse_document_with_uri("d.xml", "<r><a/></r>")
            .unwrap();
        let shared = Arc::new(base);
        let mut cow = CowStore::new(shared.clone());

        // Reading leaves the Arc shared.
        assert_eq!(cow.read().document_count(), 1);
        assert!(!cow.diverged());
        assert_eq!(Arc::strong_count(&shared), 2);

        // First write clones; the original is untouched.
        let revision_before = shared.revision();
        let frag = cow.write().new_fragment();
        cow.write().create_text(frag, "hello");
        assert!(cow.diverged());
        assert_eq!(Arc::strong_count(&shared), 1);
        assert_eq!(shared.revision(), revision_before);
        assert_eq!(shared.document_count(), 1);
        assert_eq!(cow.read().document_count(), 2);
        // Node identities and epochs carried over to the private copy.
        assert_eq!(cow.read().load_epoch(), shared.load_epoch());
    }

    #[test]
    fn store_mut_routes_reads_and_writes() {
        let mut store = NodeStore::new();
        store.parse_document_with_uri("d.xml", "<r/>").unwrap();
        let mut handle = StoreMut::from(&mut store);
        assert_eq!(handle.read().document_count(), 1);
        // Deref gives method-call access without naming read()/write().
        assert_eq!(handle.document_count(), 1);
        let frag = handle.new_fragment();
        handle.create_text(frag, "t");
        assert_eq!(handle.read().document_count(), 2);

        let shared = Arc::new(NodeStore::new());
        let mut cow = CowStore::new(shared.clone());
        {
            let mut handle = StoreMut::from(&mut cow);
            let reborrowed = handle.reborrow();
            assert_eq!(reborrowed.read().document_count(), 0);
            handle.new_fragment();
        }
        assert!(cow.diverged());
        assert_eq!(Arc::strong_count(&shared), 1);
    }
}
