//! The node store: an arena of documents and their nodes.
//!
//! Every XML tree a query run touches — parsed documents as well as trees
//! created by node constructors — lives inside a single [`NodeStore`].  This
//! gives the engine:
//!
//! * **stable node identity**: a [`NodeId`] never changes or gets reused;
//! * a **total document order** across all documents (documents are ordered
//!   by creation, nodes within a document by pre-order position, with
//!   attribute nodes ordered after their owner element and before its
//!   children, as prescribed by the XDM);
//! * cheap, index-based navigation for all XPath axes.
//!
//! Trees are mutable while they are being built (constructors append children
//! one by one); document-order ranks and the ID index are recomputed lazily
//! whenever a document has been mutated since the last query.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::error::XdmError;
use crate::node::{Axis, NodeId, NodeKind, NodeTest, QName};
use crate::Result;

/// Identifier of a document inside a [`NodeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Per-node data held in the document arena.
#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<u32>,
    /// Child nodes (elements, text, comments, PIs) in document order.
    children: Vec<u32>,
    /// Attribute nodes of an element.
    attributes: Vec<u32>,
}

/// A single document (or constructed tree fragment) in the store.
#[derive(Debug, Clone)]
struct Document {
    nodes: Vec<NodeData>,
    /// `order[i]` is the document-order rank of node `i`; recomputed lazily.
    order: Vec<u32>,
    /// Attribute names treated as ID-typed (in addition to `xml:id`/`id`).
    id_attr_names: Vec<String>,
    /// Map from ID value to the first element carrying it.
    id_index: HashMap<String, u32>,
    /// Set when the document has been mutated since `order`/`id_index` were
    /// last rebuilt.
    dirty: bool,
    /// `true` when arena index order coincides with document order (always
    /// the case for parsed documents; constructed fragments may diverge).
    /// Lets [`crate::NodeSet`] emit document order straight from its bitmaps.
    index_is_order: bool,
    /// Bumped every time `refresh` actually rebuilds `order`/`id_index`.
    /// Caches of per-document derived state (the store's `id()` probe memo)
    /// compare this to detect that a rebuild happened — regardless of
    /// *which* store operation triggered it.
    version: u64,
    /// Optional URI this document was loaded under (used by `fn:doc`).
    uri: Option<String>,
}

impl Document {
    fn new() -> Self {
        Document {
            nodes: Vec::new(),
            order: Vec::new(),
            id_attr_names: Vec::new(),
            id_index: HashMap::new(),
            dirty: true,
            index_is_order: true,
            version: 0,
            uri: None,
        }
    }

    fn push(&mut self, data: NodeData) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(data);
        self.dirty = true;
        idx
    }

    fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.version += 1;
        self.order = vec![0; self.nodes.len()];
        self.id_index.clear();
        if !self.nodes.is_empty() {
            let mut rank = 0u32;
            // Every node that has no parent is a root of its own fragment;
            // fragments are ordered by arena index of their roots.
            let roots: Vec<u32> = (0..self.nodes.len() as u32)
                .filter(|&i| self.nodes[i as usize].parent.is_none())
                .collect();
            for root in roots {
                self.assign_order(root, &mut rank);
            }
        }
        self.index_is_order = self.order.windows(2).all(|w| w[0] < w[1]);
        self.rebuild_id_index();
        self.dirty = false;
    }

    fn assign_order(&mut self, node: u32, rank: &mut u32) {
        self.order[node as usize] = *rank;
        *rank += 1;
        let attrs = self.nodes[node as usize].attributes.clone();
        for a in attrs {
            self.order[a as usize] = *rank;
            *rank += 1;
        }
        let children = self.nodes[node as usize].children.clone();
        for c in children {
            self.assign_order(c, rank);
        }
    }

    fn rebuild_id_index(&mut self) {
        for idx in 0..self.nodes.len() {
            if !self.nodes[idx].kind.is_element() {
                continue;
            }
            for &attr in &self.nodes[idx].attributes {
                if let NodeKind::Attribute(name, value) = &self.nodes[attr as usize].kind {
                    // `id` matches both the unprefixed and the `xml:id`
                    // spelling (prefixes are not significant here).
                    let is_id =
                        name.local == "id" || self.id_attr_names.iter().any(|n| n == &name.local);
                    if is_id {
                        self.id_index.entry(value.clone()).or_insert(idx as u32);
                    }
                }
            }
        }
    }
}

/// The arena owning every document and node of a query run.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug, Default, Clone)]
pub struct NodeStore {
    docs: Vec<Document>,
    /// URI → document index, for `fn:doc` stability (same URI, same nodes).
    by_uri: HashMap<String, u32>,
    /// Count of nodes ever created, across all documents.
    nodes_created: u64,
    /// Set to a *globally unique* value (process-wide counter) whenever the
    /// set of addressable documents changes — a parse, or an ID-attribute
    /// registration that alters `id()` resolution.  Caches derived from
    /// document contents (e.g. the algebraic executor's rec-independent
    /// static cache) compare this to decide staleness.
    load_epoch: u64,
    /// Memo of [`NodeStore::lookup_id`] probes, one map per document, each
    /// tagged with the `Document::version` it was built against.  The
    /// fixpoint drivers probe the same handful of ID values once per
    /// iteration (and, in per-item workloads, once per seed); the memo
    /// answers repeats without re-touching the full `id_index`.
    /// Invalidation: the whole memo is dropped when
    /// [`NodeStore::load_epoch`] moves (`id_probe_epoch` records the epoch
    /// the memo was built under), and a single document's entries are
    /// dropped when its version tag no longer matches — i.e. whenever a
    /// refresh rebuilt the index, *whichever* store operation triggered it
    /// (doc-order queries refresh too, not just `lookup_id` itself).
    id_probe_cache: HashMap<u32, (u64, HashMap<String, Option<NodeId>>)>,
    /// The [`NodeStore::load_epoch`] value `id_probe_cache` is valid for.
    id_probe_epoch: u64,
    /// Lifetime count of probes answered from `id_probe_cache`.
    id_probe_hits: u64,
}

/// Process-wide source of [`NodeStore::load_epoch`] values.  Epochs being
/// globally unique — not per-store counters — means equal epochs imply the
/// same document set: a cache keyed on an epoch can never be fooled by a
/// *different* store that happens to have performed the same number of
/// loads.  (Epoch 0 is shared by stores that never loaded anything, which
/// all agree on the empty document set.)
static NEXT_LOAD_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_load_epoch() -> u64 {
    NEXT_LOAD_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl NodeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Total number of nodes ever created in this store (parsed plus
    /// constructed).  Useful for detecting runaway node construction in
    /// fixed point computations.
    pub fn nodes_created(&self) -> u64 {
        self.nodes_created
    }

    /// The store's document-load epoch: changes whenever a new document is
    /// parsed into the store or an ID-typed attribute is registered.
    ///
    /// Long-lived consumers that cache tables derived from document contents
    /// (notably the algebraic executor's rec-independent static cache)
    /// snapshot this value and invalidate when it moves — this is what makes
    /// it safe to keep one executor alive across many `execute()` calls while
    /// still seeing documents loaded after prepare.  Node *construction*
    /// (fragments built by element constructors) deliberately does not bump
    /// the epoch: constructed fragments are unreachable through `doc(…)`, and
    /// bumping per construction would defeat the cache for bodies that build
    /// nodes every iteration.
    pub fn load_epoch(&self) -> u64 {
        self.load_epoch
    }

    /// Number of documents (parsed or constructed fragments) in the store.
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    // ------------------------------------------------------------------
    // Document management
    // ------------------------------------------------------------------

    /// Create a fresh, empty document with a document node as its root.
    pub fn new_document(&mut self) -> DocId {
        let mut doc = Document::new();
        doc.push(NodeData {
            kind: NodeKind::Document,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes_created += 1;
        self.docs.push(doc);
        DocId(self.docs.len() as u32 - 1)
    }

    /// Create a fresh document *without* a document node; used for trees
    /// built by element constructors, whose roots are parentless elements.
    pub fn new_fragment(&mut self) -> DocId {
        self.docs.push(Document::new());
        DocId(self.docs.len() as u32 - 1)
    }

    /// Parse `text` as an XML document and add it to the store.
    pub fn parse_document(&mut self, text: &str) -> Result<DocId> {
        let doc = crate::parse::parse_into(self, text)?;
        self.load_epoch = fresh_load_epoch();
        Ok(doc)
    }

    /// Parse `text` and register it under `uri` so that subsequent
    /// [`NodeStore::doc`] calls with the same URI return the same nodes.
    pub fn parse_document_with_uri(&mut self, uri: &str, text: &str) -> Result<DocId> {
        if let Some(&idx) = self.by_uri.get(uri) {
            return Ok(DocId(idx));
        }
        let doc = crate::parse::parse_into(self, text)?;
        self.docs[doc.0 as usize].uri = Some(uri.to_string());
        self.by_uri.insert(uri.to_string(), doc.0);
        self.load_epoch = fresh_load_epoch();
        Ok(doc)
    }

    /// Look up a document previously registered under `uri`.
    pub fn doc(&self, uri: &str) -> Option<DocId> {
        self.by_uri.get(uri).map(|&idx| DocId(idx))
    }

    /// The URI a document was registered under, if any.
    pub fn document_uri(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc.0 as usize).and_then(|d| d.uri.as_deref())
    }

    /// The document node (node 0) of `doc`, if the document has one.
    pub fn document_node(&self, doc: DocId) -> Option<NodeId> {
        let d = self.docs.get(doc.0 as usize)?;
        match d.nodes.first() {
            Some(n) if matches!(n.kind, NodeKind::Document) => Some(NodeId::new(doc.0, 0)),
            _ => None,
        }
    }

    /// The root element of `doc` (the single element child of the document
    /// node), if any.
    pub fn document_element(&self, doc: DocId) -> Option<NodeId> {
        let root = self.document_node(doc)?;
        self.children(root)
            .into_iter()
            .find(|&c| self.kind(c).is_element())
    }

    /// Declare that attributes named `name` are ID-typed in `doc` (mirrors a
    /// DTD `#ID` declaration, e.g. `code` in the paper's curriculum data).
    pub fn register_id_attribute(&mut self, doc: DocId, name: &str) {
        if let Some(d) = self.docs.get_mut(doc.0 as usize) {
            if !d.id_attr_names.iter().any(|n| n == name) {
                d.id_attr_names.push(name.to_string());
                d.dirty = true;
                self.load_epoch = fresh_load_epoch();
            }
        }
    }

    /// Find the element in `doc` whose ID-typed attribute equals `value`.
    ///
    /// Probes are memoized per load-epoch: fixpoint iterations probing the
    /// same ID values over and over are answered from a per-document memo
    /// ([`NodeStore::id_probe_hits`] counts them), which is invalidated
    /// whenever [`NodeStore::load_epoch`] moves (new document, new ID
    /// attribute registration) and, per document, whenever the document is
    /// refreshed after a mutation.
    pub fn lookup_id(&mut self, doc: DocId, value: &str) -> Option<NodeId> {
        if self.id_probe_epoch != self.load_epoch {
            self.id_probe_cache.clear();
            self.id_probe_epoch = self.load_epoch;
        }
        let d = self.docs.get_mut(doc.0 as usize)?;
        d.refresh();
        // The memo is valid only for the index-rebuild generation it was
        // filled under.  Comparing versions (instead of checking `dirty`
        // here) also catches rebuilds triggered by *other* store
        // operations — a doc-order query between a mutation and this probe
        // refreshes the document without passing through `lookup_id`.
        let (version, memo) = self
            .id_probe_cache
            .entry(doc.0)
            .or_insert_with(|| (d.version, HashMap::new()));
        if *version != d.version {
            *version = d.version;
            memo.clear();
        }
        if let Some(&hit) = memo.get(value) {
            self.id_probe_hits += 1;
            return hit;
        }
        let found = d.id_index.get(value).map(|&n| NodeId::new(doc.0, n));
        memo.insert(value.to_string(), found);
        found
    }

    /// Lifetime count of [`NodeStore::lookup_id`] probes answered from the
    /// per-epoch memo instead of the document index.
    pub fn id_probe_hits(&self) -> u64 {
        self.id_probe_hits
    }

    // ------------------------------------------------------------------
    // Node construction
    // ------------------------------------------------------------------

    fn push_node(&mut self, doc: DocId, data: NodeData) -> NodeId {
        let d = &mut self.docs[doc.0 as usize];
        let idx = d.push(data);
        self.nodes_created += 1;
        NodeId::new(doc.0, idx)
    }

    /// Create an unattached element node in `doc`.
    pub fn create_element(&mut self, doc: DocId, name: QName) -> NodeId {
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Element(name),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached text node in `doc`.
    pub fn create_text(&mut self, doc: DocId, text: impl Into<String>) -> NodeId {
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Text(text.into()),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached comment node in `doc`.
    pub fn create_comment(&mut self, doc: DocId, text: impl Into<String>) -> NodeId {
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Comment(text.into()),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached processing-instruction node in `doc`.
    pub fn create_pi(
        &mut self,
        doc: DocId,
        target: impl Into<String>,
        content: impl Into<String>,
    ) -> NodeId {
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::ProcessingInstruction(target.into(), content.into()),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Attach `child` as the last child of `parent`.  Both must belong to the
    /// same document and `child` must not already have a parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        if parent.doc != child.doc {
            return Err(XdmError::WrongNodeKind(
                "append_child: parent and child belong to different documents".into(),
            ));
        }
        let d = &mut self.docs[parent.doc as usize];
        if d.nodes[child.node as usize].parent.is_some() {
            return Err(XdmError::WrongNodeKind(
                "append_child: child already has a parent".into(),
            ));
        }
        match d.nodes[parent.node as usize].kind {
            NodeKind::Element(_) | NodeKind::Document => {}
            _ => {
                return Err(XdmError::WrongNodeKind(format!(
                    "append_child: cannot add children to a {} node",
                    d.nodes[parent.node as usize].kind.kind_name()
                )))
            }
        }
        d.nodes[child.node as usize].parent = Some(parent.node);
        d.nodes[parent.node as usize].children.push(child.node);
        d.dirty = true;
        Ok(())
    }

    /// Add an attribute `name="value"` to element `element`.
    pub fn add_attribute(
        &mut self,
        element: NodeId,
        name: QName,
        value: impl Into<String>,
    ) -> Result<NodeId> {
        {
            let d = &self.docs[element.doc as usize];
            if !d.nodes[element.node as usize].kind.is_element() {
                return Err(XdmError::WrongNodeKind(
                    "add_attribute: target is not an element".into(),
                ));
            }
        }
        let attr = self.push_node(
            DocId(element.doc),
            NodeData {
                kind: NodeKind::Attribute(name, value.into()),
                parent: Some(element.node),
                children: Vec::new(),
                attributes: Vec::new(),
            },
        );
        let d = &mut self.docs[element.doc as usize];
        d.nodes[element.node as usize].attributes.push(attr.node);
        d.dirty = true;
        Ok(attr)
    }

    /// Deep-copy the subtree rooted at `node` into document `target`,
    /// returning the id of the copy's root.  Used by element constructors,
    /// which copy their content (new node identities!).
    pub fn deep_copy(&mut self, node: NodeId, target: DocId) -> NodeId {
        let kind = self.kind(node).clone();
        let copy = self.push_node(
            target,
            NodeData {
                kind,
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        );
        for attr in self.attributes(node) {
            if let NodeKind::Attribute(name, value) = self.kind(attr).clone() {
                // The copy's root is always an element here; ignore errors on
                // non-element kinds (they have no attributes to begin with).
                let _ = self.add_attribute(copy, name, value);
            }
        }
        for child in self.children(node) {
            let child_copy = self.deep_copy(child, target);
            let _ = self.append_child(copy, child_copy);
        }
        copy
    }

    // ------------------------------------------------------------------
    // Node inspection
    // ------------------------------------------------------------------

    fn data(&self, node: NodeId) -> &NodeData {
        &self.docs[node.doc as usize].nodes[node.node as usize]
    }

    /// `true` if `node` refers to an existing node of this store.
    pub fn contains(&self, node: NodeId) -> bool {
        self.docs
            .get(node.doc as usize)
            .map(|d| (node.node as usize) < d.nodes.len())
            .unwrap_or(false)
    }

    /// The node's kind and payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.data(node).kind
    }

    /// The node's name, if it has one (elements and attributes).
    pub fn name(&self, node: NodeId) -> Option<&QName> {
        self.data(node).kind.name()
    }

    /// The node's parent, if any.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.data(node).parent.map(|p| NodeId::new(node.doc, p))
    }

    /// The node's children (no attributes), in document order.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        self.data(node)
            .children
            .iter()
            .map(|&c| NodeId::new(node.doc, c))
            .collect()
    }

    /// The node's attribute nodes.
    pub fn attributes(&self, node: NodeId) -> Vec<NodeId> {
        self.data(node)
            .attributes
            .iter()
            .map(|&a| NodeId::new(node.doc, a))
            .collect()
    }

    /// The value of attribute `name` on element `node`, if present.
    pub fn attribute_value(&self, node: NodeId, name: &str) -> Option<&str> {
        for &a in &self.data(node).attributes {
            if let NodeKind::Attribute(qname, value) =
                &self.docs[node.doc as usize].nodes[a as usize].kind
            {
                if qname.matches_local(name) {
                    return Some(value);
                }
            }
        }
        None
    }

    /// The root of the tree containing `node` (the node with no parent).
    pub fn tree_root(&self, node: NodeId) -> NodeId {
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// The typed/string value of a node: for elements and documents the
    /// concatenation of all descendant text nodes, for attributes and text
    /// nodes their content, for comments and PIs their text.
    pub fn string_value(&self, node: NodeId) -> String {
        match self.kind(node) {
            NodeKind::Attribute(_, v) => v.clone(),
            NodeKind::Text(t) => t.clone(),
            NodeKind::Comment(c) => c.clone(),
            NodeKind::ProcessingInstruction(_, c) => c.clone(),
            NodeKind::Element(_) | NodeKind::Document => {
                let mut out = String::new();
                self.collect_text(node, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, node: NodeId, out: &mut String) {
        match self.kind(node) {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element(_) | NodeKind::Document => {
                for &c in &self.data(node).children {
                    self.collect_text(NodeId::new(node.doc, c), out);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Document order
    // ------------------------------------------------------------------

    fn order_rank(&mut self, node: NodeId) -> (u32, u32) {
        let d = &mut self.docs[node.doc as usize];
        d.refresh();
        (node.doc, d.order[node.node as usize])
    }

    /// Compare two nodes in document order.  Nodes of different documents are
    /// ordered by document creation order, which yields the stable total
    /// order the XDM requires.
    pub fn doc_order(&mut self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let ka = self.order_rank(a);
        let kb = self.order_rank(b);
        ka.cmp(&kb)
    }

    /// `true` when arena index order within `doc` coincides with document
    /// order.  Parsed documents always satisfy this (the parser appends
    /// nodes in pre-order); constructed fragments may not, if children were
    /// created before their parents.  [`crate::NodeSet::to_vec`] uses this
    /// to skip rank sorting on the fast path.
    pub fn index_order_is_document_order(&mut self, doc: DocId) -> bool {
        match self.docs.get_mut(doc.0 as usize) {
            Some(d) => {
                d.refresh();
                d.index_is_order
            }
            None => true,
        }
    }

    /// Sort `nodes` into document order and remove duplicates — the
    /// `fs:distinct-doc-order` operation of the XQuery Formal Semantics.
    pub fn sort_distinct(&mut self, nodes: &mut Vec<NodeId>) {
        if nodes.len() <= 1 {
            return;
        }
        // Refresh every involved document once, then sort by cached ranks.
        let mut keyed: Vec<((u32, u32), NodeId)> =
            nodes.iter().map(|&n| (self.order_rank(n), n)).collect();
        keyed.sort_by_key(|a| a.0);
        keyed.dedup_by(|a, b| a.1 == b.1);
        nodes.clear();
        nodes.extend(keyed.into_iter().map(|(_, n)| n));
    }

    // ------------------------------------------------------------------
    // Axes
    // ------------------------------------------------------------------

    /// All nodes reachable from `node` along `axis` that satisfy `test`,
    /// in the axis's natural order (document order for forward axes,
    /// reverse document order for reverse axes).
    pub fn axis_nodes(&self, node: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let mut out = Vec::new();
        match axis {
            Axis::Child => {
                // Iterate the arena's child list directly — no intermediate
                // `children()` vector on the hottest axis.
                for &c in &self.data(node).children {
                    self.push_if(NodeId::new(node.doc, c), axis, test, &mut out);
                }
            }
            Axis::Descendant => self.collect_descendants(node, axis, test, &mut out),
            Axis::DescendantOrSelf => {
                self.push_if(node, axis, test, &mut out);
                self.collect_descendants(node, axis, test, &mut out);
            }
            Axis::Parent => {
                if let Some(p) = self.parent(node) {
                    self.push_if(p, axis, test, &mut out);
                }
            }
            Axis::Ancestor => {
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    self.push_if(p, axis, test, &mut out);
                    cur = self.parent(p);
                }
            }
            Axis::AncestorOrSelf => {
                self.push_if(node, axis, test, &mut out);
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    self.push_if(p, axis, test, &mut out);
                    cur = self.parent(p);
                }
            }
            Axis::FollowingSibling => {
                if let Some(parent) = self.parent(node) {
                    let siblings = self.children(parent);
                    let mut seen_self = false;
                    for s in siblings {
                        if s == node {
                            seen_self = true;
                        } else if seen_self {
                            self.push_if(s, axis, test, &mut out);
                        }
                    }
                }
            }
            Axis::PrecedingSibling => {
                if let Some(parent) = self.parent(node) {
                    let siblings = self.children(parent);
                    let mut before = Vec::new();
                    for s in siblings {
                        if s == node {
                            break;
                        }
                        before.push(s);
                    }
                    for s in before.into_iter().rev() {
                        self.push_if(s, axis, test, &mut out);
                    }
                }
            }
            Axis::Following => {
                // Following siblings of self and of every ancestor, each with
                // their whole subtrees, in document order.
                let mut anchors = vec![node];
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    anchors.push(p);
                    cur = self.parent(p);
                }
                // Process outermost ancestors last so results stay in
                // document order relative to each anchor group.
                let mut groups: Vec<Vec<NodeId>> = Vec::new();
                for anchor in anchors {
                    let mut group = Vec::new();
                    for sib in self.axis_nodes(anchor, Axis::FollowingSibling, &NodeTest::AnyNode) {
                        self.push_if(sib, axis, test, &mut group);
                        self.collect_descendants(sib, axis, test, &mut group);
                    }
                    groups.push(group);
                }
                for group in groups {
                    out.extend(group);
                }
            }
            Axis::Preceding => {
                let mut anchors = vec![node];
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    anchors.push(p);
                    cur = self.parent(p);
                }
                for anchor in anchors {
                    for sib in self.axis_nodes(anchor, Axis::PrecedingSibling, &NodeTest::AnyNode) {
                        // Subtree of the preceding sibling, in reverse
                        // document order (deepest/last first).
                        let mut subtree = Vec::new();
                        self.push_if(sib, axis, test, &mut subtree);
                        self.collect_descendants(sib, axis, test, &mut subtree);
                        out.extend(subtree.into_iter().rev());
                    }
                }
            }
            Axis::Attribute => {
                for &a in &self.data(node).attributes {
                    self.push_if(NodeId::new(node.doc, a), axis, test, &mut out);
                }
            }
            Axis::SelfAxis => {
                self.push_if(node, axis, test, &mut out);
            }
        }
        out
    }

    fn push_if(&self, node: NodeId, axis: Axis, test: &NodeTest, out: &mut Vec<NodeId>) {
        if test.matches(axis, self.kind(node)) {
            out.push(node);
        }
    }

    fn collect_descendants(
        &self,
        node: NodeId,
        axis: Axis,
        test: &NodeTest,
        out: &mut Vec<NodeId>,
    ) {
        for &c in &self.data(node).children {
            let child = NodeId::new(node.doc, c);
            self.push_if(child, axis, test, out);
            self.collect_descendants(child, axis, test, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(store: &mut NodeStore) -> DocId {
        store
            .parse_document("<r><a id=\"a1\"><b/><c>hi</c></a><d><e/>tail</d></r>")
            .unwrap()
    }

    #[test]
    fn document_element_and_children() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.name(root).unwrap().local, "r");
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(kids.len(), 2);
        assert_eq!(store.name(kids[0]).unwrap().local, "a");
        assert_eq!(store.name(kids[1]).unwrap().local, "d");
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.string_value(root), "hitail");
    }

    #[test]
    fn attribute_lookup() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        assert_eq!(store.attribute_value(a, "id"), Some("a1"));
        assert_eq!(store.attribute_value(a, "missing"), None);
    }

    #[test]
    fn id_index_finds_elements() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let found = store.lookup_id(doc, "a1").unwrap();
        assert_eq!(store.name(found).unwrap().local, "a");
        assert_eq!(store.lookup_id(doc, "nope"), None);
    }

    #[test]
    fn registered_id_attribute_participates_in_index() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<curriculum><course code=\"c1\"/><course code=\"c2\"/></curriculum>")
            .unwrap();
        assert_eq!(store.lookup_id(doc, "c1"), None);
        store.register_id_attribute(doc, "code");
        let c1 = store.lookup_id(doc, "c1").unwrap();
        assert_eq!(store.attribute_value(c1, "code"), Some("c1"));
    }

    #[test]
    fn id_probe_cache_answers_repeats_and_invalidates_on_epoch_bump() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<curriculum><course code=\"c1\"/><course code=\"c2\"/></curriculum>")
            .unwrap();
        // Miss, cached: the second identical probe is a memo hit.
        assert_eq!(store.lookup_id(doc, "c1"), None);
        let hits = store.id_probe_hits();
        assert_eq!(store.lookup_id(doc, "c1"), None);
        assert_eq!(store.id_probe_hits(), hits + 1);

        // Registering an ID attribute bumps the load epoch: the stale
        // cached miss must NOT survive — the probe now finds the element.
        store.register_id_attribute(doc, "code");
        let c1 = store.lookup_id(doc, "c1").expect("cache was invalidated");
        assert_eq!(store.attribute_value(c1, "code"), Some("c1"));

        // Repeated hits after the rebuild come from the memo again.
        let hits = store.id_probe_hits();
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.id_probe_hits(), hits + 2);

        // Loading a new document bumps the epoch too; probes against the
        // old document still resolve correctly afterwards.
        let _ = store.parse_document("<x/>").unwrap();
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.lookup_id(doc, "c2"), store.lookup_id(doc, "c2"));
    }

    #[test]
    fn id_probe_cache_sees_same_epoch_document_mutation() {
        // Mutating a document (construction) marks it dirty without moving
        // the load epoch; the per-document memo entries must be dropped on
        // the next index rebuild so probes see the post-mutation index.
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a id=\"n1\"/></r>").unwrap();
        let n1 = store.lookup_id(doc, "n1").unwrap();
        assert_eq!(store.lookup_id(doc, "n2"), None); // cached miss
        let root = store.document_element(doc).unwrap();
        let fresh = store.create_element(doc, QName::local("b"));
        store
            .add_attribute(fresh, QName::local("id"), "n2")
            .unwrap();
        store.append_child(root, fresh).unwrap();
        assert_eq!(store.lookup_id(doc, "n2"), Some(fresh), "miss not stale");
        assert_eq!(store.lookup_id(doc, "n1"), Some(n1));

        // The treacherous interleaving: mutate, then let a *different*
        // store operation (a doc-order comparison, as the fixpoint drivers
        // issue between iterations) trigger the refresh, then probe.  The
        // memo's version tag — not the dirty flag — must catch this.
        assert_eq!(store.lookup_id(doc, "n3"), None); // cached miss
        let later = store.create_element(doc, QName::local("c"));
        store
            .add_attribute(later, QName::local("id"), "n3")
            .unwrap();
        store.append_child(root, later).unwrap();
        let _ = store.doc_order(root, fresh); // refreshes, clears dirty
        assert_eq!(
            store.lookup_id(doc, "n3"),
            Some(later),
            "externally triggered refresh must invalidate the memo"
        );
    }

    #[test]
    fn doc_order_is_preorder_with_attributes_before_children() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let attr = store.axis_nodes(a, Axis::Attribute, &NodeTest::AnyElement)[0];
        let b = store.axis_nodes(a, Axis::Child, &NodeTest::Name("b".into()))[0];
        assert_eq!(store.doc_order(root, a), Ordering::Less);
        assert_eq!(store.doc_order(a, attr), Ordering::Less);
        assert_eq!(store.doc_order(attr, b), Ordering::Less);
        assert_eq!(store.doc_order(b, b), Ordering::Equal);
    }

    #[test]
    fn doc_order_across_documents_follows_creation_order() {
        let mut store = NodeStore::new();
        let d1 = store.parse_document("<x/>").unwrap();
        let d2 = store.parse_document("<y/>").unwrap();
        let x = store.document_element(d1).unwrap();
        let y = store.document_element(d2).unwrap();
        assert_eq!(store.doc_order(x, y), Ordering::Less);
        assert_eq!(store.doc_order(y, x), Ordering::Greater);
    }

    #[test]
    fn sort_distinct_removes_duplicates_and_orders() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let all = store.axis_nodes(root, Axis::Descendant, &NodeTest::AnyElement);
        let mut shuffled: Vec<NodeId> = all.iter().rev().cloned().collect();
        shuffled.extend(all.iter().cloned());
        store.sort_distinct(&mut shuffled);
        assert_eq!(shuffled, all);
    }

    #[test]
    fn descendant_and_ancestor_axes() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let descendants = store.axis_nodes(root, Axis::Descendant, &NodeTest::AnyElement);
        let names: Vec<_> = descendants
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);

        let e = descendants[4];
        let ancestors = store.axis_nodes(e, Axis::Ancestor, &NodeTest::AnyNode);
        let anames: Vec<_> = ancestors
            .iter()
            .map(|&n| store.kind(n).kind_name().to_string())
            .collect();
        // d, r, document — innermost first.
        assert_eq!(anames, vec!["element", "element", "document"]);
    }

    #[test]
    fn sibling_axes() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
        let (a, d) = (kids[0], kids[1]);
        assert_eq!(
            store.axis_nodes(a, Axis::FollowingSibling, &NodeTest::AnyElement),
            vec![d]
        );
        assert_eq!(
            store.axis_nodes(d, Axis::PrecedingSibling, &NodeTest::AnyElement),
            vec![a]
        );
        assert!(store
            .axis_nodes(a, Axis::PrecedingSibling, &NodeTest::AnyElement)
            .is_empty());
    }

    #[test]
    fn following_and_preceding_axes() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<r><a><b/></a><c><d/></c></r>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let b = store.axis_nodes(a, Axis::Child, &NodeTest::Name("b".into()))[0];
        let following = store.axis_nodes(b, Axis::Following, &NodeTest::AnyElement);
        let names: Vec<_> = following
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        assert_eq!(names, vec!["c", "d"]);

        let d = following[1];
        let preceding = store.axis_nodes(d, Axis::Preceding, &NodeTest::AnyElement);
        let pnames: Vec<_> = preceding
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        // Reverse document order: b then a.
        assert_eq!(pnames, vec!["b", "a"]);
    }

    #[test]
    fn constructed_nodes_get_fresh_identity() {
        let mut store = NodeStore::new();
        let frag = store.new_fragment();
        let e1 = store.create_element(frag, QName::local("p"));
        let frag2 = store.new_fragment();
        let e2 = store.create_element(frag2, QName::local("p"));
        assert_ne!(e1, e2);
        assert_eq!(store.doc_order(e1, e2), Ordering::Less);
    }

    #[test]
    fn deep_copy_creates_new_identities_with_same_content() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let frag = store.new_fragment();
        let copy = store.deep_copy(a, frag);
        assert_ne!(copy, a);
        assert_eq!(store.string_value(copy), store.string_value(a));
        assert_eq!(store.attribute_value(copy, "id"), Some("a1"));
        let copy_children = store.axis_nodes(copy, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(copy_children.len(), 2);
    }

    #[test]
    fn append_child_rejects_cross_document_and_reparenting() {
        let mut store = NodeStore::new();
        let f1 = store.new_fragment();
        let f2 = store.new_fragment();
        let p = store.create_element(f1, QName::local("p"));
        let q = store.create_element(f2, QName::local("q"));
        assert!(store.append_child(p, q).is_err());

        let r = store.create_element(f1, QName::local("r"));
        store.append_child(p, r).unwrap();
        let p2 = store.create_element(f1, QName::local("p2"));
        assert!(store.append_child(p2, r).is_err());
    }
}
