//! The node store: an arena of documents and their nodes.
//!
//! Every XML tree a query run touches — parsed documents as well as trees
//! created by node constructors — lives inside a single [`NodeStore`].  This
//! gives the engine:
//!
//! * **stable node identity**: a [`NodeId`] never changes or gets reused;
//! * a **total document order** across all documents (documents are ordered
//!   by creation, nodes within a document by pre-order position, with
//!   attribute nodes ordered after their owner element and before its
//!   children, as prescribed by the XDM);
//! * cheap, index-based navigation for all XPath axes.
//!
//! Trees are mutable while they are being built (constructors append children
//! one by one); document-order ranks and the ID index are recomputed lazily
//! whenever a document has been mutated since the last query.
//!
//! # Sharing a store across threads
//!
//! Node data itself (`NodeData`, parent/child links, attribute payloads) is
//! only ever mutated through `&mut NodeStore`, so shared references never
//! race on it.  The *derived* per-document state — document-order ranks and
//! the ID index, which are rebuilt lazily on first access after a mutation —
//! lives behind a per-document `RwLock`, and the `id()` probe memo behind a
//! `Mutex`, so every read-only operation (document order, `sort_distinct`,
//! ID lookup) works through `&NodeStore`.  `NodeStore` is therefore [`Sync`]
//! and a frozen [`StoreSnapshot`] can be handed to a scoped thread pool; see
//! [`NodeStore::pin`] / [`NodeStore::snapshot`] for the freeze protocol.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use crate::error::XdmError;
use crate::intern::{StrId, TextPool};
use crate::node::{Axis, NodeId, NodeKind, NodeTest, QName};
use crate::value::UText;
use crate::Result;

/// Identifier of a document inside a [`NodeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Per-node data held in the document arena.
#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<u32>,
    /// Child nodes (elements, text, comments, PIs) in document order.
    children: Vec<u32>,
    /// Attribute nodes of an element.
    attributes: Vec<u32>,
}

/// Lazily rebuilt per-document state: document-order ranks and the ID
/// index.  Kept behind a `RwLock` so the rebuild can happen through a
/// shared `&NodeStore` reference (readers of an up-to-date document take
/// the read lock only).
#[derive(Debug, Clone)]
struct Derived {
    /// `order[i]` is the document-order rank of node `i`.
    order: Vec<u32>,
    /// Map from ID value (as its text-pool symbol) to the first element
    /// carrying it.  Keying on [`StrId`] makes the rebuild allocation-free:
    /// attribute payloads already carry their symbols.
    id_index: HashMap<StrId, u32>,
    /// Set when the document has been mutated since the last rebuild.
    dirty: bool,
    /// `true` when arena index order coincides with document order (always
    /// the case for parsed documents; constructed fragments may diverge).
    /// Lets [`crate::NodeSet`] emit document order straight from its bitmaps.
    index_is_order: bool,
    /// Bumped every time a rebuild actually happens.  Caches of
    /// per-document derived state (the store's `id()` probe memo) compare
    /// this to detect that a rebuild happened — regardless of *which* store
    /// operation triggered it.
    version: u64,
}

impl Derived {
    fn new() -> Self {
        Derived {
            order: Vec::new(),
            id_index: HashMap::new(),
            dirty: true,
            index_is_order: true,
            version: 0,
        }
    }
}

/// Take a lock even if a previous holder panicked: the guarded data is
/// rebuilt-from-scratch derived state (or a memo), so a half-finished
/// update is repaired by the `dirty` / version protocol, not poisoned.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// A single document (or constructed tree fragment) in the store.
#[derive(Debug)]
struct Document {
    nodes: Vec<NodeData>,
    /// Attribute names treated as ID-typed (in addition to `xml:id`/`id`).
    id_attr_names: Vec<String>,
    /// Optional URI this document was loaded under (used by `fn:doc`).
    /// Shares one allocation with the store's `by_uri` key.
    uri: Option<Arc<str>>,
    /// Lazily recomputed order ranks / ID index; see [`Derived`].
    derived: RwLock<Derived>,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Document {
            nodes: self.nodes.clone(),
            id_attr_names: self.id_attr_names.clone(),
            uri: self.uri.clone(),
            derived: RwLock::new(read_lock(&self.derived).clone()),
        }
    }
}

impl Document {
    fn new() -> Self {
        Document {
            nodes: Vec::new(),
            id_attr_names: Vec::new(),
            uri: None,
            derived: RwLock::new(Derived::new()),
        }
    }

    fn push(&mut self, data: NodeData) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(data);
        self.mark_dirty();
        idx
    }

    /// Flag the derived state as stale.  Only callable with exclusive
    /// access, so this never contends with concurrent readers.
    fn mark_dirty(&mut self) {
        self.derived
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .dirty = true;
    }

    /// The up-to-date derived state, rebuilding it first if the document
    /// was mutated since the last rebuild.  Works through `&self`: readers
    /// of a clean document share a read lock; the first reader after a
    /// mutation takes the write lock and rebuilds.  (std's `RwLock` cannot
    /// downgrade a write guard, hence the re-acquire loop; a racing second
    /// rebuild attempt sees `dirty == false` and skips.)
    fn derived(&self) -> RwLockReadGuard<'_, Derived> {
        loop {
            let guard = read_lock(&self.derived);
            if !guard.dirty {
                return guard;
            }
            drop(guard);
            let mut guard = self.derived.write().unwrap_or_else(|e| e.into_inner());
            if guard.dirty {
                rebuild_derived(&self.nodes, &self.id_attr_names, &mut guard);
            }
        }
    }
}

/// Rebuild `derived` from the node arena (order ranks, `index_is_order`,
/// ID index), bumping its version tag.
fn rebuild_derived(nodes: &[NodeData], id_attr_names: &[String], derived: &mut Derived) {
    derived.version += 1;
    derived.order = vec![0; nodes.len()];
    derived.id_index.clear();
    if !nodes.is_empty() {
        let mut rank = 0u32;
        // Every node that has no parent is a root of its own fragment;
        // fragments are ordered by arena index of their roots.
        for root in 0..nodes.len() as u32 {
            if nodes[root as usize].parent.is_none() {
                assign_order(nodes, &mut derived.order, root, &mut rank);
            }
        }
    }
    derived.index_is_order = derived.order.windows(2).all(|w| w[0] < w[1]);
    rebuild_id_index(nodes, id_attr_names, &mut derived.id_index);
    derived.dirty = false;
}

fn assign_order(nodes: &[NodeData], order: &mut [u32], node: u32, rank: &mut u32) {
    order[node as usize] = *rank;
    *rank += 1;
    for &a in &nodes[node as usize].attributes {
        order[a as usize] = *rank;
        *rank += 1;
    }
    for &c in &nodes[node as usize].children {
        assign_order(nodes, order, c, rank);
    }
}

fn rebuild_id_index(
    nodes: &[NodeData],
    id_attr_names: &[String],
    id_index: &mut HashMap<StrId, u32>,
) {
    for (idx, node) in nodes.iter().enumerate() {
        if !node.kind.is_element() {
            continue;
        }
        for &attr in &node.attributes {
            if let NodeKind::Attribute(name, value) = &nodes[attr as usize].kind {
                // `id` matches both the unprefixed and the `xml:id`
                // spelling (prefixes are not significant here).
                let is_id = name.local == "id" || id_attr_names.iter().any(|n| n == &name.local);
                if is_id {
                    id_index.entry(*value).or_insert(idx as u32);
                }
            }
        }
    }
}

/// Memo of [`NodeStore::lookup_id`] probes, one map per document, each
/// tagged with the `Derived::version` it was built against; see the field
/// documentation on [`NodeStore`].
#[derive(Debug, Default, Clone)]
struct IdProbeCache {
    /// The [`NodeStore::load_epoch`] value the memo is valid for.
    epoch: u64,
    /// Keyed on the probed value's text-pool symbol, so a repeated probe
    /// neither allocates on hit *nor* on miss.
    per_doc: HashMap<u32, (u64, HashMap<StrId, Option<NodeId>>)>,
}

/// Memo of element/document `string_value` concatenations, one map per
/// document, each tagged with the `Derived::version` it was built against —
/// the same invalidation protocol as [`IdProbeCache`]: entries survive
/// exactly as long as the document's derived state, whichever store
/// operation triggered the rebuild.
#[derive(Debug, Default, Clone)]
struct TextMemoCache {
    per_doc: HashMap<u32, (u64, HashMap<u32, Arc<str>>)>,
}

/// A node's string value without a forced render: borrowed straight from
/// the store's text pool (leaf payloads, single-text-child elements), or a
/// shared handle on a memoized element/document concatenation.
///
/// Derefs to `str`; call [`into_string`](StrView::into_string) when an
/// owned `String` is genuinely required.
#[derive(Debug, Clone)]
pub enum StrView<'s> {
    /// Borrowed from the store (text pool entry, or the static `""`).
    Borrowed(&'s str),
    /// A shared handle on a memoized concatenation.
    Shared(Arc<str>),
}

impl StrView<'_> {
    /// The text as a borrowed slice.
    pub fn as_str(&self) -> &str {
        match self {
            StrView::Borrowed(s) => s,
            StrView::Shared(s) => s,
        }
    }

    /// Render to an owned `String` (the one place a copy happens).
    pub fn into_string(self) -> String {
        match self {
            StrView::Borrowed(s) => s.to_string(),
            StrView::Shared(s) => s.as_ref().to_string(),
        }
    }
}

impl std::ops::Deref for StrView<'_> {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for StrView<'_> {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl std::fmt::Display for StrView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Internal classification of an element/document string value; the public
/// views ([`StrView`], [`UText`]) are cut from this.
enum ContainerText {
    /// No text descendants at all.
    Empty,
    /// Exactly one text child — its pool symbol, no concatenation needed.
    Sym(StrId),
    /// A genuine concatenation (usually from the per-document memo).
    Concat(Arc<str>),
}

/// The arena owning every document and node of a query run.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug, Default)]
pub struct NodeStore {
    docs: Vec<Document>,
    /// URI → document index, for `fn:doc` stability (same URI, same nodes).
    /// Keys share their allocation with `Document::uri`.
    by_uri: HashMap<Arc<str>, u32>,
    /// The store-owned text payload pool: every text-shaped payload
    /// (attribute values, text/comment content, PI targets and content) is
    /// interned here at creation time and carried in [`NodeKind`] as a
    /// [`StrId`].  `Arc`-shared, so cloning the store (the service layer's
    /// `publish()`) shares the table instead of copying every string.
    text: TextPool,
    /// Count of nodes ever created, across all documents.
    nodes_created: u64,
    /// Set to a *globally unique* value (process-wide counter) whenever the
    /// set of addressable documents changes — a parse, or an ID-attribute
    /// registration that alters `id()` resolution.  Caches derived from
    /// document contents (e.g. the algebraic executor's rec-independent
    /// static cache) compare this to decide staleness.
    load_epoch: u64,
    /// Bumped by **every** mutating method (node construction, attachment,
    /// parses, ID registrations).  Unlike `load_epoch` (which deliberately
    /// ignores construction) and the per-document `Derived::version` (which
    /// can move during a read-triggered lazy rebuild), this counter moves
    /// exactly when the store's node data could have changed — it is the
    /// staleness boundary the [`SnapshotPin`] / [`StoreSnapshot`] freeze
    /// protocol validates against.
    revision: u64,
    /// Memo of [`NodeStore::lookup_id`] probes, one map per document, each
    /// tagged with the `Derived::version` it was built against.  The
    /// fixpoint drivers probe the same handful of ID values once per
    /// iteration (and, in per-item workloads, once per seed); the memo
    /// answers repeats without re-touching the full `id_index`.
    /// Invalidation: the whole memo is dropped when
    /// [`NodeStore::load_epoch`] moves (`IdProbeCache::epoch` records the
    /// epoch the memo was built under), and a single document's entries are
    /// dropped when its version tag no longer matches — i.e. whenever a
    /// rebuild happened, *whichever* store operation triggered it
    /// (doc-order queries refresh too, not just `lookup_id` itself).
    /// Behind a `Mutex` so probes work from shared (snapshot) read paths.
    id_probe: Mutex<IdProbeCache>,
    /// Lifetime count of probes answered from the memo.  Atomic for the
    /// same reason the memo is locked; the counter is monotonic telemetry,
    /// so `Relaxed` ordering suffices.
    id_probe_hits: AtomicU64,
    /// Memo of element/document `string_value` concatenations — atomizing
    /// the same element across fixpoint iterations re-renders nothing.
    /// Invalidated per document by the `Derived::version` tag (see
    /// [`TextMemoCache`]); behind a `Mutex` for the same reason as
    /// `id_probe`.
    text_memo: Mutex<TextMemoCache>,
    /// Memo of [`NodeStore::statistics`], keyed on the revision it was
    /// computed at (`StoreStatistics::revision`).  Behind a `Mutex` so the
    /// cost model can pull statistics through shared (snapshot) reads.
    stats_memo: Mutex<Option<Arc<crate::stats::StoreStatistics>>>,
}

impl Clone for NodeStore {
    fn clone(&self) -> Self {
        NodeStore {
            docs: self.docs.clone(),
            by_uri: self.by_uri.clone(),
            // O(1): the clone shares the payload table until either side
            // interns a new string (see [`TextPool`]).
            text: self.text.clone(),
            nodes_created: self.nodes_created,
            load_epoch: self.load_epoch,
            revision: self.revision,
            id_probe: Mutex::new(mutex_lock(&self.id_probe).clone()),
            id_probe_hits: AtomicU64::new(
                self.id_probe_hits
                    .load(std::sync::atomic::Ordering::Relaxed),
            ),
            text_memo: Mutex::new(mutex_lock(&self.text_memo).clone()),
            stats_memo: Mutex::new(mutex_lock(&self.stats_memo).clone()),
        }
    }
}

/// Process-wide source of [`NodeStore::load_epoch`] values.  Epochs being
/// globally unique — not per-store counters — means equal epochs imply the
/// same document set: a cache keyed on an epoch can never be fooled by a
/// *different* store that happens to have performed the same number of
/// loads.  (Epoch 0 is shared by stores that never loaded anything, which
/// all agree on the empty document set.)
///
/// Memory ordering: `Relaxed` is deliberate and load-bearing.  The counter
/// provides *uniqueness only* — no thread ever reads another thread's epoch
/// value through this atomic to synchronize with other memory.  An epoch
/// becomes visible to other threads only as a plain field of a store (or a
/// snapshot pinned from it), and whatever mechanism hands that store across
/// threads (scoped-thread spawn, mutex, channel) supplies the
/// happens-before edge.  Stronger orderings here would buy nothing.
static NEXT_LOAD_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_load_epoch() -> u64 {
    NEXT_LOAD_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl NodeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Total number of nodes ever created in this store (parsed plus
    /// constructed).  Useful for detecting runaway node construction in
    /// fixed point computations.
    pub fn nodes_created(&self) -> u64 {
        self.nodes_created
    }

    /// The store's document-load epoch: changes whenever a new document is
    /// parsed into the store or an ID-typed attribute is registered.
    ///
    /// Long-lived consumers that cache tables derived from document contents
    /// (notably the algebraic executor's rec-independent static cache)
    /// snapshot this value and invalidate when it moves — this is what makes
    /// it safe to keep one executor alive across many `execute()` calls while
    /// still seeing documents loaded after prepare.  Node *construction*
    /// (fragments built by element constructors) deliberately does not bump
    /// the epoch: constructed fragments are unreachable through `doc(…)`, and
    /// bumping per construction would defeat the cache for bodies that build
    /// nodes every iteration.
    pub fn load_epoch(&self) -> u64 {
        self.load_epoch
    }

    /// The store's mutation revision: bumped by every mutating method.
    /// This is the staleness boundary of the snapshot freeze protocol —
    /// see [`NodeStore::pin`].
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of documents (parsed or constructed fragments) in the store.
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    // ------------------------------------------------------------------
    // Document management
    // ------------------------------------------------------------------

    /// Create a fresh, empty document with a document node as its root.
    pub fn new_document(&mut self) -> DocId {
        let mut doc = Document::new();
        doc.push(NodeData {
            kind: NodeKind::Document,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes_created += 1;
        self.revision += 1;
        self.docs.push(doc);
        DocId(self.docs.len() as u32 - 1)
    }

    /// Create a fresh document *without* a document node; used for trees
    /// built by element constructors, whose roots are parentless elements.
    pub fn new_fragment(&mut self) -> DocId {
        self.docs.push(Document::new());
        self.revision += 1;
        DocId(self.docs.len() as u32 - 1)
    }

    /// Parse `text` as an XML document and add it to the store.
    pub fn parse_document(&mut self, text: &str) -> Result<DocId> {
        let doc = crate::parse::parse_into(self, text)?;
        self.load_epoch = fresh_load_epoch();
        self.revision += 1;
        Ok(doc)
    }

    /// Parse `text` and register it under `uri` so that subsequent
    /// [`NodeStore::doc`] calls with the same URI return the same nodes.
    pub fn parse_document_with_uri(&mut self, uri: &str, text: &str) -> Result<DocId> {
        if let Some(&idx) = self.by_uri.get(uri) {
            return Ok(DocId(idx));
        }
        let doc = crate::parse::parse_into(self, text)?;
        // One allocation, shared by the document record and the URI index.
        let uri: Arc<str> = Arc::from(uri);
        self.docs[doc.0 as usize].uri = Some(uri.clone());
        self.by_uri.insert(uri, doc.0);
        self.load_epoch = fresh_load_epoch();
        self.revision += 1;
        Ok(doc)
    }

    /// Look up a document previously registered under `uri`.
    pub fn doc(&self, uri: &str) -> Option<DocId> {
        self.by_uri.get(uri).map(|&idx| DocId(idx))
    }

    /// The URI a document was registered under, if any.
    pub fn document_uri(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc.0 as usize).and_then(|d| d.uri.as_deref())
    }

    /// The document node (node 0) of `doc`, if the document has one.
    pub fn document_node(&self, doc: DocId) -> Option<NodeId> {
        let d = self.docs.get(doc.0 as usize)?;
        match d.nodes.first() {
            Some(n) if matches!(n.kind, NodeKind::Document) => Some(NodeId::new(doc.0, 0)),
            _ => None,
        }
    }

    /// The root element of `doc` (the single element child of the document
    /// node), if any.
    pub fn document_element(&self, doc: DocId) -> Option<NodeId> {
        let root = self.document_node(doc)?;
        self.children(root)
            .into_iter()
            .find(|&c| self.kind(c).is_element())
    }

    /// Declare that attributes named `name` are ID-typed in `doc` (mirrors a
    /// DTD `#ID` declaration, e.g. `code` in the paper's curriculum data).
    pub fn register_id_attribute(&mut self, doc: DocId, name: &str) {
        if let Some(d) = self.docs.get_mut(doc.0 as usize) {
            if !d.id_attr_names.iter().any(|n| n == name) {
                d.id_attr_names.push(name.to_string());
                d.mark_dirty();
                self.load_epoch = fresh_load_epoch();
                self.revision += 1;
            }
        }
    }

    /// Find the element in `doc` whose ID-typed attribute equals `value`.
    ///
    /// Probes are memoized per load-epoch: fixpoint iterations probing the
    /// same ID values over and over are answered from a per-document memo
    /// ([`NodeStore::id_probe_hits`] counts them), which is invalidated
    /// whenever [`NodeStore::load_epoch`] moves (new document, new ID
    /// attribute registration) and, per document, whenever the document is
    /// refreshed after a mutation.  The memo lives behind a `Mutex`, so
    /// probes work from shared references — including snapshot reads from
    /// multiple threads.
    pub fn lookup_id(&self, doc: DocId, value: &str) -> Option<NodeId> {
        let d = self.docs.get(doc.0 as usize)?;
        let derived = d.derived();
        // Every `id_index` key is an attribute payload, and every attribute
        // payload lives in the text pool — so a value the pool has never
        // seen cannot match, and the whole probe (memo included) can key on
        // the pool symbol instead of allocating the probed string.
        let sym = self.text.get(value)?;
        // Under concurrent snapshot readers the memo's mutex would be a
        // store-wide serialization point; the derived ID index answers in
        // O(1) anyway, so a contended probe skips the memo instead of
        // queueing on it.  Single-threaded probes (and their hit counter)
        // are unaffected.
        let mut probe = match self.id_probe.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                return derived.id_index.get(&sym).map(|&n| NodeId::new(doc.0, n));
            }
        };
        if probe.epoch != self.load_epoch {
            probe.per_doc.clear();
            probe.epoch = self.load_epoch;
        }
        // The memo is valid only for the index-rebuild generation it was
        // filled under.  Comparing versions (instead of checking `dirty`
        // here) also catches rebuilds triggered by *other* store
        // operations — a doc-order query between a mutation and this probe
        // refreshes the document without passing through `lookup_id`.
        let (version, memo) = probe
            .per_doc
            .entry(doc.0)
            .or_insert_with(|| (derived.version, HashMap::new()));
        if *version != derived.version {
            *version = derived.version;
            memo.clear();
        }
        if let Some(&hit) = memo.get(&sym) {
            self.id_probe_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return hit;
        }
        let found = derived.id_index.get(&sym).map(|&n| NodeId::new(doc.0, n));
        memo.insert(sym, found);
        found
    }

    /// Lifetime count of [`NodeStore::lookup_id`] probes answered from the
    /// per-epoch memo instead of the document index.
    pub fn id_probe_hits(&self) -> u64 {
        self.id_probe_hits
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drop the store's recomputable memos (string-value concatenations and
    /// `id()` probe entries), returning an estimate of the bytes freed.
    ///
    /// This is the store's contribution to budget *relief* (see
    /// [`crate::budget`]): under memory pressure a driver trades these
    /// caches — repopulated lazily, at recompute cost — for headroom before
    /// failing the query.  Works through `&self`; concurrent readers simply
    /// see cold memos afterwards.
    pub fn release_memory(&self) -> u64 {
        let mut freed = 0u64;
        {
            let mut memo = mutex_lock(&self.text_memo);
            for (_, (_, map)) in memo.per_doc.iter() {
                for arc in map.values() {
                    freed += arc.len() as u64 + 64;
                }
            }
            memo.per_doc.clear();
        }
        {
            let mut probe = mutex_lock(&self.id_probe);
            for (_, (_, map)) in probe.per_doc.iter() {
                freed += map.len() as u64 * 64;
            }
            probe.per_doc.clear();
        }
        freed
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Shape statistics over every document in the store: node counts per
    /// kind, child-axis fanout, tree depth, `id()` index density and
    /// text-pool size.  Computed once per [`NodeStore::revision`] and
    /// memoized (the walk is `O(nodes)`), so the cost model can call this
    /// on every execution.  Works through `&self` — snapshot readers share
    /// the memo.
    pub fn statistics(&self) -> Arc<crate::stats::StoreStatistics> {
        {
            let memo = mutex_lock(&self.stats_memo);
            if let Some(stats) = memo.as_ref() {
                if stats.revision == self.revision {
                    return Arc::clone(stats);
                }
            }
        }
        let stats = Arc::new(self.compute_statistics());
        *mutex_lock(&self.stats_memo) = Some(Arc::clone(&stats));
        stats
    }

    fn compute_statistics(&self) -> crate::stats::StoreStatistics {
        use crate::stats::{DocumentStatistics, StoreStatistics};
        let mut out = StoreStatistics {
            revision: self.revision,
            documents: self.docs.len() as u64,
            per_document: Vec::with_capacity(self.docs.len()),
            totals: DocumentStatistics::default(),
            text_pool_strings: self.text.len() as u64,
        };
        for doc in &self.docs {
            let mut d = DocumentStatistics {
                nodes: doc.nodes.len() as u64,
                id_entries: doc.derived().id_index.len() as u64,
                ..Default::default()
            };
            for node in &doc.nodes {
                match node.kind {
                    NodeKind::Element(_) => d.elements += 1,
                    NodeKind::Attribute(..) => d.attributes += 1,
                    NodeKind::Text(_) => d.text_nodes += 1,
                    _ => {}
                }
                let fanout = node.children.len() as u64;
                if fanout > 0 {
                    d.parents += 1;
                    d.child_links += fanout;
                    d.max_fanout = d.max_fanout.max(fanout);
                }
            }
            // Depth via DFS along child links from each parentless root;
            // attributes count as nodes but not as depth.
            let mut stack: Vec<(u32, u64)> = (0..doc.nodes.len() as u32)
                .filter(|&i| doc.nodes[i as usize].parent.is_none())
                .map(|i| (i, 0))
                .collect();
            while let Some((idx, depth)) = stack.pop() {
                d.max_depth = d.max_depth.max(depth);
                for &c in &doc.nodes[idx as usize].children {
                    stack.push((c, depth + 1));
                }
            }
            out.totals.absorb(&d);
            out.per_document.push(d);
        }
        out
    }

    // ------------------------------------------------------------------
    // Node construction
    // ------------------------------------------------------------------

    fn push_node(&mut self, doc: DocId, data: NodeData) -> NodeId {
        // Node construction is the arena growth point: charge the per-node
        // footprint (arena slot + parent-children backlink) against any
        // installed per-query budget.
        crate::budget::charge(std::mem::size_of::<NodeData>() as u64 + 8);
        let d = &mut self.docs[doc.0 as usize];
        let idx = d.push(data);
        self.nodes_created += 1;
        self.revision += 1;
        NodeId::new(doc.0, idx)
    }

    /// Create an unattached element node in `doc`.
    pub fn create_element(&mut self, doc: DocId, name: QName) -> NodeId {
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Element(name),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached text node in `doc` (the content is interned
    /// into the store's text pool).
    pub fn create_text(&mut self, doc: DocId, text: impl AsRef<str>) -> NodeId {
        let sym = self.text.intern(text.as_ref());
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Text(sym),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached comment node in `doc`.
    pub fn create_comment(&mut self, doc: DocId, text: impl AsRef<str>) -> NodeId {
        let sym = self.text.intern(text.as_ref());
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::Comment(sym),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Create an unattached processing-instruction node in `doc`.
    pub fn create_pi(
        &mut self,
        doc: DocId,
        target: impl AsRef<str>,
        content: impl AsRef<str>,
    ) -> NodeId {
        let target = self.text.intern(target.as_ref());
        let content = self.text.intern(content.as_ref());
        self.push_node(
            doc,
            NodeData {
                kind: NodeKind::ProcessingInstruction(target, content),
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        )
    }

    /// Attach `child` as the last child of `parent`.  Both must belong to the
    /// same document and `child` must not already have a parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        if parent.doc != child.doc {
            return Err(XdmError::WrongNodeKind(
                "append_child: parent and child belong to different documents".into(),
            ));
        }
        let d = &mut self.docs[parent.doc as usize];
        if d.nodes[child.node as usize].parent.is_some() {
            return Err(XdmError::WrongNodeKind(
                "append_child: child already has a parent".into(),
            ));
        }
        match d.nodes[parent.node as usize].kind {
            NodeKind::Element(_) | NodeKind::Document => {}
            _ => {
                return Err(XdmError::WrongNodeKind(format!(
                    "append_child: cannot add children to a {} node",
                    d.nodes[parent.node as usize].kind.kind_name()
                )))
            }
        }
        d.nodes[child.node as usize].parent = Some(parent.node);
        d.nodes[parent.node as usize].children.push(child.node);
        d.mark_dirty();
        self.revision += 1;
        Ok(())
    }

    /// Add an attribute `name="value"` to element `element` (the value is
    /// interned into the store's text pool).
    pub fn add_attribute(
        &mut self,
        element: NodeId,
        name: QName,
        value: impl AsRef<str>,
    ) -> Result<NodeId> {
        let sym = self.text.intern(value.as_ref());
        self.add_attribute_interned(element, name, sym)
    }

    /// Add an attribute whose value is already a symbol of this store's
    /// text pool — the allocation-free path `deep_copy` and constructor
    /// re-attachment take.
    pub fn add_attribute_interned(
        &mut self,
        element: NodeId,
        name: QName,
        value: StrId,
    ) -> Result<NodeId> {
        {
            let d = &self.docs[element.doc as usize];
            if !d.nodes[element.node as usize].kind.is_element() {
                return Err(XdmError::WrongNodeKind(
                    "add_attribute: target is not an element".into(),
                ));
            }
        }
        let attr = self.push_node(
            DocId(element.doc),
            NodeData {
                kind: NodeKind::Attribute(name, value),
                parent: Some(element.node),
                children: Vec::new(),
                attributes: Vec::new(),
            },
        );
        let d = &mut self.docs[element.doc as usize];
        d.nodes[element.node as usize].attributes.push(attr.node);
        d.mark_dirty();
        self.revision += 1;
        Ok(attr)
    }

    /// Deep-copy the subtree rooted at `node` into document `target`,
    /// returning the id of the copy's root.  Used by element constructors,
    /// which copy their content (new node identities!).
    pub fn deep_copy(&mut self, node: NodeId, target: DocId) -> NodeId {
        let kind = self.kind(node).clone();
        let copy = self.push_node(
            target,
            NodeData {
                kind,
                parent: None,
                children: Vec::new(),
                attributes: Vec::new(),
            },
        );
        for attr in self.attributes(node) {
            if let NodeKind::Attribute(name, value) = self.kind(attr).clone() {
                // The copy's root is always an element here; ignore errors on
                // non-element kinds (they have no attributes to begin with).
                // The payload symbol belongs to this store's pool already —
                // no re-interning, no allocation.
                let _ = self.add_attribute_interned(copy, name, value);
            }
        }
        for child in self.children(node) {
            let child_copy = self.deep_copy(child, target);
            let _ = self.append_child(copy, child_copy);
        }
        copy
    }

    // ------------------------------------------------------------------
    // Node inspection
    // ------------------------------------------------------------------

    fn data(&self, node: NodeId) -> &NodeData {
        &self.docs[node.doc as usize].nodes[node.node as usize]
    }

    /// `true` if `node` refers to an existing node of this store.
    pub fn contains(&self, node: NodeId) -> bool {
        self.docs
            .get(node.doc as usize)
            .map(|d| (node.node as usize) < d.nodes.len())
            .unwrap_or(false)
    }

    /// The node's kind and payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.data(node).kind
    }

    /// The node's name, if it has one (elements and attributes).
    pub fn name(&self, node: NodeId) -> Option<&QName> {
        self.data(node).kind.name()
    }

    /// The node's parent, if any.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.data(node).parent.map(|p| NodeId::new(node.doc, p))
    }

    /// The node's children (no attributes), in document order.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        self.data(node)
            .children
            .iter()
            .map(|&c| NodeId::new(node.doc, c))
            .collect()
    }

    /// The node's attribute nodes.
    pub fn attributes(&self, node: NodeId) -> Vec<NodeId> {
        self.data(node)
            .attributes
            .iter()
            .map(|&a| NodeId::new(node.doc, a))
            .collect()
    }

    /// The value of attribute `name` on element `node`, if present.
    pub fn attribute_value(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attribute_value_sym(node, name)
            .map(|sym| self.text.resolve(sym))
    }

    /// The text-pool symbol of attribute `name` on element `node`, if
    /// present.  The allocation-free form consumers with their own
    /// per-pool caches (the algebraic executor) build on.
    pub fn attribute_value_sym(&self, node: NodeId, name: &str) -> Option<StrId> {
        for &a in &self.data(node).attributes {
            if let NodeKind::Attribute(qname, value) =
                &self.docs[node.doc as usize].nodes[a as usize].kind
            {
                if qname.matches_local(name) {
                    return Some(*value);
                }
            }
        }
        None
    }

    /// The root of the tree containing `node` (the node with no parent).
    pub fn tree_root(&self, node: NodeId) -> NodeId {
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// The string behind a text-pool symbol carried by this store's nodes.
    ///
    /// # Panics
    /// Panics if `id` did not come from this store's pool.
    pub fn resolve_text(&self, id: StrId) -> &str {
        self.text.resolve(id)
    }

    /// The text-pool symbol of `s`, if any node payload has interned it
    /// (never allocates).  Useful as a cheap membership prefilter: a string
    /// the pool has never seen cannot be any node's payload.
    pub fn text_pool_get(&self, s: &str) -> Option<StrId> {
        self.text.get(s)
    }

    /// The globally unique identity of this store's text pool — the key
    /// external per-pool symbol caches compare to detect divergence (see
    /// [`TextPool::pool_id`](crate::intern::TextPool::pool_id)).
    pub fn text_pool_id(&self) -> u64 {
        self.text.pool_id()
    }

    /// `true` when `self` and `other` still share one text-pool storage —
    /// i.e. one is a clone of the other and neither has interned a new
    /// string since.  What makes the service layer's publish-clone cheap.
    pub fn shares_text_pool(&self, other: &NodeStore) -> bool {
        self.text.shares_storage_with(&other.text)
    }

    /// The text-pool symbol of a *leaf-shaped* node's string value
    /// (attributes, text, comments, PIs); `None` for elements and
    /// documents, whose value is a concatenation.
    pub fn string_value_sym(&self, node: NodeId) -> Option<StrId> {
        match self.kind(node) {
            NodeKind::Attribute(_, v) => Some(*v),
            NodeKind::Text(t) => Some(*t),
            NodeKind::Comment(c) => Some(*c),
            NodeKind::ProcessingInstruction(_, c) => Some(*c),
            NodeKind::Element(_) | NodeKind::Document => None,
        }
    }

    /// The typed/string value of a node: for elements and documents the
    /// concatenation of all descendant text nodes, for attributes and text
    /// nodes their content, for comments and PIs their text.
    pub fn string_value(&self, node: NodeId) -> String {
        self.string_value_ref(node).into_string()
    }

    /// The string value of a node without rendering a fresh `String`:
    /// leaf-shaped nodes borrow straight from the text pool; element and
    /// document concatenations come from the per-document memo as a shared
    /// `Arc<str>` (rendered at most once per document revision).
    pub fn string_value_ref(&self, node: NodeId) -> StrView<'_> {
        match self.kind(node) {
            NodeKind::Attribute(_, v) => StrView::Borrowed(self.text.resolve(*v)),
            NodeKind::Text(t) => StrView::Borrowed(self.text.resolve(*t)),
            NodeKind::Comment(c) => StrView::Borrowed(self.text.resolve(*c)),
            NodeKind::ProcessingInstruction(_, c) => StrView::Borrowed(self.text.resolve(*c)),
            NodeKind::Element(_) | NodeKind::Document => match self.container_text(node) {
                ContainerText::Empty => StrView::Borrowed(""),
                ContainerText::Sym(sym) => StrView::Borrowed(self.text.resolve(sym)),
                ContainerText::Concat(arc) => StrView::Shared(arc),
            },
        }
    }

    /// The string value of a node as an atomization payload: a shared
    /// `Arc<str>` handle wherever one exists (leaf payloads, memoized
    /// concatenations), an owned `String` only when the memo could not be
    /// consulted.  This is what `Evaluator::atomize` hands out.
    pub fn untyped_value(&self, node: NodeId) -> UText {
        match self.kind(node) {
            NodeKind::Attribute(_, v)
            | NodeKind::Text(v)
            | NodeKind::Comment(v)
            | NodeKind::ProcessingInstruction(_, v) => {
                UText::shared(self.text.resolve_arc(*v).clone())
            }
            NodeKind::Element(_) | NodeKind::Document => match self.container_text(node) {
                ContainerText::Empty => UText::from(String::new()),
                ContainerText::Sym(sym) => UText::shared(self.text.resolve_arc(sym).clone()),
                ContainerText::Concat(arc) => UText::shared(arc),
            },
        }
    }

    /// The concatenated text of an element/document node, memoized per
    /// document behind the derived-state version tag.  `O(1)` fast paths
    /// skip the memo for childless nodes and single-text-child elements —
    /// the dominant shapes in data-oriented documents.
    fn container_text(&self, node: NodeId) -> ContainerText {
        let data = self.data(node);
        match data.children.as_slice() {
            [] => return ContainerText::Empty,
            &[only] => {
                if let NodeKind::Text(t) = &self.docs[node.doc as usize].nodes[only as usize].kind {
                    return ContainerText::Sym(*t);
                }
            }
            _ => {}
        }
        // Force the derived state current *before* consulting the memo: a
        // mutation only marks the document dirty — the version tag the memo
        // is validated against moves on rebuild.
        let version = self.docs[node.doc as usize].derived().version;
        let mut memo = match self.text_memo.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Contended (concurrent snapshot readers): render without
                // memoizing rather than serializing every reader here.
                let mut out = String::new();
                self.collect_text(node, &mut out);
                return ContainerText::Concat(Arc::from(out));
            }
        };
        let (tag, map) = memo
            .per_doc
            .entry(node.doc)
            .or_insert_with(|| (version, HashMap::new()));
        if *tag != version {
            *tag = version;
            map.clear();
        }
        if let Some(arc) = map.get(&node.node) {
            return ContainerText::Concat(arc.clone());
        }
        drop(memo);
        // Render outside the lock; `version` cannot move while we hold
        // `&self` (mutation needs `&mut self`, and our `derived()` call
        // above already cleared `dirty`).
        let mut out = String::new();
        self.collect_text(node, &mut out);
        let arc: Arc<str> = Arc::from(out);
        let mut memo = mutex_lock(&self.text_memo);
        let (tag, map) = memo
            .per_doc
            .entry(node.doc)
            .or_insert_with(|| (version, HashMap::new()));
        if *tag == version {
            map.insert(node.node, arc.clone());
        }
        ContainerText::Concat(arc)
    }

    fn collect_text(&self, node: NodeId, out: &mut String) {
        match self.kind(node) {
            NodeKind::Text(t) => out.push_str(self.text.resolve(*t)),
            NodeKind::Element(_) | NodeKind::Document => {
                for &c in &self.data(node).children {
                    self.collect_text(NodeId::new(node.doc, c), out);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Document order
    // ------------------------------------------------------------------

    fn order_rank(&self, node: NodeId) -> (u32, u32) {
        let d = &self.docs[node.doc as usize];
        let derived = d.derived();
        (node.doc, derived.order[node.node as usize])
    }

    /// Compare two nodes in document order.  Nodes of different documents are
    /// ordered by document creation order, which yields the stable total
    /// order the XDM requires.
    pub fn doc_order(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let ka = self.order_rank(a);
        let kb = self.order_rank(b);
        ka.cmp(&kb)
    }

    /// `true` when arena index order within `doc` coincides with document
    /// order.  Parsed documents always satisfy this (the parser appends
    /// nodes in pre-order); constructed fragments may not, if children were
    /// created before their parents.  [`crate::NodeSet::to_vec`] uses this
    /// to skip rank sorting on the fast path.
    pub fn index_order_is_document_order(&self, doc: DocId) -> bool {
        match self.docs.get(doc.0 as usize) {
            Some(d) => d.derived().index_is_order,
            None => true,
        }
    }

    /// Sort `nodes` into document order and remove duplicates — the
    /// `fs:distinct-doc-order` operation of the XQuery Formal Semantics.
    pub fn sort_distinct(&self, nodes: &mut Vec<NodeId>) {
        if nodes.len() <= 1 {
            return;
        }
        // Refresh every involved document once (one read guard per doc),
        // then sort by the cached ranks.
        let mut guards: HashMap<u32, RwLockReadGuard<'_, Derived>> = HashMap::new();
        for &n in nodes.iter() {
            guards
                .entry(n.doc)
                .or_insert_with(|| self.docs[n.doc as usize].derived());
        }
        let mut keyed: Vec<((u32, u32), NodeId)> = nodes
            .iter()
            .map(|&n| ((n.doc, guards[&n.doc].order[n.node as usize]), n))
            .collect();
        keyed.sort_by_key(|a| a.0);
        keyed.dedup_by(|a, b| a.1 == b.1);
        nodes.clear();
        nodes.extend(keyed.into_iter().map(|(_, n)| n));
    }

    // ------------------------------------------------------------------
    // Axes
    // ------------------------------------------------------------------

    /// All nodes reachable from `node` along `axis` that satisfy `test`,
    /// in the axis's natural order (document order for forward axes,
    /// reverse document order for reverse axes).
    pub fn axis_nodes(&self, node: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.axis_nodes_into(node, axis, test, &mut out);
        out
    }

    /// [`axis_nodes`](NodeStore::axis_nodes) appending into a caller-owned
    /// buffer — the fused form path evaluation uses to run a whole
    /// focus sequence through one step without a `Vec` per focus item.
    pub fn axis_nodes_into(
        &self,
        node: NodeId,
        axis: Axis,
        test: &NodeTest,
        out: &mut Vec<NodeId>,
    ) {
        match axis {
            Axis::Child => {
                // Iterate the arena's child list directly — no intermediate
                // `children()` vector on the hottest axis.
                for &c in &self.data(node).children {
                    self.push_if(NodeId::new(node.doc, c), axis, test, out);
                }
            }
            Axis::Descendant => self.collect_descendants(node, axis, test, out),
            Axis::DescendantOrSelf => {
                self.push_if(node, axis, test, out);
                self.collect_descendants(node, axis, test, out);
            }
            Axis::Parent => {
                if let Some(p) = self.parent(node) {
                    self.push_if(p, axis, test, out);
                }
            }
            Axis::Ancestor => {
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    self.push_if(p, axis, test, out);
                    cur = self.parent(p);
                }
            }
            Axis::AncestorOrSelf => {
                self.push_if(node, axis, test, out);
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    self.push_if(p, axis, test, out);
                    cur = self.parent(p);
                }
            }
            Axis::FollowingSibling => {
                if let Some(parent) = self.parent(node) {
                    let siblings = self.children(parent);
                    let mut seen_self = false;
                    for s in siblings {
                        if s == node {
                            seen_self = true;
                        } else if seen_self {
                            self.push_if(s, axis, test, out);
                        }
                    }
                }
            }
            Axis::PrecedingSibling => {
                if let Some(parent) = self.parent(node) {
                    let siblings = self.children(parent);
                    let mut before = Vec::new();
                    for s in siblings {
                        if s == node {
                            break;
                        }
                        before.push(s);
                    }
                    for s in before.into_iter().rev() {
                        self.push_if(s, axis, test, out);
                    }
                }
            }
            Axis::Following => {
                // Following siblings of self and of every ancestor, each with
                // their whole subtrees, in document order.
                let mut anchors = vec![node];
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    anchors.push(p);
                    cur = self.parent(p);
                }
                // Process outermost ancestors last so results stay in
                // document order relative to each anchor group.
                let mut groups: Vec<Vec<NodeId>> = Vec::new();
                for anchor in anchors {
                    let mut group = Vec::new();
                    for sib in self.axis_nodes(anchor, Axis::FollowingSibling, &NodeTest::AnyNode) {
                        self.push_if(sib, axis, test, &mut group);
                        self.collect_descendants(sib, axis, test, &mut group);
                    }
                    groups.push(group);
                }
                for group in groups {
                    out.extend(group);
                }
            }
            Axis::Preceding => {
                let mut anchors = vec![node];
                let mut cur = self.parent(node);
                while let Some(p) = cur {
                    anchors.push(p);
                    cur = self.parent(p);
                }
                for anchor in anchors {
                    for sib in self.axis_nodes(anchor, Axis::PrecedingSibling, &NodeTest::AnyNode) {
                        // Subtree of the preceding sibling, in reverse
                        // document order (deepest/last first).
                        let mut subtree = Vec::new();
                        self.push_if(sib, axis, test, &mut subtree);
                        self.collect_descendants(sib, axis, test, &mut subtree);
                        out.extend(subtree.into_iter().rev());
                    }
                }
            }
            Axis::Attribute => {
                for &a in &self.data(node).attributes {
                    self.push_if(NodeId::new(node.doc, a), axis, test, out);
                }
            }
            Axis::SelfAxis => {
                self.push_if(node, axis, test, out);
            }
        }
    }

    fn push_if(&self, node: NodeId, axis: Axis, test: &NodeTest, out: &mut Vec<NodeId>) {
        if test.matches(axis, self.kind(node)) {
            out.push(node);
        }
    }

    fn collect_descendants(
        &self,
        node: NodeId,
        axis: Axis,
        test: &NodeTest,
        out: &mut Vec<NodeId>,
    ) {
        for &c in &self.data(node).children {
            let child = NodeId::new(node.doc, c);
            self.push_if(child, axis, test, out);
            self.collect_descendants(child, axis, test, out);
        }
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Eagerly rebuild every document's derived state (order ranks, ID
    /// indexes).  After this, read paths through a shared reference take
    /// uncontended read locks only — no thread pays the rebuild inside a
    /// parallel section.
    pub fn refresh_all(&self) {
        for d in &self.docs {
            drop(d.derived());
        }
    }

    /// Record the store's current mutation state (and eagerly refresh all
    /// derived state) so a [`StoreSnapshot`] can later be frozen with
    /// [`SnapshotPin::freeze`] — which fails if the store was mutated in
    /// between, rather than silently reading moved data.
    pub fn pin(&self) -> SnapshotPin {
        self.refresh_all();
        SnapshotPin {
            epoch: self.load_epoch,
            revision: self.revision,
        }
    }

    /// Pin and freeze in one step.  Infallible: holding the returned
    /// snapshot borrows the store shared, so no mutation can intervene.
    pub fn snapshot(&self) -> StoreSnapshot<'_> {
        let pin = self.pin();
        StoreSnapshot {
            store: self,
            epoch: pin.epoch,
            revision: pin.revision,
        }
    }
}

/// A recorded freeze point of a [`NodeStore`]: the `(load_epoch, revision)`
/// pair at [`NodeStore::pin`] time.  Owning no borrow, a pin can outlive
/// intervening code that mutates the store — [`SnapshotPin::freeze`] then
/// *detects* the mutation and refuses to produce a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPin {
    epoch: u64,
    revision: u64,
}

impl SnapshotPin {
    /// The [`NodeStore::load_epoch`] recorded when the pin was taken.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The [`NodeStore::revision`] recorded when the pin was taken.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// How many mutations `store` has seen since this pin was taken
    /// (`0` means [`freeze`](SnapshotPin::freeze) would still succeed,
    /// provided the load epoch also matches).  Saturates at zero if the
    /// pin belongs to a different (younger) store.
    pub fn age(&self, store: &NodeStore) -> u64 {
        store.revision.saturating_sub(self.revision)
    }

    /// `true` iff `store` has not been mutated since this pin was taken —
    /// i.e. both the load epoch and the mutation revision still match, and
    /// [`freeze`](SnapshotPin::freeze) would succeed.
    pub fn is_current(&self, store: &NodeStore) -> bool {
        store.load_epoch == self.epoch && store.revision == self.revision
    }

    /// Freeze `store` into a read-only snapshot, verifying it has not been
    /// mutated since this pin was taken.  Returns
    /// [`XdmError::StaleSnapshot`] if the load epoch or mutation revision
    /// moved — a stale snapshot is rejected, never silently read.
    pub fn freeze<'s>(&self, store: &'s NodeStore) -> Result<StoreSnapshot<'s>> {
        if store.load_epoch != self.epoch || store.revision != self.revision {
            return Err(XdmError::StaleSnapshot(format!(
                "store moved since pin: epoch {} -> {}, revision {} -> {}",
                self.epoch, store.load_epoch, self.revision, store.revision
            )));
        }
        Ok(StoreSnapshot {
            store,
            epoch: self.epoch,
            revision: self.revision,
        })
    }
}

/// A read-only, epoch-pinned view of a [`NodeStore`].
///
/// A snapshot `Deref`s to the store, exposing every `&self` read path
/// (axes, document order, `sort_distinct`, `lookup_id`, …) while the borrow
/// checker guarantees no mutation can happen for the snapshot's lifetime.
/// `NodeStore` keeps all lazily-derived state behind internal locks, so a
/// snapshot is [`Sync`]: the parallel fixpoint drivers hand one `&`
/// reference to every shard of a scoped thread pool.
#[derive(Debug, Clone, Copy)]
pub struct StoreSnapshot<'s> {
    store: &'s NodeStore,
    epoch: u64,
    revision: u64,
}

impl<'s> StoreSnapshot<'s> {
    /// The underlying store reference (with the snapshot's full lifetime).
    pub fn store(&self) -> &'s NodeStore {
        self.store
    }

    /// The [`NodeStore::load_epoch`] this snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The [`NodeStore::revision`] this snapshot was frozen at.
    pub fn revision(&self) -> u64 {
        self.revision
    }
}

impl std::ops::Deref for StoreSnapshot<'_> {
    type Target = NodeStore;

    fn deref(&self) -> &NodeStore {
        self.store
    }
}

// `NodeStore` read paths must stay shareable across the scoped thread pool;
// this fails to compile if a non-`Sync` field sneaks in.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<NodeStore>();
    assert_sync::<StoreSnapshot<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(store: &mut NodeStore) -> DocId {
        store
            .parse_document("<r><a id=\"a1\"><b/><c>hi</c></a><d><e/>tail</d></r>")
            .unwrap()
    }

    #[test]
    fn document_element_and_children() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.name(root).unwrap().local, "r");
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(kids.len(), 2);
        assert_eq!(store.name(kids[0]).unwrap().local, "a");
        assert_eq!(store.name(kids[1]).unwrap().local, "d");
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.string_value(root), "hitail");
    }

    #[test]
    fn attribute_lookup() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        assert_eq!(store.attribute_value(a, "id"), Some("a1"));
        assert_eq!(store.attribute_value(a, "missing"), None);
    }

    #[test]
    fn id_index_finds_elements() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let found = store.lookup_id(doc, "a1").unwrap();
        assert_eq!(store.name(found).unwrap().local, "a");
        assert_eq!(store.lookup_id(doc, "nope"), None);
    }

    #[test]
    fn registered_id_attribute_participates_in_index() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<curriculum><course code=\"c1\"/><course code=\"c2\"/></curriculum>")
            .unwrap();
        assert_eq!(store.lookup_id(doc, "c1"), None);
        store.register_id_attribute(doc, "code");
        let c1 = store.lookup_id(doc, "c1").unwrap();
        assert_eq!(store.attribute_value(c1, "code"), Some("c1"));
    }

    #[test]
    fn id_probe_cache_answers_repeats_and_invalidates_on_epoch_bump() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<curriculum><course code=\"c1\"/><course code=\"c2\"/></curriculum>")
            .unwrap();
        // Miss, cached: the second identical probe is a memo hit.
        assert_eq!(store.lookup_id(doc, "c1"), None);
        let hits = store.id_probe_hits();
        assert_eq!(store.lookup_id(doc, "c1"), None);
        assert_eq!(store.id_probe_hits(), hits + 1);

        // Registering an ID attribute bumps the load epoch: the stale
        // cached miss must NOT survive — the probe now finds the element.
        store.register_id_attribute(doc, "code");
        let c1 = store.lookup_id(doc, "c1").expect("cache was invalidated");
        assert_eq!(store.attribute_value(c1, "code"), Some("c1"));

        // Repeated hits after the rebuild come from the memo again.
        let hits = store.id_probe_hits();
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.id_probe_hits(), hits + 2);

        // Loading a new document bumps the epoch too; probes against the
        // old document still resolve correctly afterwards.
        let _ = store.parse_document("<x/>").unwrap();
        assert_eq!(store.lookup_id(doc, "c1"), Some(c1));
        assert_eq!(store.lookup_id(doc, "c2"), store.lookup_id(doc, "c2"));
    }

    #[test]
    fn id_probe_cache_sees_same_epoch_document_mutation() {
        // Mutating a document (construction) marks it dirty without moving
        // the load epoch; the per-document memo entries must be dropped on
        // the next index rebuild so probes see the post-mutation index.
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a id=\"n1\"/></r>").unwrap();
        let n1 = store.lookup_id(doc, "n1").unwrap();
        assert_eq!(store.lookup_id(doc, "n2"), None); // cached miss
        let root = store.document_element(doc).unwrap();
        let fresh = store.create_element(doc, QName::local("b"));
        store
            .add_attribute(fresh, QName::local("id"), "n2")
            .unwrap();
        store.append_child(root, fresh).unwrap();
        assert_eq!(store.lookup_id(doc, "n2"), Some(fresh), "miss not stale");
        assert_eq!(store.lookup_id(doc, "n1"), Some(n1));

        // The treacherous interleaving: mutate, then let a *different*
        // store operation (a doc-order comparison, as the fixpoint drivers
        // issue between iterations) trigger the refresh, then probe.  The
        // memo's version tag — not the dirty flag — must catch this.
        assert_eq!(store.lookup_id(doc, "n3"), None); // cached miss
        let later = store.create_element(doc, QName::local("c"));
        store
            .add_attribute(later, QName::local("id"), "n3")
            .unwrap();
        store.append_child(root, later).unwrap();
        let _ = store.doc_order(root, fresh); // refreshes, clears dirty
        assert_eq!(
            store.lookup_id(doc, "n3"),
            Some(later),
            "externally triggered refresh must invalidate the memo"
        );
    }

    #[test]
    fn doc_order_is_preorder_with_attributes_before_children() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let attr = store.axis_nodes(a, Axis::Attribute, &NodeTest::AnyElement)[0];
        let b = store.axis_nodes(a, Axis::Child, &NodeTest::Name("b".into()))[0];
        assert_eq!(store.doc_order(root, a), Ordering::Less);
        assert_eq!(store.doc_order(a, attr), Ordering::Less);
        assert_eq!(store.doc_order(attr, b), Ordering::Less);
        assert_eq!(store.doc_order(b, b), Ordering::Equal);
    }

    #[test]
    fn doc_order_across_documents_follows_creation_order() {
        let mut store = NodeStore::new();
        let d1 = store.parse_document("<x/>").unwrap();
        let d2 = store.parse_document("<y/>").unwrap();
        let x = store.document_element(d1).unwrap();
        let y = store.document_element(d2).unwrap();
        assert_eq!(store.doc_order(x, y), Ordering::Less);
        assert_eq!(store.doc_order(y, x), Ordering::Greater);
    }

    #[test]
    fn sort_distinct_removes_duplicates_and_orders() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let all = store.axis_nodes(root, Axis::Descendant, &NodeTest::AnyElement);
        let mut shuffled: Vec<NodeId> = all.iter().rev().cloned().collect();
        shuffled.extend(all.iter().cloned());
        store.sort_distinct(&mut shuffled);
        assert_eq!(shuffled, all);
    }

    #[test]
    fn descendant_and_ancestor_axes() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let descendants = store.axis_nodes(root, Axis::Descendant, &NodeTest::AnyElement);
        let names: Vec<_> = descendants
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);

        let e = descendants[4];
        let ancestors = store.axis_nodes(e, Axis::Ancestor, &NodeTest::AnyNode);
        let anames: Vec<_> = ancestors
            .iter()
            .map(|&n| store.kind(n).kind_name().to_string())
            .collect();
        // d, r, document — innermost first.
        assert_eq!(anames, vec!["element", "element", "document"]);
    }

    #[test]
    fn sibling_axes() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
        let (a, d) = (kids[0], kids[1]);
        assert_eq!(
            store.axis_nodes(a, Axis::FollowingSibling, &NodeTest::AnyElement),
            vec![d]
        );
        assert_eq!(
            store.axis_nodes(d, Axis::PrecedingSibling, &NodeTest::AnyElement),
            vec![a]
        );
        assert!(store
            .axis_nodes(a, Axis::PrecedingSibling, &NodeTest::AnyElement)
            .is_empty());
    }

    #[test]
    fn following_and_preceding_axes() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<r><a><b/></a><c><d/></c></r>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let b = store.axis_nodes(a, Axis::Child, &NodeTest::Name("b".into()))[0];
        let following = store.axis_nodes(b, Axis::Following, &NodeTest::AnyElement);
        let names: Vec<_> = following
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        assert_eq!(names, vec!["c", "d"]);

        let d = following[1];
        let preceding = store.axis_nodes(d, Axis::Preceding, &NodeTest::AnyElement);
        let pnames: Vec<_> = preceding
            .iter()
            .map(|&n| store.name(n).unwrap().local.clone())
            .collect();
        // Reverse document order: b then a.
        assert_eq!(pnames, vec!["b", "a"]);
    }

    #[test]
    fn constructed_nodes_get_fresh_identity() {
        let mut store = NodeStore::new();
        let frag = store.new_fragment();
        let e1 = store.create_element(frag, QName::local("p"));
        let frag2 = store.new_fragment();
        let e2 = store.create_element(frag2, QName::local("p"));
        assert_ne!(e1, e2);
        assert_eq!(store.doc_order(e1, e2), Ordering::Less);
    }

    #[test]
    fn deep_copy_creates_new_identities_with_same_content() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();
        let a = store.axis_nodes(root, Axis::Child, &NodeTest::Name("a".into()))[0];
        let frag = store.new_fragment();
        let copy = store.deep_copy(a, frag);
        assert_ne!(copy, a);
        assert_eq!(store.string_value(copy), store.string_value(a));
        assert_eq!(store.attribute_value(copy, "id"), Some("a1"));
        let copy_children = store.axis_nodes(copy, Axis::Child, &NodeTest::AnyElement);
        assert_eq!(copy_children.len(), 2);
    }

    #[test]
    fn append_child_rejects_cross_document_and_reparenting() {
        let mut store = NodeStore::new();
        let f1 = store.new_fragment();
        let f2 = store.new_fragment();
        let p = store.create_element(f1, QName::local("p"));
        let q = store.create_element(f2, QName::local("q"));
        assert!(store.append_child(p, q).is_err());

        let r = store.create_element(f1, QName::local("r"));
        store.append_child(p, r).unwrap();
        let p2 = store.create_element(f1, QName::local("p2"));
        assert!(store.append_child(p2, r).is_err());
    }

    #[test]
    fn snapshot_freeze_rejects_interleaved_mutation() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        let root = store.document_element(doc).unwrap();

        // Clean pin → freeze succeeds and reads work.
        let pin = store.pin();
        {
            let snap = pin.freeze(&store).expect("unmutated store freezes");
            assert_eq!(snap.epoch(), store.load_epoch());
            assert_eq!(snap.revision(), store.revision());
            assert_eq!(snap.document_element(doc), Some(root));
        }

        // Structural mutation without node creation (append_child) must
        // still invalidate the pin.
        let pin = store.pin();
        let fresh = store.create_element(doc, QName::local("z"));
        store.append_child(root, fresh).unwrap();
        let err = pin.freeze(&store).unwrap_err();
        assert!(matches!(err, XdmError::StaleSnapshot(_)), "{err}");

        // A parse (epoch move) invalidates too.
        let pin = store.pin();
        store.parse_document("<x/>").unwrap();
        assert!(matches!(
            pin.freeze(&store),
            Err(XdmError::StaleSnapshot(_))
        ));

        // Re-pinning after the mutations freezes fine again.
        let pin = store.pin();
        assert!(pin.freeze(&store).is_ok());
    }

    #[test]
    fn snapshot_reads_are_shareable_across_threads() {
        let mut store = NodeStore::new();
        let doc = sample(&mut store);
        // Leave the derived state dirty on one fragment so the lazy
        // rebuild happens under contention at least sometimes.
        let frag = store.new_fragment();
        let child = store.create_element(frag, QName::local("child"));
        let parent = store.create_element(frag, QName::local("parent"));
        store.append_child(parent, child).unwrap();

        let snap = store.snapshot();
        let root = snap.document_element(doc).unwrap();
        let expected: Vec<NodeId> = snap.axis_nodes(root, Axis::Descendant, &NodeTest::AnyElement);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let mut shuffled: Vec<NodeId> = expected.iter().rev().copied().collect();
                        snap.sort_distinct(&mut shuffled);
                        assert_eq!(shuffled, expected);
                        assert_eq!(snap.lookup_id(doc, "a1"), Some(expected[0]));
                        assert_eq!(snap.doc_order(parent, child), Ordering::Less);
                        assert!(!snap.index_order_is_document_order(frag));
                    }
                });
            }
        });
    }
}
