//! Atomic values and items of the XQuery Data Model.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::error::XdmError;
use crate::node::NodeId;
use crate::Result;

/// The payload of an `xs:untypedAtomic` value: either an owned string or a
/// zero-copy handle on a store's shared text pool.
///
/// Atomizing a leaf node (or a memoized element concatenation) hands out the
/// pool's `Arc<str>` instead of rendering a fresh `String`; owned payloads
/// only appear for computed strings.  `UText` derefs to `str`, so consumers
/// treat it exactly like the `String` it replaced.  Equality first checks
/// `Arc` pointer identity — two atoms cut from the same pool entry (the
/// common case inside one store: interning guarantees one entry per distinct
/// string) compare in O(1) without touching the bytes — and falls back to
/// content comparison across pools or against owned payloads.
#[derive(Debug, Clone)]
pub struct UText(UTextRepr);

#[derive(Debug, Clone)]
enum UTextRepr {
    Owned(String),
    Shared(Arc<str>),
}

impl UText {
    /// Wrap a shared pool payload (zero-copy).
    pub fn shared(s: Arc<str>) -> Self {
        UText(UTextRepr::Shared(s))
    }

    /// The text as a borrowed slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            UTextRepr::Owned(s) => s,
            UTextRepr::Shared(s) => s,
        }
    }

    /// `true` when this payload is a shared pool handle (no private
    /// allocation happened to produce it).
    pub fn is_shared(&self) -> bool {
        matches!(&self.0, UTextRepr::Shared(_))
    }
}

impl Deref for UText {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for UText {
    fn from(s: String) -> Self {
        UText(UTextRepr::Owned(s))
    }
}

impl From<&str> for UText {
    fn from(s: &str) -> Self {
        UText(UTextRepr::Owned(s.to_string()))
    }
}

impl PartialEq for UText {
    fn eq(&self, other: &Self) -> bool {
        if let (UTextRepr::Shared(a), UTextRepr::Shared(b)) = (&self.0, &other.0) {
            // Same pool entry ⇒ equal without reading bytes.  Distinct
            // pointers prove nothing (other pool, memo entry), fall through.
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for UText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An atomic value.
///
/// The type lattice is deliberately small — LiXQuery-style — but covers
/// everything the reproduced queries need: strings, integers, doubles,
/// booleans and untyped atomics produced by atomizing nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// `xs:string`
    String(String),
    /// `xs:untypedAtomic` — the result of atomizing a node.  Carries a
    /// [`UText`] so atomized pool text stays zero-copy.
    Untyped(UText),
    /// `xs:integer`
    Integer(i64),
    /// `xs:double`
    Double(f64),
    /// `xs:boolean`
    Boolean(bool),
}

impl AtomicValue {
    /// The lexical/string form of the value (the `fn:string` view).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::String(s) => s.clone(),
            AtomicValue::Untyped(s) => s.as_str().to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::Boolean(b) => b.to_string(),
        }
    }

    /// The text of a string-shaped value (`xs:string` / `xs:untypedAtomic`)
    /// as a borrow; `None` for numerics and booleans (whose lexical form
    /// must be rendered).  The allocation-free half of
    /// [`string_value`](AtomicValue::string_value).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AtomicValue::String(s) => Some(s),
            AtomicValue::Untyped(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Convert to a number (`fn:number` semantics: NaN on failure).
    pub fn to_double(&self) -> f64 {
        match self {
            AtomicValue::Integer(i) => *i as f64,
            AtomicValue::Double(d) => *d,
            AtomicValue::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            AtomicValue::String(s) => s.trim().parse::<f64>().unwrap_or(f64::NAN),
            AtomicValue::Untyped(s) => s.trim().parse::<f64>().unwrap_or(f64::NAN),
        }
    }

    /// Convert to an integer, failing when the value is not a whole number.
    pub fn to_integer(&self) -> Result<i64> {
        match self {
            AtomicValue::Integer(i) => Ok(*i),
            AtomicValue::Double(d) if d.fract() == 0.0 && d.is_finite() => Ok(*d as i64),
            AtomicValue::String(_) | AtomicValue::Untyped(_) => {
                let s = self.as_str().expect("string-shaped");
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| XdmError::InvalidCast(format!("cannot cast '{s}' to xs:integer")))
            }
            other => Err(XdmError::InvalidCast(format!(
                "cannot cast {other:?} to xs:integer"
            ))),
        }
    }

    /// Effective boolean value of a single atomic item.
    pub fn effective_boolean(&self) -> bool {
        match self {
            AtomicValue::Boolean(b) => *b,
            AtomicValue::Integer(i) => *i != 0,
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            AtomicValue::String(s) => !s.is_empty(),
            AtomicValue::Untyped(s) => !s.is_empty(),
        }
    }

    /// `true` if this is a numeric value (integer or double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AtomicValue::Integer(_) | AtomicValue::Double(_))
    }

    /// Compare two atomics using XQuery value-comparison rules:
    /// numerics compare numerically, untyped values promote to the other
    /// operand's type, otherwise string comparison applies.
    pub fn compare(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue::*;
        match (self, other) {
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() || b.is_numeric() => a.to_double().partial_cmp(&b.to_double()),
            (a, b) => match (a.as_str(), b.as_str()) {
                // Both string-shaped: compare borrowed, no rendering.
                (Some(x), Some(y)) => Some(x.cmp(y)),
                _ => Some(a.string_value().cmp(&b.string_value())),
            },
        }
    }

    /// Equality under general-comparison rules (untyped compares as string
    /// unless the other operand is numeric).
    pub fn general_eq(&self, other: &AtomicValue) -> bool {
        use AtomicValue::*;
        match (self, other) {
            (Boolean(a), Boolean(b)) => a == b,
            (a, b) if a.is_numeric() || b.is_numeric() => {
                let (x, y) = (a.to_double(), b.to_double());
                x == y
            }
            // Untyped × Untyped takes UText's pointer-identity fast path.
            (Untyped(a), Untyped(b)) => a == b,
            (a, b) => match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => x == y,
                _ => a.string_value() == b.string_value(),
            },
        }
    }
}

/// Format a double the way XQuery serialization does for the common cases
/// (integral doubles print without a trailing `.0`).
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.string_value())
    }
}

/// A single XDM item: either a node reference or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A reference to a node in the [`NodeStore`](crate::NodeStore).
    Node(NodeId),
    /// An atomic value.
    Atomic(AtomicValue),
}

impl Item {
    /// Construct a string item.
    pub fn string(s: impl Into<String>) -> Self {
        Item::Atomic(AtomicValue::String(s.into()))
    }

    /// Construct an integer item.
    pub fn integer(i: i64) -> Self {
        Item::Atomic(AtomicValue::Integer(i))
    }

    /// Construct a double item.
    pub fn double(d: f64) -> Self {
        Item::Atomic(AtomicValue::Double(d))
    }

    /// Construct a boolean item.
    pub fn boolean(b: bool) -> Self {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    /// The node id, if this item is a node.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Item::Node(n) => Some(*n),
            Item::Atomic(_) => None,
        }
    }

    /// The atomic value, if this item is atomic.
    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            Item::Node(_) => None,
        }
    }

    /// `true` if this item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }
}

impl From<AtomicValue> for Item {
    fn from(value: AtomicValue) -> Self {
        Item::Atomic(value)
    }
}

impl From<NodeId> for Item {
    fn from(value: NodeId) -> Self {
        Item::Node(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values() {
        assert_eq!(AtomicValue::Integer(42).string_value(), "42");
        assert_eq!(AtomicValue::Double(2.5).string_value(), "2.5");
        assert_eq!(AtomicValue::Double(3.0).string_value(), "3");
        assert_eq!(AtomicValue::Boolean(true).string_value(), "true");
        assert_eq!(AtomicValue::String("x".into()).string_value(), "x");
        assert_eq!(AtomicValue::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(AtomicValue::Double(f64::INFINITY).string_value(), "INF");
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(AtomicValue::String("  7 ".into()).to_integer().unwrap(), 7);
        assert!(AtomicValue::String("abc".into()).to_integer().is_err());
        assert!(AtomicValue::String("abc".into()).to_double().is_nan());
        assert_eq!(AtomicValue::Double(4.0).to_integer().unwrap(), 4);
        assert!(AtomicValue::Double(4.5).to_integer().is_err());
    }

    #[test]
    fn effective_boolean_values() {
        assert!(AtomicValue::Boolean(true).effective_boolean());
        assert!(!AtomicValue::Boolean(false).effective_boolean());
        assert!(AtomicValue::Integer(3).effective_boolean());
        assert!(!AtomicValue::Integer(0).effective_boolean());
        assert!(!AtomicValue::Double(f64::NAN).effective_boolean());
        assert!(AtomicValue::String("x".into()).effective_boolean());
        assert!(!AtomicValue::String("".into()).effective_boolean());
    }

    #[test]
    fn comparisons_promote_untyped_to_numeric() {
        let untyped = AtomicValue::Untyped("10".into());
        let int = AtomicValue::Integer(10);
        assert!(untyped.general_eq(&int));
        assert_eq!(untyped.compare(&int), Some(Ordering::Equal));
        // As strings, "10" < "9"; as numbers 10 > 9 — numeric wins.
        assert_eq!(
            untyped.compare(&AtomicValue::Integer(9)),
            Some(Ordering::Greater)
        );
        // Pure string comparison when neither side is numeric.
        assert_eq!(
            AtomicValue::Untyped("10".into()).compare(&AtomicValue::String("9".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn utext_equality_and_views() {
        let shared: Arc<str> = Arc::from("hello");
        let a = UText::shared(shared.clone());
        let b = UText::shared(shared);
        let owned = UText::from("hello".to_string());
        assert!(a.is_shared());
        assert!(!owned.is_shared());
        // Pointer-identical, content-equal and cross-repr comparisons all
        // agree.
        assert_eq!(a, b);
        assert_eq!(a, owned);
        assert_eq!(owned, a);
        assert_ne!(a, UText::from("other"));
        assert_eq!(a.as_str(), "hello");
        assert_eq!(&*a, "hello"); // Deref
        assert_eq!(a.to_string(), "hello");

        // Distinct Arcs with equal content still compare equal.
        let c = UText::shared(Arc::from("hello"));
        assert_eq!(a, c);
    }

    #[test]
    fn untyped_atoms_behave_like_strings() {
        let shared = AtomicValue::Untyped(UText::shared(Arc::from("10")));
        assert_eq!(shared.string_value(), "10");
        assert_eq!(shared.as_str(), Some("10"));
        assert_eq!(shared.to_double(), 10.0);
        assert_eq!(shared.to_integer().unwrap(), 10);
        assert!(shared.effective_boolean());
        assert!(shared.general_eq(&AtomicValue::Untyped("10".into())));
        assert_eq!(AtomicValue::Integer(5).as_str(), None);
    }

    #[test]
    fn item_constructors_and_accessors() {
        let node = Item::Node(NodeId::new(0, 3));
        assert!(node.is_node());
        assert_eq!(node.as_node(), Some(NodeId::new(0, 3)));
        assert_eq!(node.as_atomic(), None);

        let atom = Item::integer(5);
        assert!(!atom.is_node());
        assert_eq!(atom.as_atomic(), Some(&AtomicValue::Integer(5)));
    }
}
