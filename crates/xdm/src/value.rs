//! Atomic values and items of the XQuery Data Model.

use std::cmp::Ordering;
use std::fmt;

use crate::error::XdmError;
use crate::node::NodeId;
use crate::Result;

/// An atomic value.
///
/// The type lattice is deliberately small — LiXQuery-style — but covers
/// everything the reproduced queries need: strings, integers, doubles,
/// booleans and untyped atomics produced by atomizing nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// `xs:string`
    String(String),
    /// `xs:integer`
    Integer(i64),
    /// `xs:double`
    Double(f64),
    /// `xs:boolean`
    Boolean(bool),
    /// `xs:untypedAtomic` — the result of atomizing a node.
    Untyped(String),
}

impl AtomicValue {
    /// The lexical/string form of the value (the `fn:string` view).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::String(s) | AtomicValue::Untyped(s) => s.clone(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::Boolean(b) => b.to_string(),
        }
    }

    /// Convert to a number (`fn:number` semantics: NaN on failure).
    pub fn to_double(&self) -> f64 {
        match self {
            AtomicValue::Integer(i) => *i as f64,
            AtomicValue::Double(d) => *d,
            AtomicValue::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            AtomicValue::String(s) | AtomicValue::Untyped(s) => {
                s.trim().parse::<f64>().unwrap_or(f64::NAN)
            }
        }
    }

    /// Convert to an integer, failing when the value is not a whole number.
    pub fn to_integer(&self) -> Result<i64> {
        match self {
            AtomicValue::Integer(i) => Ok(*i),
            AtomicValue::Double(d) if d.fract() == 0.0 && d.is_finite() => Ok(*d as i64),
            AtomicValue::String(s) | AtomicValue::Untyped(s) => s
                .trim()
                .parse::<i64>()
                .map_err(|_| XdmError::InvalidCast(format!("cannot cast '{s}' to xs:integer"))),
            other => Err(XdmError::InvalidCast(format!(
                "cannot cast {other:?} to xs:integer"
            ))),
        }
    }

    /// Effective boolean value of a single atomic item.
    pub fn effective_boolean(&self) -> bool {
        match self {
            AtomicValue::Boolean(b) => *b,
            AtomicValue::Integer(i) => *i != 0,
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            AtomicValue::String(s) | AtomicValue::Untyped(s) => !s.is_empty(),
        }
    }

    /// `true` if this is a numeric value (integer or double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AtomicValue::Integer(_) | AtomicValue::Double(_))
    }

    /// Compare two atomics using XQuery value-comparison rules:
    /// numerics compare numerically, untyped values promote to the other
    /// operand's type, otherwise string comparison applies.
    pub fn compare(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue::*;
        match (self, other) {
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() || b.is_numeric() => a.to_double().partial_cmp(&b.to_double()),
            (a, b) => Some(a.string_value().cmp(&b.string_value())),
        }
    }

    /// Equality under general-comparison rules (untyped compares as string
    /// unless the other operand is numeric).
    pub fn general_eq(&self, other: &AtomicValue) -> bool {
        use AtomicValue::*;
        match (self, other) {
            (Boolean(a), Boolean(b)) => a == b,
            (a, b) if a.is_numeric() || b.is_numeric() => {
                let (x, y) = (a.to_double(), b.to_double());
                x == y
            }
            (a, b) => a.string_value() == b.string_value(),
        }
    }
}

/// Format a double the way XQuery serialization does for the common cases
/// (integral doubles print without a trailing `.0`).
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.string_value())
    }
}

/// A single XDM item: either a node reference or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A reference to a node in the [`NodeStore`](crate::NodeStore).
    Node(NodeId),
    /// An atomic value.
    Atomic(AtomicValue),
}

impl Item {
    /// Construct a string item.
    pub fn string(s: impl Into<String>) -> Self {
        Item::Atomic(AtomicValue::String(s.into()))
    }

    /// Construct an integer item.
    pub fn integer(i: i64) -> Self {
        Item::Atomic(AtomicValue::Integer(i))
    }

    /// Construct a double item.
    pub fn double(d: f64) -> Self {
        Item::Atomic(AtomicValue::Double(d))
    }

    /// Construct a boolean item.
    pub fn boolean(b: bool) -> Self {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    /// The node id, if this item is a node.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Item::Node(n) => Some(*n),
            Item::Atomic(_) => None,
        }
    }

    /// The atomic value, if this item is atomic.
    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            Item::Node(_) => None,
        }
    }

    /// `true` if this item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }
}

impl From<AtomicValue> for Item {
    fn from(value: AtomicValue) -> Self {
        Item::Atomic(value)
    }
}

impl From<NodeId> for Item {
    fn from(value: NodeId) -> Self {
        Item::Node(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values() {
        assert_eq!(AtomicValue::Integer(42).string_value(), "42");
        assert_eq!(AtomicValue::Double(2.5).string_value(), "2.5");
        assert_eq!(AtomicValue::Double(3.0).string_value(), "3");
        assert_eq!(AtomicValue::Boolean(true).string_value(), "true");
        assert_eq!(AtomicValue::String("x".into()).string_value(), "x");
        assert_eq!(AtomicValue::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(AtomicValue::Double(f64::INFINITY).string_value(), "INF");
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(AtomicValue::String("  7 ".into()).to_integer().unwrap(), 7);
        assert!(AtomicValue::String("abc".into()).to_integer().is_err());
        assert!(AtomicValue::String("abc".into()).to_double().is_nan());
        assert_eq!(AtomicValue::Double(4.0).to_integer().unwrap(), 4);
        assert!(AtomicValue::Double(4.5).to_integer().is_err());
    }

    #[test]
    fn effective_boolean_values() {
        assert!(AtomicValue::Boolean(true).effective_boolean());
        assert!(!AtomicValue::Boolean(false).effective_boolean());
        assert!(AtomicValue::Integer(3).effective_boolean());
        assert!(!AtomicValue::Integer(0).effective_boolean());
        assert!(!AtomicValue::Double(f64::NAN).effective_boolean());
        assert!(AtomicValue::String("x".into()).effective_boolean());
        assert!(!AtomicValue::String("".into()).effective_boolean());
    }

    #[test]
    fn comparisons_promote_untyped_to_numeric() {
        let untyped = AtomicValue::Untyped("10".into());
        let int = AtomicValue::Integer(10);
        assert!(untyped.general_eq(&int));
        assert_eq!(untyped.compare(&int), Some(Ordering::Equal));
        // As strings, "10" < "9"; as numbers 10 > 9 — numeric wins.
        assert_eq!(
            untyped.compare(&AtomicValue::Integer(9)),
            Some(Ordering::Greater)
        );
        // Pure string comparison when neither side is numeric.
        assert_eq!(
            AtomicValue::Untyped("10".into()).compare(&AtomicValue::String("9".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn item_constructors_and_accessors() {
        let node = Item::Node(NodeId::new(0, 3));
        assert!(node.is_node());
        assert_eq!(node.as_node(), Some(NodeId::new(0, 3)));
        assert_eq!(node.as_atomic(), None);

        let atom = Item::integer(5);
        assert!(!atom.is_node());
        assert_eq!(atom.as_atomic(), Some(&AtomicValue::Integer(5)));
    }
}
