#![warn(missing_docs)]

//! # xqy-xdm — XQuery Data Model substrate
//!
//! This crate implements the data model layer that the rest of the
//! `xquery-ifp` workspace builds on: ordered, unranked trees of XML nodes
//! with stable node identities and a total document order, plus the item /
//! sequence value model of the XQuery Data Model (XDM).
//!
//! The design follows the needs of the paper *"An Inflationary Fixed Point
//! Operator in XQuery"* (Afanasiev et al., ICDE 2008):
//!
//! * node **identity** and **document order** must be stable so that the
//!   node-set operations `union` / `except` / `intersect`, the
//!   `fs:distinct-doc-order` function (`ddo`) and the *set-equality* relation
//!   `=ₛ` of the paper are well defined;
//! * node **construction** must create fresh identities on every invocation
//!   (this is what makes node constructors non-distributive);
//! * an **ID index** is needed for the `fn:id(·)` lookups used by the
//!   curriculum queries of the paper.
//!
//! The central type is [`NodeStore`], an arena that owns every document
//! (parsed or constructed) that a query run touches.  Nodes are addressed by
//! lightweight copyable [`NodeId`] handles.
//!
//! ```
//! use xqy_xdm::{NodeStore, Axis, NodeTest};
//!
//! let mut store = NodeStore::new();
//! let doc = store.parse_document("<a><b/><c>text</c></a>").unwrap();
//! let root = store.document_element(doc).unwrap();
//! let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyElement);
//! assert_eq!(kids.len(), 2);
//! assert_eq!(store.string_value(kids[1]), "text");
//! ```

pub mod budget;
pub mod cow;
pub mod error;
pub mod fail;
pub mod intern;
pub mod node;
pub mod nodeset;
pub mod ops;
pub mod parse;
pub mod sequence;
pub mod serialize;
pub mod shard;
pub mod stats;
pub mod store;
pub mod value;

pub use budget::QueryBudget;
pub use cow::{CowStore, StoreMut};
pub use error::XdmError;
pub use fail::{FaultAction, FaultError, FaultTrigger};
pub use intern::{Interner, StrId, TextPool};
pub use node::{Axis, NodeId, NodeKind, NodeTest, QName};
pub use nodeset::NodeSet;
pub use ops::{ddo, intersect, is_subset, node_except, node_union, set_equal};
pub use sequence::Sequence;
pub use stats::{DocumentStatistics, StoreStatistics};
pub use store::{DocId, NodeStore, SnapshotPin, StoreSnapshot, StrView};
pub use value::{AtomicValue, Item, UText};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, XdmError>;
