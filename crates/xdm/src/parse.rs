//! A small, dependency-free XML parser.
//!
//! The parser covers the XML subset the reproduced paper's workloads use:
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, the XML declaration, a (skipped) DOCTYPE, and
//! the five predefined entities plus numeric character references.
//!
//! It does **not** implement namespaces-aware validation, external entities,
//! or DTD content models — ID-typed attributes are instead declared through
//! [`NodeStore::register_id_attribute`](crate::NodeStore::register_id_attribute).

use crate::error::XdmError;
use crate::node::{NodeId, QName};
use crate::store::{DocId, NodeStore};
use crate::Result;

/// Parse `text` into a new document inside `store`.
pub fn parse_into(store: &mut NodeStore, text: &str) -> Result<DocId> {
    let doc = store.new_document();
    let root = store
        .document_node(doc)
        .expect("freshly created document has a document node");
    let mut parser = Parser {
        input: text.as_bytes(),
        pos: 0,
        store,
        doc,
    };
    parser.skip_prolog()?;
    parser.parse_content(root, true)?;
    parser.skip_whitespace_and_misc()?;
    if parser.pos != parser.input.len() {
        return Err(XdmError::parse(
            parser.pos,
            "trailing content after document element",
        ));
    }
    Ok(doc)
}

struct Parser<'a, 's> {
    input: &'a [u8],
    pos: usize,
    store: &'s mut NodeStore,
    doc: DocId,
}

impl<'a, 's> Parser<'a, 's> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn error(&self, msg: impl Into<String>) -> XdmError {
        XdmError::parse(self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            let end = self.find("?>")?;
            self.pos = end + 2;
        }
        self.skip_whitespace_and_misc()?;
        if self.starts_with("<!DOCTYPE") {
            // Skip to the matching '>' accounting for an optional internal
            // subset in square brackets.
            let mut depth = 0usize;
            while let Some(c) = self.peek() {
                match c {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        self.skip_whitespace_and_misc()?;
        Ok(())
    }

    /// Skip whitespace, comments and PIs outside the document element.
    fn skip_whitespace_and_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else if self.starts_with("<?") && !self.starts_with("<?xml") {
                let end = self.find("?>")?;
                self.pos = end + 2;
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, needle: &str) -> Result<usize> {
        let hay = &self.input[self.pos..];
        hay.windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|p| self.pos + p)
            .ok_or_else(|| self.error(format!("expected '{needle}'")))
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Parse element content (children of `parent`).  When `top_level` is
    /// true exactly one element child is required (the document element).
    fn parse_content(&mut self, parent: NodeId, top_level: bool) -> Result<()> {
        let mut element_seen = false;
        let mut text = String::new();
        loop {
            match self.peek() {
                None => {
                    if top_level && !element_seen {
                        return Err(self.error("missing document element"));
                    }
                    self.flush_text(parent, &mut text)?;
                    return Ok(());
                }
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(parent, &mut text)?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.flush_text(parent, &mut text)?;
                        let end = self.find("-->")?;
                        let content =
                            String::from_utf8_lossy(&self.input[self.pos + 4..end]).into_owned();
                        let comment = self.store.create_comment(self.doc, content);
                        self.store
                            .append_child(parent, comment)
                            .map_err(|e| self.error(e.to_string()))?;
                        self.pos = end + 3;
                    } else if self.starts_with("<![CDATA[") {
                        let end = self.find("]]>")?;
                        text.push_str(&String::from_utf8_lossy(&self.input[self.pos + 9..end]));
                        self.pos = end + 3;
                    } else if self.starts_with("<?") {
                        self.flush_text(parent, &mut text)?;
                        let end = self.find("?>")?;
                        let raw =
                            String::from_utf8_lossy(&self.input[self.pos + 2..end]).into_owned();
                        let (target, content) = match raw.split_once(char::is_whitespace) {
                            Some((t, c)) => (t.to_string(), c.trim_start().to_string()),
                            None => (raw, String::new()),
                        };
                        let pi = self.store.create_pi(self.doc, target, content);
                        self.store
                            .append_child(parent, pi)
                            .map_err(|e| self.error(e.to_string()))?;
                        self.pos = end + 2;
                    } else {
                        self.flush_text(parent, &mut text)?;
                        if top_level && element_seen {
                            return Err(self.error("multiple document elements"));
                        }
                        self.parse_element(parent)?;
                        element_seen = true;
                        if top_level {
                            self.skip_whitespace_and_misc()?;
                        }
                    }
                }
                Some(_) => {
                    if top_level {
                        // Character data outside the document element: only
                        // whitespace is allowed (already skipped), anything
                        // else is an error.
                        if !self.peek().map(|c| c.is_ascii_whitespace()).unwrap_or(true) {
                            return Err(self.error("character data outside document element"));
                        }
                        self.pos += 1;
                    } else {
                        let c = self.read_char_data()?;
                        text.push_str(&c);
                    }
                }
            }
        }
    }

    fn flush_text(&mut self, parent: NodeId, text: &mut String) -> Result<()> {
        if text.is_empty() {
            return Ok(());
        }
        // Whitespace-only runs between elements are not materialized; this
        // mirrors a data-oriented (non-mixed-content) reading of the
        // benchmark documents and keeps node counts meaningful.
        if text.chars().all(char::is_whitespace) {
            text.clear();
            return Ok(());
        }
        let node = self.store.create_text(self.doc, std::mem::take(text));
        self.store
            .append_child(parent, node)
            .map_err(|e| self.error(e.to_string()))?;
        Ok(())
    }

    fn read_char_data(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(
            &String::from_utf8_lossy(&self.input[start..self.pos]),
            start,
        )
    }

    fn parse_element(&mut self, parent: NodeId) -> Result<()> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.bump(1);
        let name = self.read_name()?;
        let element = self.store.create_element(self.doc, QName::parse(&name));
        self.store
            .append_child(parent, element)
            .map_err(|e| self.error(e.to_string()))?;

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump(1);
                    self.parse_content(element, false)?;
                    // Closing tag.
                    if !self.starts_with("</") {
                        return Err(self.error(format!("expected closing tag for <{name}>")));
                    }
                    self.bump(2);
                    let close = self.read_name()?;
                    if close != name {
                        return Err(self.error(format!(
                            "mismatched closing tag: expected </{name}>, found </{close}>"
                        )));
                    }
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.error("expected '>' after closing tag name"));
                    }
                    self.bump(1);
                    return Ok(());
                }
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.error("expected '/>'"));
                    }
                    self.bump(2);
                    return Ok(());
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.bump(1);
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.bump(1);
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.bump(1);
                    let value = decode_entities(&raw, start)?;
                    self.store
                        .add_attribute(element, QName::parse(&attr_name), value)
                        .map_err(|e| self.error(e.to_string()))?;
                }
                None => return Err(self.error("unexpected end of input inside tag")),
            }
        }
    }
}

/// Replace the predefined entities and numeric character references in `raw`.
fn decode_entities(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| XdmError::parse(offset, "unterminated entity reference"))?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| XdmError::parse(offset, "invalid hex character reference"))?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| XdmError::parse(offset, "invalid character reference"))?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            other => {
                return Err(XdmError::parse(
                    offset,
                    format!("unknown entity reference '&{other};'"),
                ))
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Axis, NodeTest};

    #[test]
    fn parses_simple_document() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<a><b>x</b><c/></a>").unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.name(root).unwrap().local, "a");
        assert_eq!(store.children(root).len(), 2);
    }

    #[test]
    fn parses_declaration_doctype_comments_and_pis() {
        let mut store = NodeStore::new();
        let text = "<?xml version=\"1.0\"?>\n<!DOCTYPE r [<!ELEMENT r ANY>]>\n<!-- hi -->\n<r><?target data?><!-- inner --><x/></r>";
        let doc = store.parse_document(text).unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.name(root).unwrap().local, "r");
        let kids = store.children(root);
        assert_eq!(kids.len(), 3); // PI, comment, element
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<a t=\"x &amp; y\">1 &lt; 2 &#65;&#x42;</a>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.attribute_value(root, "t"), Some("x & y"));
        assert_eq!(store.string_value(root), "1 < 2 AB");
    }

    #[test]
    fn cdata_is_text() {
        let mut store = NodeStore::new();
        let doc = store
            .parse_document("<a><![CDATA[<not-a-tag>]]></a>")
            .unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.string_value(root), "<not-a-tag>");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.axis_nodes(root, Axis::Child, &NodeTest::AnyNode);
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        let mut store = NodeStore::new();
        assert!(store.parse_document("<a><b></a>").is_err());
        assert!(store.parse_document("<a>").is_err());
        assert!(store.parse_document("<a/><b/>").is_err());
        assert!(store.parse_document("no markup").is_err());
        assert!(store.parse_document("<a attr=novalue/>").is_err());
        assert!(store.parse_document("<a>&unknown;</a>").is_err());
    }

    #[test]
    fn mismatched_close_tag_reports_names() {
        let mut store = NodeStore::new();
        let err = store.parse_document("<a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }
}
