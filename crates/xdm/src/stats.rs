//! Store statistics for cost-based plan selection.
//!
//! [`crate::NodeStore::statistics`] walks every document once per store
//! [`revision`](crate::NodeStore::revision) and summarizes the shape of the
//! data: node counts per kind, child-axis fanout, tree depth, `id()` index
//! density and text-pool size.  The cost model in `xqy_core::cost` feeds
//! these numbers into its per-alternative formulas, and the service layer
//! folds [`StoreStatistics::fingerprint`] into plan-cache keys so a
//! republish with materially different data re-costs instead of reusing a
//! stale decision.

/// Shape summary of a single document (or constructed fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DocumentStatistics {
    /// Total nodes in the document arena (all kinds, attributes included).
    pub nodes: u64,
    /// Element nodes.
    pub elements: u64,
    /// Attribute nodes.
    pub attributes: u64,
    /// Text nodes.
    pub text_nodes: u64,
    /// Nodes with at least one child.
    pub parents: u64,
    /// Sum of per-node child counts (edges of the child axis).
    pub child_links: u64,
    /// Largest single child list in the document.
    pub max_fanout: u64,
    /// Longest root-to-leaf path, in edges (0 for a lone root).
    pub max_depth: u64,
    /// Entries in the document's `id()` index.
    pub id_entries: u64,
}

impl DocumentStatistics {
    pub(crate) fn absorb(&mut self, other: &DocumentStatistics) {
        self.nodes += other.nodes;
        self.elements += other.elements;
        self.attributes += other.attributes;
        self.text_nodes += other.text_nodes;
        self.parents += other.parents;
        self.child_links += other.child_links;
        self.max_fanout = self.max_fanout.max(other.max_fanout);
        self.max_depth = self.max_depth.max(other.max_depth);
        self.id_entries += other.id_entries;
    }
}

/// Shape summary of a whole [`crate::NodeStore`], memoized per revision.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStatistics {
    /// The [`crate::NodeStore::revision`] these statistics were computed at.
    pub revision: u64,
    /// Number of documents (parsed or constructed fragments).
    pub documents: u64,
    /// Per-document detail, indexed by `DocId`.
    pub per_document: Vec<DocumentStatistics>,
    /// Aggregate over every document.
    pub totals: DocumentStatistics,
    /// Distinct strings interned in the store's text pool.
    pub text_pool_strings: u64,
}

impl StoreStatistics {
    /// Mean child-axis fanout over nodes that have children at all
    /// (1.0 for an empty or childless store, so depth estimates stay
    /// finite).
    pub fn avg_fanout(&self) -> f64 {
        if self.totals.parents == 0 {
            1.0
        } else {
            self.totals.child_links as f64 / self.totals.parents as f64
        }
    }

    /// Fraction of elements carrying an ID-typed attribute (0.0..=1.0).
    pub fn id_density(&self) -> f64 {
        if self.totals.elements == 0 {
            0.0
        } else {
            self.totals.id_entries as f64 / self.totals.elements as f64
        }
    }

    /// A bucketed digest of the statistics: stable across immaterial
    /// mutations (a handful of constructed nodes), different whenever the
    /// data changed *materially* — any power-of-two bucket of the node /
    /// element / id-entry counts moving, the depth or fanout profile
    /// shifting, or the document count changing.  The service layer stamps
    /// this into plan-cache keys.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the log2 buckets; no dependency on the hash RandomState
        // so the value is stable across processes and can be persisted.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            h ^= v.wrapping_add(1);
            h = h.wrapping_mul(PRIME);
        };
        mix(self.documents);
        mix(log2_bucket(self.totals.nodes));
        mix(log2_bucket(self.totals.elements));
        mix(log2_bucket(self.totals.id_entries));
        mix(log2_bucket(self.totals.max_depth));
        mix(log2_bucket(self.totals.max_fanout));
        mix(log2_bucket(self.avg_fanout().round() as u64));
        mix(log2_bucket(self.text_pool_strings));
        h
    }
}

/// `floor(log2(v)) + 1`, with 0 reserved for `v == 0`: the bucket moves only
/// when a quantity roughly doubles or halves.
fn log2_bucket(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        64 - u64::from(v.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_move_on_doubling() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
    }

    #[test]
    fn fingerprint_ignores_immaterial_growth() {
        let mut a = StoreStatistics {
            documents: 1,
            totals: DocumentStatistics {
                nodes: 1000,
                elements: 600,
                parents: 300,
                child_links: 900,
                max_fanout: 10,
                max_depth: 6,
                id_entries: 100,
                ..Default::default()
            },
            text_pool_strings: 400,
            ..Default::default()
        };
        let fp = a.fingerprint();
        // A few more nodes in the same buckets: same fingerprint.
        a.totals.nodes = 1010;
        a.revision = 99;
        assert_eq!(a.fingerprint(), fp);
        // Doubling the node count moves a bucket: new fingerprint.
        a.totals.nodes = 2100;
        assert_ne!(a.fingerprint(), fp);
    }
}
