//! Item sequences — the universal value type of XQuery.
//!
//! Every XQuery expression evaluates to a (possibly empty, possibly
//! single-item) ordered sequence of items.  [`Sequence`] offers the helpers
//! the evaluator and the fixed point runtime need: node extraction,
//! emptiness tests, concatenation, and the *set-equality* relation `=ₛ` of
//! the paper (equality up to duplicates and order, over the node portion of
//! the sequences).
//!
//! # Representation
//!
//! The interpreter's hot paths — the Figure-3 fixpoint loops, axis steps,
//! `union`/`except`, `id()` chains — deal almost exclusively in **all-node
//! sequences**.  Carrying those as `Vec<Item>` means every variable
//! reference clones a vector of 32-byte enums and every set operation first
//! filters the node ids back out.  `Sequence` therefore has two internal
//! representations:
//!
//! * **`Items`** — the general `Vec<Item>` form, used whenever atomic
//!   values are present;
//! * **`Nodes`** — an `Arc<Vec<NodeId>>` order buffer for all-node
//!   sequences.  Cloning (the `$x` variable-reference path, environment
//!   pushes, per-seed result replication) is a reference-count bump;
//!   [`Sequence::all_nodes`] is O(1); [`Sequence::node_ids`] exposes the id
//!   slice without copying.  The `Item` view ([`Sequence::items`],
//!   [`Sequence::iter`]) is materialized lazily, at most once per sequence
//!   value, and only when a consumer actually asks for items.
//!
//! Construction via [`Sequence::from_nodes`] and concatenation of node
//! sequences stay in the `Nodes` form; pushing an atomic item degrades the
//! sequence to the general form transparently.  The two representations are
//! observationally identical — equality, iteration order and the public API
//! do not depend on which one backs a given value.

use std::sync::{Arc, OnceLock};

use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::store::NodeStore;
use crate::value::{AtomicValue, Item};

/// An ordered sequence of XDM items.
#[derive(Debug, Clone, Default)]
pub struct Sequence {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// The general form: any mix of nodes and atomic values.
    Items(Vec<Item>),
    /// The all-nodes fast path: ids in sequence order, shared by handle.
    Nodes(NodeSeq),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Items(Vec::new())
    }
}

/// The node-backed representation: a shared order buffer plus a lazily
/// materialized `Item` view for consumers of the general API.
#[derive(Debug, Default)]
/// Thread-safety (audited for the parallel fixpoint drivers): the lazy
/// `items` view is a [`OnceLock`], so concurrent `items()` calls on a
/// *shared* `NodeSeq` race benignly inside `get_or_init` — one
/// initializer wins, every caller observes the same fully-written vector,
/// and the loser's duplicate is dropped.  Both inputs to the initializer
/// (`ids`, an immutable `Arc` buffer) are frozen for the value's
/// lifetime, so every racer computes identical contents.  Clones share
/// `ids` but reset the cell, so a clone handed to another shard
/// re-materializes independently rather than aliasing the view.
struct NodeSeq {
    ids: Arc<Vec<NodeId>>,
    /// Filled on first call to [`Sequence::items`]; never cloned (clones
    /// share `ids` and re-materialize on demand).
    items: OnceLock<Vec<Item>>,
}

impl Clone for NodeSeq {
    fn clone(&self) -> Self {
        NodeSeq {
            ids: self.ids.clone(),
            items: OnceLock::new(),
        }
    }
}

impl NodeSeq {
    fn from_vec(ids: Vec<NodeId>) -> Self {
        NodeSeq {
            ids: Arc::new(ids),
            items: OnceLock::new(),
        }
    }

    fn items(&self) -> &[Item] {
        self.items
            .get_or_init(|| self.ids.iter().map(|&n| Item::Node(n)).collect())
    }

    /// Mutable access to the id buffer (copy-on-write when shared), resetting
    /// the materialized item view.
    fn ids_mut(&mut self) -> &mut Vec<NodeId> {
        self.items = OnceLock::new();
        Arc::make_mut(&mut self.ids)
    }
}

impl Sequence {
    /// The empty sequence `()`.
    pub fn empty() -> Self {
        Sequence::default()
    }

    /// A singleton sequence.
    pub fn singleton(item: Item) -> Self {
        match item {
            Item::Node(n) => Sequence::from_nodes([n]),
            other => Sequence {
                repr: Repr::Items(vec![other]),
            },
        }
    }

    /// Build a sequence from items.
    pub fn from_items(items: Vec<Item>) -> Self {
        crate::budget::charge((items.len() * std::mem::size_of::<Item>()) as u64);
        Sequence {
            repr: Repr::Items(items),
        }
    }

    /// Build a sequence of node items (kept in the node-backed fast-path
    /// representation; no `Item` is materialized until a consumer asks).
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let ids: Vec<NodeId> = nodes.into_iter().collect();
        crate::budget::charge((ids.len() * std::mem::size_of::<NodeId>()) as u64);
        Sequence {
            repr: Repr::Nodes(NodeSeq::from_vec(ids)),
        }
    }

    /// Build a node sequence sharing an existing id buffer (O(1), no copy).
    pub fn from_shared_nodes(nodes: Arc<Vec<NodeId>>) -> Self {
        Sequence {
            repr: Repr::Nodes(NodeSeq {
                ids: nodes,
                items: OnceLock::new(),
            }),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Items(items) => items.len(),
            Repr::Nodes(ns) => ns.ids.len(),
        }
    }

    /// `true` for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the items.  On a node-backed sequence this materializes the
    /// `Item` view (once per sequence value); prefer [`Sequence::node_ids`]
    /// where only node identities are needed.
    pub fn items(&self) -> &[Item] {
        match &self.repr {
            Repr::Items(items) => items,
            Repr::Nodes(ns) => ns.items(),
        }
    }

    /// Consume the sequence, yielding its items.
    pub fn into_items(self) -> Vec<Item> {
        match self.repr {
            Repr::Items(items) => items,
            Repr::Nodes(ns) => match Arc::try_unwrap(ns.ids) {
                Ok(ids) => ids.into_iter().map(Item::Node).collect(),
                Err(shared) => shared.iter().map(|&n| Item::Node(n)).collect(),
            },
        }
    }

    /// Iterate over the items.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items().iter()
    }

    /// Append a single item.  Node pushes keep (or establish) the
    /// node-backed representation; atomic pushes degrade to the general form.
    pub fn push(&mut self, item: Item) {
        match (&mut self.repr, item) {
            (Repr::Nodes(ns), Item::Node(n)) => ns.ids_mut().push(n),
            (Repr::Items(items), Item::Node(n)) if items.is_empty() => {
                self.repr = Repr::Nodes(NodeSeq::from_vec(vec![n]));
            }
            (Repr::Items(items), item) => items.push(item),
            (Repr::Nodes(_), item) => {
                self.degrade_to_items().push(item);
            }
        }
    }

    /// Append all items of `other` (sequence concatenation, the `,` operator).
    pub fn extend(&mut self, other: Sequence) {
        if other.is_empty() {
            return;
        }
        // Budget note: accumulation (`out.extend(step)`) copies `other`'s
        // elements into `self`'s buffer — a real allocation on top of the
        // charge `other` already paid at construction, mirroring the 2×
        // peak such loops actually reach.  The empty-`self` adoption below
        // moves a handle instead, so it charges nothing new.
        if self.is_empty() {
            // Adopt the other representation wholesale — the common shape of
            // accumulation loops (`out` starts empty, first step fills it)
            // becomes a handle move.
            *self = other;
            return;
        }
        crate::budget::charge((other.len() * std::mem::size_of::<Item>()) as u64);
        match (&mut self.repr, other.repr) {
            (Repr::Nodes(ns), Repr::Nodes(o)) => ns.ids_mut().extend(o.ids.iter().copied()),
            (Repr::Nodes(_), Repr::Items(o)) => {
                self.degrade_to_items().extend(o);
            }
            (Repr::Items(items), Repr::Items(o)) => items.extend(o),
            (Repr::Items(items), Repr::Nodes(o)) => {
                items.extend(o.ids.iter().map(|&n| Item::Node(n)))
            }
        }
    }

    /// Switch to the general representation, returning its item vector.
    fn degrade_to_items(&mut self) -> &mut Vec<Item> {
        if let Repr::Nodes(ns) = &self.repr {
            let items: Vec<Item> = ns.ids.iter().map(|&n| Item::Node(n)).collect();
            self.repr = Repr::Items(items);
        }
        match &mut self.repr {
            Repr::Items(items) => items,
            Repr::Nodes(_) => unreachable!("just degraded"),
        }
    }

    /// Concatenate two sequences.
    pub fn concat(mut self, other: Sequence) -> Sequence {
        self.extend(other);
        self
    }

    /// The node ids of all node items, in sequence order (atomics skipped).
    pub fn nodes(&self) -> Vec<NodeId> {
        match &self.repr {
            Repr::Items(items) => items.iter().filter_map(Item::as_node).collect(),
            Repr::Nodes(ns) => ns.ids.as_ref().clone(),
        }
    }

    /// The node ids as a borrowed slice, when this sequence is in the
    /// node-backed representation (`None` for the general form — including
    /// all-node sequences that were built item by item).  The zero-copy
    /// companion of [`Sequence::nodes`] for hot paths.
    pub fn node_ids(&self) -> Option<&[NodeId]> {
        match &self.repr {
            Repr::Nodes(ns) => Some(&ns.ids),
            Repr::Items(_) => None,
        }
    }

    /// The node id of the first item, if the first item is a node (O(1) in
    /// both representations — never materializes items).
    pub fn first_node(&self) -> Option<NodeId> {
        match &self.repr {
            Repr::Items(items) => items.first().and_then(Item::as_node),
            Repr::Nodes(ns) => ns.ids.first().copied(),
        }
    }

    /// The node items as a [`NodeSet`] (duplicates collapse, order drops).
    pub fn node_set(&self) -> NodeSet {
        match &self.repr {
            Repr::Items(items) => items.iter().filter_map(Item::as_node).collect(),
            Repr::Nodes(ns) => NodeSet::from_nodes(ns.ids.iter().copied()),
        }
    }

    /// `true` if every item is a node (O(1) on the node-backed
    /// representation).
    pub fn all_nodes(&self) -> bool {
        match &self.repr {
            Repr::Items(items) => items.iter().all(Item::is_node),
            Repr::Nodes(_) => true,
        }
    }

    /// `true` if the sequence contains `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        match &self.repr {
            Repr::Items(items) => items.iter().any(|i| i.as_node() == Some(node)),
            Repr::Nodes(ns) => ns.ids.contains(&node),
        }
    }

    /// The first item, if any.
    pub fn first(&self) -> Option<&Item> {
        self.items().first()
    }

    /// Set-equality `=ₛ` from the paper: equal as *sets* of items,
    /// disregarding duplicates and order.  For node sequences this is the
    /// `fs:ddo(X1) = fs:ddo(X2)` test of Section 2 — compared as identity
    /// bitsets ([`NodeSet`]), which needs neither sorting nor the store;
    /// atomic items are compared by value equality.
    pub fn set_equal(&self, other: &Sequence) -> bool {
        if self.node_set() != other.node_set() {
            return false;
        }
        if let (Repr::Nodes(_), Repr::Nodes(_)) = (&self.repr, &other.repr) {
            // Pure node sequences: the bitset comparison was the whole test.
            return true;
        }
        // Atomic portions compared as multiset-free value sets.
        let a_atoms: Vec<&AtomicValue> = self.iter().filter_map(Item::as_atomic).collect();
        let b_atoms: Vec<&AtomicValue> = other.iter().filter_map(Item::as_atomic).collect();
        a_atoms.iter().all(|x| b_atoms.iter().any(|y| x == y))
            && b_atoms.iter().all(|y| a_atoms.iter().any(|x| x == y))
    }

    /// Serialize the sequence the way a query result is usually displayed:
    /// nodes as XML, atomics as their string values, separated by spaces.
    pub fn display(&self, store: &NodeStore) -> String {
        let parts: Vec<String> = self
            .iter()
            .map(|item| match item {
                Item::Node(n) => crate::serialize::serialize_node(store, *n),
                Item::Atomic(a) => a.string_value(),
            })
            .collect();
        parts.join(" ")
    }
}

impl PartialEq for Sequence {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Nodes(a), Repr::Nodes(b)) => a.ids == b.ids,
            _ => self.items() == other.items(),
        }
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Self {
        Sequence::from_items(items)
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Sequence::from_items(iter.into_iter().collect())
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_items().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::QName;

    #[test]
    fn construction_and_concat() {
        let a = Sequence::from_items(vec![Item::integer(1), Item::string("a")]);
        let b = Sequence::singleton(Item::boolean(true));
        let c = a.concat(b);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Sequence::empty().is_empty());
    }

    #[test]
    fn set_equality_ignores_order_and_duplicates() {
        // Mirrors the paper's example: (1,"a") =ₛ ("a",1,1).
        let a = Sequence::from_items(vec![Item::integer(1), Item::string("a")]);
        let b = Sequence::from_items(vec![Item::string("a"), Item::integer(1), Item::integer(1)]);
        assert!(a.set_equal(&b));
        let c = Sequence::from_items(vec![Item::string("a")]);
        assert!(!a.set_equal(&c));
    }

    #[test]
    fn set_equality_on_nodes_uses_identity() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/><b/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.children(root);
        let ab = Sequence::from_nodes(kids.clone());
        let ba = Sequence::from_nodes(vec![kids[1], kids[0], kids[0]]);
        assert!(ab.set_equal(&ba));

        let frag = store.new_fragment();
        let other = store.create_element(frag, QName::local("a"));
        let with_other = Sequence::from_nodes(vec![kids[0], other]);
        assert!(!ab.set_equal(&with_other));
    }

    #[test]
    fn nodes_and_contains() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let a = store.children(root)[0];
        let seq = Sequence::from_items(vec![Item::Node(a), Item::integer(1)]);
        assert_eq!(seq.nodes(), vec![a]);
        assert!(!seq.all_nodes());
        assert!(seq.contains_node(a));
        assert!(!seq.contains_node(root));
    }

    #[test]
    fn node_backed_representation_is_observationally_identical() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/><b/><c/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.children(root);

        // Same content, two representations: from_nodes vs item-by-item.
        let fast = Sequence::from_nodes(kids.clone());
        let general = Sequence::from_items(kids.iter().map(|&n| Item::Node(n)).collect());
        assert_eq!(fast, general);
        assert_eq!(fast.items(), general.items());
        assert_eq!(fast.nodes(), general.nodes());
        assert!(fast.all_nodes() && general.all_nodes());
        assert_eq!(fast.first(), general.first());
        assert_eq!(fast.first_node(), Some(kids[0]));

        // The fast path exposes the id slice; the general form does not.
        assert_eq!(fast.node_ids(), Some(kids.as_slice()));
        assert!(general.node_ids().is_none());

        // Clones share the id buffer (no per-item work).
        let clone = fast.clone();
        assert_eq!(clone.node_ids(), fast.node_ids());
    }

    #[test]
    fn node_sequence_degrades_on_atomic_push() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let a = store.children(root)[0];

        let mut seq = Sequence::from_nodes(vec![a]);
        assert!(seq.node_ids().is_some());
        seq.push(Item::integer(7));
        assert!(seq.node_ids().is_none());
        assert!(!seq.all_nodes());
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.nodes(), vec![a]);

        // Node pushes onto an empty sequence establish the fast path.
        let mut out = Sequence::empty();
        out.push(Item::Node(a));
        out.push(Item::Node(root));
        assert_eq!(out.node_ids(), Some([a, root].as_slice()));
    }

    #[test]
    fn extend_keeps_node_representation_and_adopts_on_empty() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/><b/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.children(root);

        let mut out = Sequence::empty();
        out.extend(Sequence::from_nodes(vec![kids[0]]));
        assert!(
            out.node_ids().is_some(),
            "empty extend adopts the fast path"
        );
        out.extend(Sequence::from_nodes(vec![kids[1]]));
        assert_eq!(out.node_ids(), Some(kids.as_slice()));

        out.extend(Sequence::singleton(Item::integer(1)));
        assert!(out.node_ids().is_none());
        assert_eq!(out.len(), 3);
    }
}
