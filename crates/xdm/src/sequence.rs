//! Item sequences — the universal value type of XQuery.
//!
//! Every XQuery expression evaluates to a (possibly empty, possibly
//! single-item) ordered sequence of items.  [`Sequence`] is a thin wrapper
//! around `Vec<Item>` with the helpers the evaluator and the fixed point
//! runtime need: node extraction, emptiness tests, concatenation, and the
//! *set-equality* relation `=ₛ` of the paper (equality up to duplicates and
//! order, over the node portion of the sequences).

use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::store::NodeStore;
use crate::value::{AtomicValue, Item};

/// An ordered sequence of XDM items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sequence {
    items: Vec<Item>,
}

impl Sequence {
    /// The empty sequence `()`.
    pub fn empty() -> Self {
        Sequence { items: Vec::new() }
    }

    /// A singleton sequence.
    pub fn singleton(item: Item) -> Self {
        Sequence { items: vec![item] }
    }

    /// Build a sequence from items.
    pub fn from_items(items: Vec<Item>) -> Self {
        Sequence { items }
    }

    /// Build a sequence of node items.
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Sequence {
            items: nodes.into_iter().map(Item::Node).collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the underlying items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Consume the sequence, yielding its items.
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }

    /// Iterate over the items.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items.iter()
    }

    /// Append a single item.
    pub fn push(&mut self, item: Item) {
        self.items.push(item);
    }

    /// Append all items of `other` (sequence concatenation, the `,` operator).
    pub fn extend(&mut self, other: Sequence) {
        self.items.extend(other.items);
    }

    /// Concatenate two sequences.
    pub fn concat(mut self, other: Sequence) -> Sequence {
        self.extend(other);
        self
    }

    /// The node ids of all node items, in sequence order (atomics skipped).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.items.iter().filter_map(Item::as_node).collect()
    }

    /// The node items as a [`NodeSet`] (duplicates collapse, order drops).
    pub fn node_set(&self) -> NodeSet {
        self.items.iter().filter_map(Item::as_node).collect()
    }

    /// `true` if every item is a node.
    pub fn all_nodes(&self) -> bool {
        self.items.iter().all(Item::is_node)
    }

    /// `true` if the sequence contains `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.items.iter().any(|i| i.as_node() == Some(node))
    }

    /// The first item, if any.
    pub fn first(&self) -> Option<&Item> {
        self.items.first()
    }

    /// Set-equality `=ₛ` from the paper: equal as *sets* of items,
    /// disregarding duplicates and order.  For node sequences this is the
    /// `fs:ddo(X1) = fs:ddo(X2)` test of Section 2 — compared as identity
    /// bitsets ([`NodeSet`]), which needs neither sorting nor the store;
    /// atomic items are compared by value equality.
    pub fn set_equal(&self, other: &Sequence) -> bool {
        if self.node_set() != other.node_set() {
            return false;
        }
        // Atomic portions compared as multiset-free value sets.
        let a_atoms: Vec<&AtomicValue> = self.items.iter().filter_map(Item::as_atomic).collect();
        let b_atoms: Vec<&AtomicValue> = other.items.iter().filter_map(Item::as_atomic).collect();
        a_atoms.iter().all(|x| b_atoms.iter().any(|y| x == y))
            && b_atoms.iter().all(|y| a_atoms.iter().any(|x| x == y))
    }

    /// Serialize the sequence the way a query result is usually displayed:
    /// nodes as XML, atomics as their string values, separated by spaces.
    pub fn display(&self, store: &NodeStore) -> String {
        let parts: Vec<String> = self
            .items
            .iter()
            .map(|item| match item {
                Item::Node(n) => crate::serialize::serialize_node(store, *n),
                Item::Atomic(a) => a.string_value(),
            })
            .collect();
        parts.join(" ")
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Self {
        Sequence { items }
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Sequence {
            items: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::QName;

    #[test]
    fn construction_and_concat() {
        let a = Sequence::from_items(vec![Item::integer(1), Item::string("a")]);
        let b = Sequence::singleton(Item::boolean(true));
        let c = a.concat(b);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Sequence::empty().is_empty());
    }

    #[test]
    fn set_equality_ignores_order_and_duplicates() {
        // Mirrors the paper's example: (1,"a") =ₛ ("a",1,1).
        let a = Sequence::from_items(vec![Item::integer(1), Item::string("a")]);
        let b = Sequence::from_items(vec![Item::string("a"), Item::integer(1), Item::integer(1)]);
        assert!(a.set_equal(&b));
        let c = Sequence::from_items(vec![Item::string("a")]);
        assert!(!a.set_equal(&c));
    }

    #[test]
    fn set_equality_on_nodes_uses_identity() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/><b/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let kids = store.children(root);
        let ab = Sequence::from_nodes(kids.clone());
        let ba = Sequence::from_nodes(vec![kids[1], kids[0], kids[0]]);
        assert!(ab.set_equal(&ba));

        let frag = store.new_fragment();
        let other = store.create_element(frag, QName::local("a"));
        let with_other = Sequence::from_nodes(vec![kids[0], other]);
        assert!(!ab.set_equal(&with_other));
    }

    #[test]
    fn nodes_and_contains() {
        let mut store = NodeStore::new();
        let doc = store.parse_document("<r><a/></r>").unwrap();
        let root = store.document_element(doc).unwrap();
        let a = store.children(root)[0];
        let seq = Sequence::from_items(vec![Item::Node(a), Item::integer(1)]);
        assert_eq!(seq.nodes(), vec![a]);
        assert!(!seq.all_nodes());
        assert!(seq.contains_node(a));
        assert!(!seq.contains_node(root));
    }
}
