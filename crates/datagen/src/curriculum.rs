//! Curriculum data (Figure 1 of the paper) and the prerequisite queries.
//!
//! The generator produces `<curriculum>` documents whose `<course>` elements
//! reference each other through `<prerequisites>/<pre_code>` entries.  The
//! reference graph is mostly a layered DAG (courses reference courses of
//! earlier layers, giving recursion depths that grow with the instance size)
//! plus a configurable number of cycles, which is what the paper's
//! consistency-check query ("courses that are among their own
//! prerequisites", taken from the xlinkit case study) looks for.

use rand::Rng;

use crate::{rng, Scale};

/// Parameters for the curriculum generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurriculumConfig {
    /// Number of courses.
    pub courses: usize,
    /// Maximum number of direct prerequisites per course.
    pub max_prerequisites: usize,
    /// Number of cycle-closing references (courses among their own
    /// prerequisites).
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CurriculumConfig {
    /// Preset matching the paper's instance sizes (medium: 800 courses,
    /// large: 4 000 courses).
    pub fn for_scale(scale: Scale) -> Self {
        let (courses, cycles) = match scale {
            Scale::Small => (100, 2),
            Scale::Medium => (800, 8),
            Scale::Large => (4_000, 20),
            Scale::Huge => (12_000, 40),
        };
        CurriculumConfig {
            courses,
            max_prerequisites: 3,
            cycles,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate the curriculum document as XML text.
///
/// Course codes are `c0 … c{n-1}`.  Course `c0` has no prerequisites; every
/// other course references between one and `max_prerequisites` earlier
/// courses, biased towards its immediate predecessors so that transitive
/// closures are deep (recursion depth grows roughly logarithmically with
/// the instance size, like the paper's 18–35 levels).
pub fn generate(config: &CurriculumConfig) -> String {
    let mut rng = rng(config.seed);
    let mut out = String::with_capacity(config.courses * 96);
    out.push_str("<curriculum>\n");
    for i in 0..config.courses {
        out.push_str(&format!("  <course code=\"c{i}\">\n    <prerequisites>"));
        if i > 0 {
            let count = rng.gen_range(1..=config.max_prerequisites.max(1));
            for _ in 0..count {
                // Bias towards nearby predecessors: deep chains, few fan-ins.
                let span = (i / 4).clamp(1, 32);
                let target = i - 1 - rng.gen_range(0..span.min(i));
                out.push_str(&format!("<pre_code>c{target}</pre_code>"));
            }
        }
        out.push_str("</prerequisites>\n  </course>\n");
    }
    // Cycle-closing courses: course c_k lists a course that (transitively)
    // requires c_k again.  We simply make the last `cycles` courses require
    // a course that requires them back via an extra course entry.
    for c in 0..config.cycles.min(config.courses / 2) {
        let a = config.courses + 2 * c;
        let b = config.courses + 2 * c + 1;
        out.push_str(&format!(
            "  <course code=\"c{a}\"><prerequisites><pre_code>c{b}</pre_code></prerequisites></course>\n"
        ));
        out.push_str(&format!(
            "  <course code=\"c{b}\"><prerequisites><pre_code>c{a}</pre_code></prerequisites></course>\n"
        ));
    }
    out.push_str("</curriculum>\n");
    out
}

/// The URI the benchmark harness registers the document under.
pub const DOC_URI: &str = "curriculum.xml";

/// The recursion body of the prerequisites query (Q1 of the paper), as a
/// function of the recursion variable `$x`.
pub const BODY: &str = "$x/id(./prerequisites/pre_code)";

/// The full Q1-style query: all (direct or indirect) prerequisites of the
/// given course code.
pub fn prerequisites_query(code: &str) -> String {
    format!(
        "with $x seeded by doc('{DOC_URI}')/curriculum/course[@code='{code}'] \
         recurse $x/id(./prerequisites/pre_code)"
    )
}

/// The consistency-check query of the paper's evaluation (Rule 5 of the
/// xlinkit curriculum case study): courses that are among their own
/// prerequisites.  Expressed with the IFP form per course.
pub fn consistency_check_query() -> String {
    format!(
        "for $c in doc('{DOC_URI}')/curriculum/course \
         where some $p in (with $x seeded by $c recurse $x/id(./prerequisites/pre_code)) \
               satisfies $p is $c \
         return $c"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = CurriculumConfig {
            courses: 50,
            max_prerequisites: 3,
            cycles: 2,
            seed: 7,
        };
        assert_eq!(generate(&config), generate(&config));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CurriculumConfig {
            courses: 50,
            max_prerequisites: 3,
            cycles: 0,
            seed: 1,
        };
        let b = CurriculumConfig { seed: 2, ..a };
        assert_ne!(generate(&a), generate(&b));
    }

    #[test]
    fn document_is_well_formed_and_sized() {
        let config = CurriculumConfig::for_scale(Scale::Small);
        let xml = generate(&config);
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let courses = store.axis_nodes(
            root,
            xqy_xdm::Axis::Child,
            &xqy_xdm::NodeTest::Name("course".into()),
        );
        // config.courses plus 2 per cycle.
        assert_eq!(courses.len(), config.courses + 2 * config.cycles);
    }

    #[test]
    fn prerequisites_reference_existing_courses() {
        let config = CurriculumConfig::for_scale(Scale::Small);
        let xml = generate(&config);
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        store.register_id_attribute(doc, "code");
        let root = store.document_element(doc).unwrap();
        let codes = store.axis_nodes(
            root,
            xqy_xdm::Axis::Descendant,
            &xqy_xdm::NodeTest::Name("pre_code".into()),
        );
        assert!(!codes.is_empty());
        for code in codes {
            let value = store.string_value(code);
            assert!(
                store.lookup_id(doc, &value).is_some(),
                "dangling prerequisite {value}"
            );
        }
    }

    #[test]
    fn queries_mention_the_document_uri() {
        assert!(prerequisites_query("c1").contains(DOC_URI));
        assert!(consistency_check_query().contains("recurse"));
    }
}
