#![warn(missing_docs)]

//! # xqy-datagen — benchmark workloads for the IFP reproduction
//!
//! The paper evaluates the Naïve/Delta trade-off on four workloads
//! (Section 5, Table 2):
//!
//! | Paper workload | Generator here |
//! |---|---|
//! | XMark auction data (bidder network query, Figure 10) | [`auction`] |
//! | ToXgene-generated curriculum data (Figure 1) | [`curriculum`] |
//! | Shakespeare's *Romeo and Juliet* markup (dialog query) | [`play`] |
//! | 50 000 hospital patient records (hereditary disease) | [`hospital`] |
//!
//! The original data sets are not redistributable (XMark/ToXgene output,
//! ibiblio's Shakespeare corpus, a proprietary patient database), so each
//! module generates a synthetic document with the same *structural* shape:
//! reference graphs with the fan-out, depth and growth behaviour that drive
//! the recursion statistics the paper reports.  All generators are seeded
//! and deterministic.
//!
//! Each module also provides the benchmark query in two forms:
//! * `*_QUERY` / `*_query()` — the full XQuery text for the source-level
//!   engine (`xqy-eval`), using the paper's `with … seeded by … recurse`
//!   form;
//! * `*_BODY` — the recursion body alone (a function of `$x`), which is what
//!   the algebraic compiler of `xqy-algebra` consumes.

pub mod auction;
pub mod curriculum;
pub mod hospital;
pub mod play;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale presets mirroring the paper's experiment sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small instance (quick tests, XMark scale ≈ 0.01).
    Small,
    /// Medium instance.
    Medium,
    /// Large instance.
    Large,
    /// Huge instance (XMark scale ≈ 0.33); only used by the full benchmark
    /// harness.
    Huge,
}

impl Scale {
    /// All presets, smallest first.
    pub const ALL: [Scale; 4] = [Scale::Small, Scale::Medium, Scale::Large, Scale::Huge];

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Huge => "huge",
        }
    }
}

/// Deterministic RNG shared by every generator.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_names() {
        assert_eq!(Scale::Small.name(), "small");
        assert_eq!(Scale::Huge.name(), "huge");
        assert_eq!(Scale::ALL.len(), 4);
    }
}
