//! Play markup (the paper's Romeo-and-Juliet workload): uninterrupted
//! dialogs along the `following-sibling` axis.
//!
//! The paper's query determines the maximum length of any uninterrupted
//! dialog: starting from `SPEECH` elements, each recursion level extends the
//! currently considered dialog sequences by one more `SPEECH` whose speaker
//! alternates (horizontal structural recursion).  The query text is not
//! printed in the paper ("for space reasons"), so we reconstruct the
//! workload:
//!
//! * the generator emits `ACT/SCENE/SPEECH` markup with a configurable number
//!   of speakers; consecutive speeches by different speakers form dialogs;
//! * each `SPEECH` carries a `cont` attribute naming the *next* speech of its
//!   scene **iff** the dialog continues there (the speakers differ).  This is
//!   the same denormalisation as for the auction data: it keeps the recursion
//!   body inside the algebraic compiler's subset while preserving the
//!   recursion structure (chains of alternating speakers).  The maximum
//!   dialog length equals the recursion depth + 1.

use rand::Rng;

use crate::{rng, Scale};

/// Parameters for the play generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayConfig {
    /// Number of scenes.
    pub scenes: usize,
    /// Speeches per scene.
    pub speeches_per_scene: usize,
    /// Number of distinct speakers per scene.
    pub speakers: usize,
    /// Probability (in percent) that the next speech is by a different
    /// speaker, i.e. that a dialog continues.
    pub alternation_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl PlayConfig {
    /// Preset roughly matching the Romeo-and-Juliet workload of the paper
    /// (≈ 840 speeches, dialogs up to a few dozen speeches long).
    pub fn for_scale(scale: Scale) -> Self {
        let (scenes, speeches) = match scale {
            Scale::Small => (6, 40),
            Scale::Medium => (24, 35),
            Scale::Large => (48, 60),
            Scale::Huge => (96, 90),
        };
        PlayConfig {
            scenes,
            speeches_per_scene: speeches,
            speakers: 5,
            alternation_percent: 85,
            seed: 0x501A11,
        }
    }
}

/// The URI the benchmark harness registers the document under.
pub const DOC_URI: &str = "play.xml";

/// Generate the play document as XML text.
pub fn generate(config: &PlayConfig) -> String {
    let mut rng = rng(config.seed);
    let mut out = String::new();
    out.push_str("<PLAY>\n");
    let mut speech_id = 0usize;
    for scene in 0..config.scenes {
        out.push_str(&format!("  <SCENE n=\"{scene}\">\n"));
        // Pre-compute the speaker of every speech so that the `cont` link of
        // speech i can point at speech i+1 when their speakers differ.
        let speakers: Vec<usize> = {
            let mut current = rng.gen_range(0..config.speakers.max(1));
            (0..config.speeches_per_scene)
                .map(|_| {
                    if rng.gen_range(0..100) < config.alternation_percent {
                        let next = rng.gen_range(0..config.speakers.max(1));
                        current = if next == current {
                            (next + 1) % config.speakers.max(2)
                        } else {
                            next
                        };
                    }
                    current
                })
                .collect()
        };
        for (i, &speaker) in speakers.iter().enumerate() {
            let id = format!("s{speech_id}");
            speech_id += 1;
            let cont = if i + 1 < speakers.len() && speakers[i + 1] != speaker {
                format!(" cont=\"s{speech_id}\"")
            } else {
                String::new()
            };
            // A speech *starts* a dialog when no previous speech continues
            // into it (first of the scene, or same speaker as before).
            let start = if i == 0 || speakers[i - 1] == speaker {
                " start=\"1\""
            } else {
                ""
            };
            out.push_str(&format!(
                "    <SPEECH id=\"{id}\"{cont}{start}><SPEAKER>speaker{speaker}</SPEAKER><LINE>line text {i}</LINE></SPEECH>\n"
            ));
        }
        out.push_str("  </SCENE>\n");
    }
    out.push_str("</PLAY>\n");
    out
}

/// Recursion body: the next speech of a continuing dialog.
pub const BODY: &str = "$x/id(./@cont)";

/// The dialog-expansion query: seeded with every dialog-*starting* speech,
/// each recursion level adds the next speech of every still-running dialog,
/// so the recursion depth equals the maximum dialog length minus one.
pub fn dialogs_query() -> String {
    format!("with $x seeded by doc('{DOC_URI}')//SPEECH[@start='1'] recurse {BODY}")
}

/// The paper's headline number for this workload: the maximum length of any
/// uninterrupted dialog, computed per dialog start with a nested IFP.
pub fn max_dialog_query() -> String {
    format!(
        "max(for $s in doc('{DOC_URI}')//SPEECH[@start='1'] \
         return count(with $x seeded by $s recurse {BODY}) + 1)"
    )
}

/// Maximum dialog length computed without recursion (ground truth used by
/// the integration tests): the longest run of consecutive speeches in a
/// scene whose speakers alternate pairwise.
pub fn max_dialog_length(xml: &str) -> usize {
    // The generator controls the format, so a lightweight scan suffices.
    let mut max = 0usize;
    for scene in xml.split("<SCENE").skip(1) {
        let speakers: Vec<&str> = scene
            .split("<SPEAKER>")
            .skip(1)
            .map(|s| s.split('<').next().unwrap_or(""))
            .collect();
        let mut run = 1usize;
        for pair in speakers.windows(2) {
            if pair[0] != pair[1] {
                run += 1;
                max = max.max(run);
            } else {
                run = 1;
            }
        }
        max = max.max(if speakers.is_empty() { 0 } else { run.max(1) });
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parses() {
        let config = PlayConfig::for_scale(Scale::Small);
        let xml = generate(&config);
        assert_eq!(xml, generate(&config));
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let speeches = store.axis_nodes(
            root,
            xqy_xdm::Axis::Descendant,
            &xqy_xdm::NodeTest::Name("SPEECH".into()),
        );
        assert_eq!(speeches.len(), config.scenes * config.speeches_per_scene);
    }

    #[test]
    fn cont_links_point_to_speeches_with_different_speakers() {
        let config = PlayConfig::for_scale(Scale::Small);
        let xml = generate(&config);
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let speeches = store.axis_nodes(
            root,
            xqy_xdm::Axis::Descendant,
            &xqy_xdm::NodeTest::Name("SPEECH".into()),
        );
        let mut checked = 0;
        for s in speeches {
            if let Some(next_id) = store.attribute_value(s, "cont").map(str::to_string) {
                let next = store.lookup_id(doc, &next_id).expect("cont target exists");
                let speaker = |n| {
                    let sp = store.axis_nodes(
                        n,
                        xqy_xdm::Axis::Child,
                        &xqy_xdm::NodeTest::Name("SPEAKER".into()),
                    )[0];
                    store.string_value(sp)
                };
                assert_ne!(speaker(s), speaker(next));
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one continuing dialog");
    }

    #[test]
    fn max_dialog_length_is_positive() {
        let config = PlayConfig::for_scale(Scale::Small);
        let xml = generate(&config);
        assert!(max_dialog_length(&xml) >= 2);
    }

    #[test]
    fn query_uses_the_ifp_form() {
        assert!(dialogs_query().contains("with $x seeded by"));
    }
}
