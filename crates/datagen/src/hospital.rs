//! Hospital patient records (the paper's hereditary-disease workload).
//!
//! The paper explores 50 000 patient records, recursing from a patient to
//! their parents over subtrees of maximum depth 5.  Our generator produces a
//! forest of ancestry trees: every patient may reference up to two parents
//! (earlier patients), with generation depth capped so the recursion depth
//! matches the paper's regime (5).  A fraction of patients carries a
//! hereditary-disease marker.

use rand::Rng;

use crate::{rng, Scale};

/// Parameters for the hospital generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HospitalConfig {
    /// Number of patient records.
    pub patients: usize,
    /// Maximum ancestry depth (the paper's instance recurses ≤ 5 levels).
    pub max_depth: usize,
    /// Percentage of patients flagged with the hereditary disease.
    pub disease_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl HospitalConfig {
    /// Presets; `Medium` mirrors the paper's 50 000-record instance scaled
    /// down to keep the default benchmark run short (the full size is used
    /// by the `--full` harness mode).
    pub fn for_scale(scale: Scale) -> Self {
        let patients = match scale {
            Scale::Small => 2_000,
            Scale::Medium => 10_000,
            Scale::Large => 50_000,
            Scale::Huge => 100_000,
        };
        HospitalConfig {
            patients,
            max_depth: 5,
            disease_percent: 20,
            seed: 0x05917A1,
        }
    }
}

/// The URI the benchmark harness registers the document under.
pub const DOC_URI: &str = "hospital.xml";

/// Generate the hospital document as XML text.
///
/// Patients are laid out generation by generation: a patient of generation
/// `g > 0` references one or two patients of generation `g - 1` as parents,
/// so every ancestry chain has length at most `max_depth`.
pub fn generate(config: &HospitalConfig) -> String {
    let mut rng = rng(config.seed);
    let generations = config.max_depth.max(1);
    let per_generation = (config.patients / generations).max(1);
    let mut out = String::with_capacity(config.patients * 80);
    out.push_str("<hospital>\n");
    let mut id = 0usize;
    let mut previous_generation: Vec<usize> = Vec::new();
    for generation in 0..generations {
        let mut current = Vec::new();
        let count = if generation == generations - 1 {
            config.patients - id
        } else {
            per_generation
        };
        for _ in 0..count {
            let disease = rng.gen_range(0..100) < config.disease_percent;
            out.push_str(&format!(
                "  <patient id=\"pt{id}\" disease=\"{}\">",
                if disease { "yes" } else { "no" }
            ));
            if !previous_generation.is_empty() {
                let parents = rng.gen_range(1..=2usize);
                for _ in 0..parents {
                    let parent = previous_generation[rng.gen_range(0..previous_generation.len())];
                    out.push_str(&format!("<parentref ref=\"pt{parent}\"/>"));
                }
            }
            out.push_str("</patient>\n");
            current.push(id);
            id += 1;
        }
        previous_generation = current;
        if id >= config.patients {
            break;
        }
    }
    out.push_str("</hospital>\n");
    out
}

/// Recursion body: the parents of the patients in `$x`.
pub const BODY: &str = "$x/id(./parentref/@ref)";

/// The hereditary-disease query: all ancestors of the given patient,
/// restricted to those carrying the disease marker.
pub fn ancestors_query(patient_id: &str) -> String {
    format!(
        "with $x seeded by doc('{DOC_URI}')/hospital/patient[@id='{patient_id}'] recurse {BODY}"
    )
}

/// A whole-population variant: ancestors of every diseased patient (this is
/// what the benchmark uses — one fixpoint seeded with all marked patients).
pub fn hereditary_query() -> String {
    format!("with $x seeded by doc('{DOC_URI}')/hospital/patient[@disease='yes'] recurse {BODY}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let config = HospitalConfig {
            patients: 500,
            max_depth: 5,
            disease_percent: 20,
            seed: 3,
        };
        let xml = generate(&config);
        assert_eq!(xml, generate(&config));
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let patients = store.axis_nodes(
            root,
            xqy_xdm::Axis::Child,
            &xqy_xdm::NodeTest::Name("patient".into()),
        );
        assert_eq!(patients.len(), config.patients);
    }

    #[test]
    fn ancestry_depth_is_bounded() {
        let config = HospitalConfig {
            patients: 600,
            max_depth: 5,
            disease_percent: 10,
            seed: 9,
        };
        let xml = generate(&config);
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let patients = store.axis_nodes(
            root,
            xqy_xdm::Axis::Child,
            &xqy_xdm::NodeTest::Name("patient".into()),
        );
        // Follow parent references from the last patient; the chain must end
        // within max_depth hops.
        let mut frontier = vec![*patients.last().unwrap()];
        let mut depth = 0;
        while !frontier.is_empty() && depth <= config.max_depth {
            let mut next = Vec::new();
            for p in frontier {
                for r in store.axis_nodes(
                    p,
                    xqy_xdm::Axis::Child,
                    &xqy_xdm::NodeTest::Name("parentref".into()),
                ) {
                    let target = store.attribute_value(r, "ref").unwrap().to_string();
                    next.push(store.lookup_id(doc, &target).unwrap());
                }
            }
            frontier = next;
            depth += 1;
        }
        assert!(depth <= config.max_depth, "ancestry deeper than max_depth");
    }

    #[test]
    fn queries_use_the_ifp_form() {
        assert!(ancestors_query("pt10").contains("recurse"));
        assert!(hereditary_query().contains("@disease='yes'"));
    }
}
