//! XMark-like auction data and the bidder-network query (Figure 10).
//!
//! The paper computes a *bidder network* over XMark documents: starting from
//! a person, repeatedly connect sellers to the bidders of their auctions.
//! The network's node count grows quadratically with the document size,
//! which is what makes the Naïve/Delta gap so pronounced (Table 2's four
//! "Bidder network" rows).
//!
//! Our generator keeps XMark's entity structure (people, open auctions,
//! sellers, bidders) but adds an explicit `<sells ref="…"/>` link from each
//! person to the auctions they sell.  XMark itself encodes that relationship
//! only value-based (`open_auction/seller/@person` equals `person/@id`); the
//! link element denormalises it so that the recursion body stays inside the
//! algebraic compiler's subset (`id(·)` lookups instead of a general value
//! join).  The reachability structure — and therefore the recursion depth
//! and fed-back node counts — is identical; the original value-join
//! formulation of Figure 10 is kept for the source-level engine in
//! [`bidder_network_value_join_query`] and exercised by integration tests.

use rand::Rng;

use crate::{rng, Scale};

/// Parameters for the auction generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuctionConfig {
    /// Number of persons.
    pub persons: usize,
    /// Number of open auctions.
    pub auctions: usize,
    /// Maximum number of bidders per auction.
    pub max_bidders: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AuctionConfig {
    /// Presets loosely mirroring XMark scale factors 0.01 / 0.05 / 0.15 /
    /// 0.33 (the paper's small … huge instances), shrunk to keep the full
    /// benchmark run laptop-friendly.
    pub fn for_scale(scale: Scale) -> Self {
        let (persons, auctions) = match scale {
            Scale::Small => (120, 200),
            Scale::Medium => (400, 700),
            Scale::Large => (1_200, 2_200),
            Scale::Huge => (3_000, 5_500),
        };
        AuctionConfig {
            persons,
            auctions,
            max_bidders: 4,
            seed: 0xA0C7104,
        }
    }
}

/// The URI the benchmark harness registers the document under.
pub const DOC_URI: &str = "auction.xml";

/// Generate the auction document as XML text.
pub fn generate(config: &AuctionConfig) -> String {
    let mut rng = rng(config.seed);
    // Assign each auction a seller up front so person elements can carry
    // their <sells> links.
    let sellers: Vec<usize> = (0..config.auctions)
        .map(|_| rng.gen_range(0..config.persons.max(1)))
        .collect();

    let mut out = String::with_capacity(config.persons * 64 + config.auctions * 96);
    out.push_str("<site>\n  <people>\n");
    for p in 0..config.persons {
        out.push_str(&format!("    <person id=\"p{p}\" name=\"person{p}\">"));
        for (a, &seller) in sellers.iter().enumerate() {
            if seller == p {
                out.push_str(&format!("<sells ref=\"a{a}\"/>"));
            }
        }
        out.push_str("</person>\n");
    }
    out.push_str("  </people>\n  <open_auctions>\n");
    for (a, &seller) in sellers.iter().enumerate() {
        out.push_str(&format!(
            "    <open_auction id=\"a{a}\">\n      <seller person=\"p{seller}\"/>\n"
        ));
        let bidders = rng.gen_range(1..=config.max_bidders.max(1));
        for _ in 0..bidders {
            let bidder = rng.gen_range(0..config.persons.max(1));
            out.push_str(&format!(
                "      <bidder person=\"p{bidder}\"><personref person=\"p{bidder}\"/></bidder>\n"
            ));
        }
        out.push_str("    </open_auction>\n");
    }
    out.push_str("  </open_auctions>\n</site>\n");
    out
}

/// Recursion body of the bidder network (id-link formulation shared by both
/// engines): persons reached from `$x` by following the auctions they sell
/// to the persons bidding on them.
pub const BODY: &str = "$x/id(./sells/@ref)/bidder/id(./@person)";

/// The bidder-network query for one person (id-link formulation).
pub fn bidder_network_query(person_id: &str) -> String {
    format!(
        "with $x seeded by doc('{DOC_URI}')/site/people/person[@id='{person_id}'] \
         recurse {BODY}"
    )
}

/// The per-person bidder-network report of Figure 10: for every person,
/// emit a `<person>` element listing the ids of the persons in their
/// network (id-link formulation).
pub fn bidder_network_report_query() -> String {
    format!(
        "for $p in doc('{DOC_URI}')/site/people/person \
         return <person id=\"{{ data($p/@id) }}\">{{ \
             data((with $x seeded by $p recurse {BODY})/@id) \
         }}</person>"
    )
}

/// The original Figure 10 formulation with a value join
/// (`seller/@person = $id`), runnable on the source-level engine only.
pub fn bidder_network_value_join_query(person_id: &str) -> String {
    format!(
        "declare variable $doc := doc('{DOC_URI}');\n\
         declare function bidder($in as node()*) as node()* {{\n\
           for $id in $in/@id\n\
           let $b := $doc//open_auction[seller/@person = $id]/bidder/personref\n\
           return $doc//people/person[@id = $b/@person]\n\
         }};\n\
         with $x seeded by $doc/site/people/person[@id='{person_id}'] recurse bidder($x)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let config = AuctionConfig {
            persons: 20,
            auctions: 30,
            max_bidders: 3,
            seed: 5,
        };
        let a = generate(&config);
        assert_eq!(a, generate(&config));
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&a).unwrap();
        let root = store.document_element(doc).unwrap();
        assert_eq!(store.name(root).unwrap().local, "site");
    }

    #[test]
    fn sells_links_match_sellers() {
        let config = AuctionConfig {
            persons: 10,
            auctions: 15,
            max_bidders: 2,
            seed: 11,
        };
        let xml = generate(&config);
        let mut store = xqy_xdm::NodeStore::new();
        let doc = store.parse_document(&xml).unwrap();
        let root = store.document_element(doc).unwrap();
        let sells = store.axis_nodes(
            root,
            xqy_xdm::Axis::Descendant,
            &xqy_xdm::NodeTest::Name("sells".into()),
        );
        // Every auction has exactly one seller, so there are exactly as many
        // sells links as auctions.
        assert_eq!(sells.len(), config.auctions);
        for link in sells {
            let auction_id = store.attribute_value(link, "ref").unwrap().to_string();
            let auction = store.lookup_id(doc, &auction_id).expect("auction exists");
            let seller = store.axis_nodes(
                auction,
                xqy_xdm::Axis::Child,
                &xqy_xdm::NodeTest::Name("seller".into()),
            )[0];
            let seller_person = store.attribute_value(seller, "person").unwrap();
            let person = store.parent(link).unwrap();
            assert_eq!(store.attribute_value(person, "id"), Some(seller_person));
        }
    }

    #[test]
    fn queries_reference_the_document() {
        assert!(bidder_network_query("p0").contains(DOC_URI));
        assert!(bidder_network_report_query().contains("recurse"));
        assert!(bidder_network_value_join_query("p0").contains("declare function bidder"));
    }
}
