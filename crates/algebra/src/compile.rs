//! A restricted XQuery-to-algebra compiler for recursion bodies.
//!
//! The Pathfinder compiler of the paper translates arbitrary XQuery into
//! loop-lifted relational plans.  This reproduction compiles the expression
//! subset that the paper's examples and the benchmark recursion bodies use —
//! paths over the recursion variable and over `doc(…)`, attribute access,
//! `id(·)` lookups, `data`/`string`, simple `@attr = 'literal'` predicates,
//! the node-set operators, `count`, and `if`/`then`/`else` — and reports
//! everything else as [`AlgebraError::Unsupported`] so that the engine can
//! fall back to the source-level evaluator instead of executing a wrong
//! plan.

use xqy_parser::ast::{Expr, Literal};
use xqy_parser::BinaryOp;
use xqy_xdm::{Axis, NodeTest};

use crate::error::AlgebraError;
use crate::plan::{Operator, Plan, PlanNodeId};
use crate::Result;

/// The result of compiling a recursion body: the plan plus the conclusions
/// of the algebraic distributivity check run on it.
#[derive(Debug, Clone)]
pub struct CompiledBody {
    /// The algebraic plan; its `RecInput` leaves stand for the recursion
    /// variable.
    pub plan: Plan,
    /// Outcome of the `∪` push-up analysis.
    pub distributivity: crate::pushup::PushupOutcome,
    /// The [seed-carried form](Plan::seed_carried) of `plan`, when the body
    /// is seed-local: the input of a batched multi-source fixpoint
    /// ([`crate::Executor::run_fixpoint_batched`]).  `None` means the body
    /// must run one fixpoint per seed.
    pub batched_plan: Option<Plan>,
}

/// What kind of value the `item` column currently carries; used to insert
/// `StringValue` coercions before `IdLookup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    Nodes,
    Strings,
    Unknown,
}

std::thread_local! {
    static COMPILE_COUNT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times this thread has invoked [`compile_recursion_body`],
/// successfully or not.
///
/// This is the *compile-count hook* of the prepared-query API: a prepared
/// query promises to compile its recursion bodies exactly once, and callers
/// can audit that promise by snapshotting the counter around repeated
/// executions.  The counter is thread-local so concurrently running tests do
/// not observe each other's compilations.
pub fn compile_count() -> u64 {
    COMPILE_COUNT.with(|c| c.get())
}

/// Compile the recursion body `body` of an IFP whose recursion variable is
/// `var` into an algebraic plan, and run the distributivity check on it.
pub fn compile_recursion_body(body: &Expr, var: &str) -> Result<CompiledBody> {
    COMPILE_COUNT.with(|c| c.set(c.get() + 1));
    let mut compiler = Compiler {
        plan: Plan::new(),
        var: var.to_string(),
    };
    let (root, _kind) = compiler.compile(body)?;
    compiler.plan.set_root(root);
    let distributivity = crate::pushup::check_distributivity(&compiler.plan);
    let batched_plan = compiler.plan.seed_carried();
    Ok(CompiledBody {
        plan: compiler.plan,
        distributivity,
        batched_plan,
    })
}

struct Compiler {
    plan: Plan,
    var: String,
}

impl Compiler {
    fn unsupported(&self, what: &str) -> AlgebraError {
        AlgebraError::Unsupported(what.to_string())
    }

    fn compile(&mut self, expr: &Expr) -> Result<(PlanNodeId, ItemKind)> {
        match expr {
            Expr::VarRef(v) if *v == self.var => {
                Ok((self.plan.add(Operator::RecInput, vec![]), ItemKind::Nodes))
            }
            Expr::VarRef(v) => Err(self.unsupported(&format!(
                "free variable ${v} (only the recursion variable ${} is supported)",
                self.var
            ))),
            Expr::EmptySequence => Ok((
                self.plan.add(Operator::Literal(Vec::new()), vec![]),
                ItemKind::Strings,
            )),
            Expr::Literal(Literal::String(s)) => Ok((
                self.plan.add(Operator::Literal(vec![s.clone()]), vec![]),
                ItemKind::Strings,
            )),
            Expr::Literal(Literal::Integer(i)) => Ok((
                self.plan.add(Operator::Literal(vec![i.to_string()]), vec![]),
                ItemKind::Strings,
            )),
            Expr::Literal(Literal::Double(d)) => Ok((
                self.plan.add(Operator::Literal(vec![d.to_string()]), vec![]),
                ItemKind::Strings,
            )),
            Expr::Path { input, step } => {
                let (input_id, _) = self.compile(input)?;
                self.compile_step(input_id, step)
            }
            Expr::AxisStep { .. } => Err(self.unsupported(
                "an axis step without an explicit input (context-item steps only occur inside paths)",
            )),
            Expr::FunctionCall { name, args } => self.compile_call_with_input(None, name, args),
            Expr::Binary { op, lhs, rhs } => {
                let (l, lk) = self.compile(lhs)?;
                let (r, _) = self.compile(rhs)?;
                let operator = match op {
                    BinaryOp::Union => Operator::Union,
                    BinaryOp::Except => Operator::Difference,
                    BinaryOp::Intersect => {
                        // a ∩ b  ≡  a \ (a \ b)
                        let a_minus_b = self.plan.add(Operator::Difference, vec![l, r]);
                        let id = self.plan.add(Operator::Difference, vec![l, a_minus_b]);
                        return Ok((id, lk));
                    }
                    other => {
                        return Err(self.unsupported(&format!(
                            "binary operator '{}' in a recursion body",
                            other.symbol()
                        )))
                    }
                };
                Ok((self.plan.add(operator, vec![l, r]), lk))
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (cond_id, _) = self.compile_condition(cond)?;
                let (then_id, then_kind) = self.compile(then_branch)?;
                let (else_id, _) = self.compile(else_branch)?;
                Ok((
                    self.plan
                        .add(Operator::IfThenElse, vec![cond_id, then_id, else_id]),
                    then_kind,
                ))
            }
            Expr::Sequence(items) => {
                // Sequence construction over node sets behaves like union for
                // the (set-based) purposes of the algebra backend.
                let mut compiled = Vec::new();
                let mut kind = ItemKind::Unknown;
                for item in items {
                    let (id, k) = self.compile(item)?;
                    kind = k;
                    compiled.push(id);
                }
                let mut iter = compiled.into_iter();
                let first = iter
                    .next()
                    .ok_or_else(|| self.unsupported("empty sequence constructor"))?;
                let combined = iter.fold(first, |acc, next| {
                    self.plan.add(Operator::Union, vec![acc, next])
                });
                Ok((combined, kind))
            }
            Expr::RootPath { .. } | Expr::ContextItem => Err(self.unsupported(
                "the context item outside of a step position (recursion bodies are functions of the recursion variable)",
            )),
            Expr::DirectElement { name, .. } | Expr::ComputedElement { name, .. } => {
                let lit = self.plan.add(Operator::Literal(Vec::new()), vec![]);
                Ok((
                    self.plan.add(Operator::Construct(name.clone()), vec![lit]),
                    ItemKind::Nodes,
                ))
            }
            Expr::ComputedText { .. } | Expr::ComputedAttribute { .. } => {
                let lit = self.plan.add(Operator::Literal(Vec::new()), vec![]);
                Ok((
                    self.plan.add(Operator::Construct("text".into()), vec![lit]),
                    ItemKind::Nodes,
                ))
            }
            other => Err(self.unsupported(&format!(
                "expression form {:?} (general FLWOR/filters are outside the compiler subset)",
                variant_name(other)
            ))),
        }
    }

    /// Compile a condition expression; the result is wrapped so its
    /// effective-boolean-value aggregation is explicit in the plan (an EBV
    /// inspects its operand as a whole, which is what blocks distributivity
    /// when the operand depends on the recursion variable).
    fn compile_condition(&mut self, cond: &Expr) -> Result<(PlanNodeId, ItemKind)> {
        let (id, kind) = match cond {
            // count(e) / exists(e) / empty(e): already aggregates.
            Expr::FunctionCall { name, args }
                if matches!(strip(name), "count" | "exists" | "empty") && args.len() == 1 =>
            {
                let (inner, _) = self.compile(&args[0])?;
                (
                    self.plan
                        .add(Operator::Count { group_by: None }, vec![inner]),
                    ItemKind::Strings,
                )
            }
            other => {
                let (inner, _) = self.compile(other)?;
                (
                    self.plan
                        .add(Operator::Count { group_by: None }, vec![inner]),
                    ItemKind::Strings,
                )
            }
        };
        Ok((id, kind))
    }

    /// Compile a path step applied to the rows of `input`.
    fn compile_step(&mut self, input: PlanNodeId, step: &Expr) -> Result<(PlanNodeId, ItemKind)> {
        match step {
            Expr::AxisStep {
                axis,
                test,
                predicates,
            } => {
                let (mut id, mut kind) = match (axis, test) {
                    (Axis::Attribute, NodeTest::Name(name)) => (
                        self.plan
                            .add(Operator::AttrValue(name.clone()), vec![input]),
                        ItemKind::Strings,
                    ),
                    (Axis::Attribute, _) => {
                        return Err(self.unsupported("wildcard attribute steps"))
                    }
                    _ => (
                        self.plan.add(
                            Operator::Step {
                                axis: *axis,
                                test: test.clone(),
                            },
                            vec![input],
                        ),
                        ItemKind::Nodes,
                    ),
                };
                for pred in predicates {
                    (id, kind) = self.compile_predicate(id, pred)?;
                }
                Ok((id, kind))
            }
            Expr::ContextItem => Ok((input, ItemKind::Unknown)),
            Expr::FunctionCall { name, args } => {
                self.compile_call_with_input(Some(input), name, args)
            }
            Expr::Path {
                input: nested,
                step,
            } => {
                // A nested relative path (e.g. from `./a/b` inside id(…)).
                let (nested_id, _) = self.compile_step(input, nested)?;
                self.compile_step(nested_id, step)
            }
            other => Err(self.unsupported(&format!("path step of form {}", variant_name(other)))),
        }
    }

    /// Compile a predicate `[…]` applied to the node rows of `input`.  Only
    /// the `@attr = 'literal'` form is supported.
    fn compile_predicate(
        &mut self,
        input: PlanNodeId,
        pred: &Expr,
    ) -> Result<(PlanNodeId, ItemKind)> {
        match pred {
            Expr::Binary {
                op: BinaryOp::GeneralEq,
                lhs,
                rhs,
            } => {
                let (attr_name, literal) = match (lhs.as_ref(), rhs.as_ref()) {
                    (
                        Expr::AxisStep {
                            axis: Axis::Attribute,
                            test: NodeTest::Name(name),
                            ..
                        },
                        Expr::Literal(Literal::String(value)),
                    ) => (name.clone(), value.clone()),
                    (
                        Expr::Literal(Literal::String(value)),
                        Expr::AxisStep {
                            axis: Axis::Attribute,
                            test: NodeTest::Name(name),
                            ..
                        },
                    ) => (name.clone(), value.clone()),
                    _ => {
                        return Err(self.unsupported("predicates other than @attribute = 'literal'"))
                    }
                };
                // Carry the node, test its attribute, project the node back.
                let keep = self.plan.add(
                    Operator::Project(vec![
                        ("node".into(), "item".into()),
                        ("item".into(), "item".into()),
                    ]),
                    vec![input],
                );
                let attr = self.plan.add(Operator::AttrValue(attr_name), vec![keep]);
                let select = self.plan.add(
                    Operator::Select {
                        column: "item".into(),
                        value: literal,
                    },
                    vec![attr],
                );
                let back = self.plan.add(
                    Operator::Project(vec![("item".into(), "node".into())]),
                    vec![select],
                );
                Ok((back, ItemKind::Nodes))
            }
            other => Err(self.unsupported(&format!(
                "predicate of form {} (only @attr = 'literal' predicates compile)",
                variant_name(other)
            ))),
        }
    }

    /// Compile a function call, possibly in step position (with the nodes of
    /// `input` as the context).
    fn compile_call_with_input(
        &mut self,
        input: Option<PlanNodeId>,
        name: &str,
        args: &[Expr],
    ) -> Result<(PlanNodeId, ItemKind)> {
        match (strip(name), args.len()) {
            ("doc", 1) => {
                let Expr::Literal(Literal::String(uri)) = &args[0] else {
                    return Err(self.unsupported("doc() with a non-literal URI"));
                };
                Ok((
                    self.plan.add(Operator::DocRoot(uri.clone()), vec![]),
                    ItemKind::Nodes,
                ))
            }
            ("id", 1) => {
                let context = input.ok_or_else(|| {
                    self.unsupported("id() outside of a path step (no context nodes)")
                })?;
                // The argument is evaluated relative to the context nodes.
                let (arg, kind) = self.compile_step(context, &args[0])?;
                let strings = if kind == ItemKind::Strings {
                    arg
                } else {
                    self.plan.add(Operator::StringValue, vec![arg])
                };
                Ok((
                    self.plan.add(Operator::IdLookup, vec![strings]),
                    ItemKind::Nodes,
                ))
            }
            ("data" | "string", 1) => {
                let (arg, _) = match input {
                    Some(ctx) => self.compile_step(ctx, &args[0])?,
                    None => self.compile(&args[0])?,
                };
                Ok((
                    self.plan.add(Operator::StringValue, vec![arg]),
                    ItemKind::Strings,
                ))
            }
            ("count", 1) => {
                let (arg, _) = match input {
                    Some(ctx) => self.compile_step(ctx, &args[0])?,
                    None => self.compile(&args[0])?,
                };
                Ok((
                    self.plan.add(Operator::Count { group_by: None }, vec![arg]),
                    ItemKind::Strings,
                ))
            }
            (other, _) => Err(self.unsupported(&format!(
                "function {other}() in a recursion body (compiler subset: doc, id, data, string, count)"
            ))),
        }
    }
}

fn strip(name: &str) -> &str {
    match name.split_once(':') {
        Some((_, local)) => local,
        None => name,
    }
}

fn variant_name(expr: &Expr) -> &'static str {
    match expr {
        Expr::Literal(_) => "literal",
        Expr::EmptySequence => "empty sequence",
        Expr::VarRef(_) => "variable reference",
        Expr::ContextItem => "context item",
        Expr::Sequence(_) => "sequence",
        Expr::If { .. } => "if",
        Expr::For { .. } => "for",
        Expr::Let { .. } => "let",
        Expr::Quantified { .. } => "quantified expression",
        Expr::Typeswitch { .. } => "typeswitch",
        Expr::Binary { .. } => "binary operator",
        Expr::Unary { .. } => "unary operator",
        Expr::Path { .. } => "path",
        Expr::RootPath { .. } => "root path",
        Expr::AxisStep { .. } => "axis step",
        Expr::Filter { .. } => "filter",
        Expr::FunctionCall { .. } => "function call",
        Expr::DirectElement { .. } => "direct element constructor",
        Expr::ComputedElement { .. } => "computed element constructor",
        Expr::ComputedAttribute { .. } => "computed attribute constructor",
        Expr::ComputedText { .. } => "computed text constructor",
        Expr::Fixpoint { .. } => "nested fixpoint",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, MuStrategy};
    use xqy_parser::parse_expr;
    use xqy_xdm::NodeStore;

    fn body_of(src: &str) -> Expr {
        match parse_expr(src).unwrap() {
            Expr::Fixpoint { body, .. } => *body,
            other => other,
        }
    }

    #[test]
    fn q1_body_compiles_and_is_distributive() {
        let body = body_of(
            "with $x seeded by doc('curriculum.xml')/curriculum/course[@code='c1'] \
             recurse $x/id(./prerequisites/pre_code)",
        );
        let compiled = compile_recursion_body(&body, "x").unwrap();
        assert!(compiled.distributivity.distributive);
        assert!(compiled.plan.len() >= 4);
        assert_eq!(compiled.plan.rec_inputs().len(), 1);
    }

    #[test]
    fn q2_body_compiles_and_is_blocked_at_count() {
        let body = body_of("if (count($x/self::a)) then $x/* else ()");
        let compiled = compile_recursion_body(&body, "x").unwrap();
        assert!(!compiled.distributivity.distributive);
        assert_eq!(compiled.distributivity.blocked_by.as_deref(), Some("count"));
    }

    #[test]
    fn constructor_bodies_are_not_distributive() {
        let body = body_of("($x/*, <grow/>)");
        let compiled = compile_recursion_body(&body, "x").unwrap();
        assert!(!compiled.distributivity.distributive);
    }

    #[test]
    fn union_of_steps_is_distributive() {
        let body = body_of("$x/child::a union $x/descendant::b");
        let compiled = compile_recursion_body(&body, "x").unwrap();
        assert!(compiled.distributivity.distributive);
    }

    #[test]
    fn except_against_recursion_variable_blocks() {
        let body = body_of("$x/* except $x");
        let compiled = compile_recursion_body(&body, "x").unwrap();
        assert!(!compiled.distributivity.distributive);
    }

    #[test]
    fn unsupported_expressions_are_reported_not_guessed() {
        let body = body_of("for $y in $x return $y[1]");
        let err = compile_recursion_body(&body, "x").unwrap_err();
        assert!(matches!(err, AlgebraError::Unsupported(_)));

        let body = body_of("$x[1]");
        assert!(compile_recursion_body(&body, "x").is_err());
    }

    #[test]
    fn compiled_q1_body_executes_like_the_paper_example() {
        let curriculum = r#"<curriculum>
            <course code="c1"><prerequisites><pre_code>c2</pre_code></prerequisites></course>
            <course code="c2"><prerequisites><pre_code>c3</pre_code></prerequisites></course>
            <course code="c3"><prerequisites/></course>
        </curriculum>"#;
        let mut store = NodeStore::new();
        let doc = store
            .parse_document_with_uri("curriculum.xml", curriculum)
            .unwrap();
        store.register_id_attribute(doc, "code");
        let root = store.document_element(doc).unwrap();
        let seed: Vec<_> = store
            .axis_nodes(
                root,
                xqy_xdm::Axis::Child,
                &xqy_xdm::NodeTest::Name("course".into()),
            )
            .into_iter()
            .filter(|&c| store.attribute_value(c, "code") == Some("c1"))
            .collect();

        let body = body_of("$x/id(./prerequisites/pre_code)");
        let compiled = compile_recursion_body(&body, "x").unwrap();
        let mut exec = Executor::new();
        let (result, stats) = exec
            .run_fixpoint(
                &mut store,
                &compiled.plan,
                &seed,
                MuStrategy::MuDelta,
                false,
            )
            .unwrap();
        assert_eq!(result.len(), 2); // c2, c3
        assert_eq!(stats.result_rows, 2);
    }

    #[test]
    fn predicate_on_attribute_compiles_inside_seed_like_paths() {
        let expr = parse_expr("doc('d.xml')/site/people/person[@id='p1']").unwrap();
        let compiled = compile_recursion_body(&expr, "x").unwrap();
        // No RecInput leaf: trivially distributive.
        assert!(compiled.distributivity.distributive);
        assert!(compiled.plan.rec_inputs().is_empty());
    }
}
