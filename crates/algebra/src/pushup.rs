//! The algebraic distributivity check: pushing `∪` up through the plan.
//!
//! Section 4.1 of the paper: place a `∪` at the recursion body plan's input
//! (the `RecInput` leaf), then repeatedly push it up through its parent
//! operators.  If every copy of the `∪` reaches the plan root, the body is
//! distributive and the Delta-based fixpoint operator `µ∆` may replace `µ`;
//! if the push is blocked by an operator that needs its complete input
//! (duplicate elimination, difference, aggregation, row numbering, node
//! construction — the "−" rows of Table 1), the processor must stay with
//! Naïve.

use crate::plan::{Plan, PlanNodeId};

/// The outcome of the push-up analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushupOutcome {
    /// `true` when the `∪` reached the root along every path.
    pub distributive: bool,
    /// The operators the `∪` was pushed through, in plan order.
    pub pushed_through: Vec<PlanNodeId>,
    /// The operator that blocked the push, if any.
    pub blocked_at: Option<PlanNodeId>,
    /// Human-readable name of the blocking operator.
    pub blocked_by: Option<String>,
}

impl PushupOutcome {
    /// Shorthand used by strategy selection.
    pub fn is_distributive(&self) -> bool {
        self.distributive
    }
}

/// Run the union push-up check on a recursion body plan.
///
/// A plan with no `RecInput` leaf is trivially distributive (its value does
/// not depend on the recursion variable at all) *unless* it constructs nodes,
/// in which case each invocation produces fresh identities and distributivity
/// is lost — the same special case Section 3.2 of the paper calls out.
pub fn check_distributivity(plan: &Plan) -> PushupOutcome {
    // Node constructors anywhere in the plan break distributivity outright.
    if let Some((id, node)) = plan
        .iter()
        .find(|(_, n)| matches!(n.op, crate::plan::Operator::Construct(_)))
    {
        return PushupOutcome {
            distributive: false,
            pushed_through: Vec::new(),
            blocked_at: Some(id),
            blocked_by: Some(node.op.name()),
        };
    }

    let sources = plan.rec_inputs();
    if sources.is_empty() {
        return PushupOutcome {
            distributive: true,
            pushed_through: Vec::new(),
            blocked_at: None,
            blocked_by: None,
        };
    }
    let dependents = plan.dependents_of(&sources);
    let mut pushed = Vec::new();
    for id in dependents {
        let node = plan.node(id);
        if node.op.union_pushable() {
            pushed.push(id);
        } else {
            return PushupOutcome {
                distributive: false,
                pushed_through: pushed,
                blocked_at: Some(id),
                blocked_by: Some(node.op.name()),
            };
        }
    }
    PushupOutcome {
        distributive: true,
        pushed_through: pushed,
        blocked_at: None,
        blocked_by: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FunKind, Operator};
    use xqy_xdm::{Axis, NodeTest};

    /// The recursion body of Query Q1 (Figure 9(a)): steps to the
    /// prerequisite codes followed by the id() lookup join.
    fn q1_body_plan() -> Plan {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let prereq = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("prerequisites".into()),
            },
            vec![rec],
        );
        let code = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::Name("pre_code".into()),
            },
            vec![prereq],
        );
        let value = plan.add(Operator::StringValue, vec![code]);
        let lookup = plan.add(Operator::IdLookup, vec![value]);
        let project = plan.add(
            Operator::Project(vec![("item".into(), "item".into())]),
            vec![lookup],
        );
        plan.set_root(project);
        plan
    }

    /// The recursion body of Query Q2 (Figure 9(b)): the count aggregate in
    /// the right branch blocks the push-up.
    fn q2_body_plan() -> Plan {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let self_a = plan.add(
            Operator::Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Name("a".into()),
            },
            vec![rec],
        );
        let count = plan.add(Operator::Count { group_by: None }, vec![self_a]);
        let children = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::AnyElement,
            },
            vec![rec],
        );
        let gate = plan.add(
            Operator::Fun {
                kind: FunKind::Gt,
                left: "count".into(),
                right: "zero".into(),
            },
            vec![count, children],
        );
        plan.set_root(gate);
        plan
    }

    #[test]
    fn q1_plan_is_distributive() {
        let plan = q1_body_plan();
        let outcome = check_distributivity(&plan);
        assert!(outcome.distributive);
        assert!(outcome.blocked_at.is_none());
        // The ∪ passes through the two steps, the value access, the id
        // lookup and the projection.
        assert_eq!(outcome.pushed_through.len(), 5);
    }

    #[test]
    fn q2_plan_is_blocked_at_the_aggregate() {
        let plan = q2_body_plan();
        let outcome = check_distributivity(&plan);
        assert!(!outcome.distributive);
        assert_eq!(outcome.blocked_by.as_deref(), Some("count"));
    }

    #[test]
    fn constructors_break_distributivity_even_without_rec_input() {
        let mut plan = Plan::new();
        let lit = plan.add(Operator::Literal(vec!["c".into()]), vec![]);
        let ctor = plan.add(Operator::Construct("out".into()), vec![lit]);
        plan.set_root(ctor);
        let outcome = check_distributivity(&plan);
        assert!(!outcome.distributive);
        assert_eq!(outcome.blocked_by.as_deref(), Some("ε<out>"));
    }

    #[test]
    fn plans_independent_of_the_recursion_variable_are_distributive() {
        let mut plan = Plan::new();
        let doc = plan.add(Operator::DocRoot("d.xml".into()), vec![]);
        let step = plan.add(
            Operator::Step {
                axis: Axis::Descendant,
                test: NodeTest::Name("person".into()),
            },
            vec![doc],
        );
        plan.set_root(step);
        let outcome = check_distributivity(&plan);
        assert!(outcome.distributive);
        assert!(outcome.pushed_through.is_empty());
    }

    #[test]
    fn difference_and_rownum_block_like_table_1_says() {
        for blocker in [Operator::Difference, Operator::RowNum, Operator::Distinct] {
            let mut plan = Plan::new();
            let rec = plan.add(Operator::RecInput, vec![]);
            let other = plan.add(Operator::Literal(vec![]), vec![]);
            let node = if matches!(blocker, Operator::Difference) {
                plan.add(blocker.clone(), vec![rec, other])
            } else {
                plan.add(blocker.clone(), vec![rec])
            };
            plan.set_root(node);
            let outcome = check_distributivity(&plan);
            assert!(!outcome.distributive, "{} should block", blocker.name());
        }
    }

    #[test]
    fn fixed_difference_right_operand_does_not_block() {
        // x \ R with the recursion variable only on the left is distributive
        // (the stratified-Datalog case in Section 6), and indeed the ∪ is
        // never pushed *through* the difference from its right input here —
        // but our conservative operator-level check still flags it.  This
        // test documents the conservative behaviour.
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let fixed = plan.add(Operator::Literal(vec!["r".into()]), vec![]);
        let diff = plan.add(Operator::Difference, vec![rec, fixed]);
        plan.set_root(diff);
        let outcome = check_distributivity(&plan);
        assert!(!outcome.distributive);
    }
}
