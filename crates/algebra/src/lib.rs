#![warn(missing_docs)]

//! # xqy-algebra — Relational XQuery substrate
//!
//! This crate plays the role that MonetDB/XQuery and its Pathfinder compiler
//! play in the reproduced paper (Section 4, *"Distributivity and Relational
//! XQuery"*): recursion bodies are compiled into DAG-shaped plans over a
//! small relational algebra dialect (Table 1 of the paper), and
//!
//! 1. the **algebraic distributivity check** decides whether a `∪` placed at
//!    the plan's recursion input can be pushed up through every operator to
//!    the plan root (Figures 7 and 8) — if so, the Delta-based fixpoint
//!    operator `µ∆` may replace the Naïve operator `µ`;
//! 2. an **executor** evaluates plans over relational encodings of the XML
//!    documents held in a [`NodeStore`](xqy_xdm::NodeStore), including the
//!    fixpoint operators `µ` and `µ∆` with the row-feed statistics that
//!    Table 2 of the paper reports.
//!
//! ## Relationship to the paper's dialect
//!
//! The operator set mirrors Table 1: projection, selection, join, Cartesian
//! product, duplicate elimination, union, difference, the `count` aggregate,
//! generic arithmetic/comparison operators, row tagging and row numbering,
//! the XPath step join, node constructors, and the two fixpoint operators.
//! Two simplifications are documented in `DESIGN.md`:
//!
//! * plans operate on *sets* of rows (the paper notes that duplicate and
//!   order bookkeeping may be omitted for distributivity assessment; our
//!   executor applies the same simplification to evaluation, which does not
//!   affect fixpoint results because the IFP semantics is set-based);
//! * the compiler supports the expression subset needed by the paper's
//!   examples and benchmark workloads and reports anything else as a
//!   [`AlgebraError::Unsupported`] compile error instead of guessing.

pub mod compile;
pub mod error;
pub mod exec;
pub mod plan;
pub mod pushup;

pub use compile::{compile_count, compile_recursion_body, CompiledBody};
pub use error::AlgebraError;
pub use exec::{BatchSharing, ExecStats, Executor, Key, MuStrategy, Table, Value};
pub use plan::{Operator, Plan, PlanNode, PlanNodeId, SEED_COLUMN};
pub use pushup::{check_distributivity, PushupOutcome};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
