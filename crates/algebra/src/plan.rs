//! Plan DAGs over the Table-1 algebra dialect.

use std::fmt;
use std::hash::{Hash, Hasher};

use xqy_xdm::{Axis, NodeTest};

/// Index of a node inside a [`Plan`]'s arena.
pub type PlanNodeId = usize;

/// The reserved column name that carries the *seed of origin* through a
/// batched multi-source fixpoint (see [`Plan::seed_carried`]).
///
/// The batched executor feeds the recursion body a two-column
/// `(SEED_COLUMN, item)` relation instead of the per-seed single-column
/// `item` relation; every rec-dependent operator of a seed-carried plan
/// propagates this column alongside the rows it produces, so the output of
/// each iteration can be regrouped per seed.  The name is double-underscored
/// so it can never collide with the compiler-generated column names
/// (`item`, `node`, `count`, `res`, `tag`, `rownum`).
pub const SEED_COLUMN: &str = "__seed";

/// A comparison / arithmetic kind for the generic `⊚` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunKind {
    /// Equality comparison.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Greater-than.
    Gt,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
}

/// The relational algebra operators of Table 1 in the paper.
///
/// Every variant documents whether a `∪` placed below it may be pushed up
/// through it (the "Push?" column of Table 1); see
/// [`Operator::union_pushable`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operator {
    /// The recursion variable's input relation (the `$x` leaf of a recursion
    /// body plan).  This is where the `∪` of the distributivity check is
    /// initially placed.
    RecInput,
    /// A literal relation (constant table), e.g. the empty sequence `()` or
    /// a string constant.
    Literal(Vec<String>),
    /// Scan of a document registered under a URI; produces the document's
    /// root node.
    DocRoot(String),
    /// π — projection onto (and renaming of) columns.
    Project(Vec<(String, String)>),
    /// σ — selection: keep rows whose column equals the given string.
    Select {
        /// Column inspected.
        column: String,
        /// Literal the column is compared against.
        value: String,
    },
    /// ⋈ — join on equality between one column of each input.
    Join {
        /// Column of the left input.
        left: String,
        /// Column of the right input.
        right: String,
    },
    /// × — Cartesian product.
    Cross,
    /// δ — duplicate elimination.
    Distinct,
    /// ∪ — union.
    Union,
    /// \ — difference.
    Difference,
    /// count — aggregation (optionally grouped); blocks union push-up.
    Count {
        /// Optional grouping column.
        group_by: Option<String>,
    },
    /// ⊚ — generic arithmetic/comparison operator over two columns.
    Fun {
        /// Operation kind.
        kind: FunKind,
        /// Left operand column.
        left: String,
        /// Right operand column.
        right: String,
    },
    /// # — unique row tagging.
    RowTag,
    /// ϱ — ordered row numbering; blocks union push-up.
    RowNum,
    /// XPath step join `α::n` along an axis with a node test.
    Step {
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
    },
    /// Attribute-value access: extend node rows with the string value of the
    /// named attribute (rows without the attribute are dropped).
    AttrValue(String),
    /// String-value access: extend node rows with their string value.
    StringValue,
    /// ID lookup join (the `id ref ⋈` micro-plan of Figure 9(a)): map a
    /// column of ID strings to the element nodes carrying those IDs.
    IdLookup,
    /// Conditional: inputs are (condition, then-branch, else-branch).  The
    /// condition's effective-boolean-value aggregation is represented by a
    /// `Count` wrapped around the condition plan by the compiler, so the
    /// conditional node itself lets a `∪` pass (distributing a union into
    /// both branches is sound when the condition does not change).
    IfThenElse,
    /// ε — node constructor; blocks union push-up (fresh identities).
    Construct(String),
    /// µ — the Naïve fixpoint operator: input 0 is the seed plan, input 1 the
    /// recursion body plan (whose `RecInput` leaf is fed back each round).
    Mu,
    /// µ∆ — the Delta fixpoint operator (same inputs as µ).
    MuDelta,
}

impl Operator {
    /// The "Push?" column of Table 1: may a `∪` directly below this operator
    /// be pushed up through it?
    pub fn union_pushable(&self) -> bool {
        match self {
            // ⊙ / ⊗ rows of Table 1.
            Operator::Project(_)
            | Operator::Select { .. }
            | Operator::Join { .. }
            | Operator::Cross
            | Operator::Union
            | Operator::Fun { .. }
            | Operator::RowTag
            | Operator::Step { .. }
            | Operator::AttrValue(_)
            | Operator::StringValue
            | Operator::IdLookup
            | Operator::IfThenElse
            | Operator::Mu
            | Operator::MuDelta => true,
            // "−" rows: these need their complete input to produce output.
            Operator::Distinct
            | Operator::Difference
            | Operator::Count { .. }
            | Operator::RowNum
            | Operator::Construct(_) => false,
            // Leaves never sit above a ∪.
            Operator::RecInput | Operator::Literal(_) | Operator::DocRoot(_) => false,
        }
    }

    /// Short operator name for plan rendering.
    pub fn name(&self) -> String {
        match self {
            Operator::RecInput => "rec-input".into(),
            Operator::Literal(_) => "literal".into(),
            Operator::DocRoot(uri) => format!("doc({uri})"),
            Operator::Project(_) => "π".into(),
            Operator::Select { column, value } => format!("σ[{column}='{value}']"),
            Operator::Join { left, right } => format!("⋈[{left}={right}]"),
            Operator::Cross => "×".into(),
            Operator::Distinct => "δ".into(),
            Operator::Union => "∪".into(),
            Operator::Difference => "\\".into(),
            Operator::Count { .. } => "count".into(),
            Operator::Fun { kind, .. } => format!("⊚{kind:?}"),
            Operator::RowTag => "#".into(),
            Operator::RowNum => "ϱ".into(),
            Operator::Step { axis, test } => format!("{}::{}", axis.name(), test),
            Operator::AttrValue(name) => format!("@{name}"),
            Operator::StringValue => "string()".into(),
            Operator::IdLookup => "id()".into(),
            Operator::IfThenElse => "if".into(),
            Operator::Construct(name) => format!("ε<{name}>"),
            Operator::Mu => "µ".into(),
            Operator::MuDelta => "µ∆".into(),
        }
    }
}

/// One node of the plan DAG: an operator plus its input plan nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanNode {
    /// The operator.
    pub op: Operator,
    /// Indices of the input nodes (0, 1 or 2 of them).
    pub inputs: Vec<PlanNodeId>,
}

/// A DAG-shaped algebraic plan, stored as an arena of [`PlanNode`]s with a
/// designated root.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    root: Option<PlanNodeId>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Add an operator with the given inputs; returns its id.
    pub fn add(&mut self, op: Operator, inputs: Vec<PlanNodeId>) -> PlanNodeId {
        let id = self.nodes.len();
        self.nodes.push(PlanNode { op, inputs });
        id
    }

    /// Designate `id` as the plan root.
    pub fn set_root(&mut self, id: PlanNodeId) {
        self.root = Some(id);
    }

    /// The root node id.
    pub fn root(&self) -> Option<PlanNodeId> {
        self.root
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the plan holds no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: PlanNodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PlanNodeId, &PlanNode)> {
        self.nodes.iter().enumerate()
    }

    /// A structural fingerprint of the plan: equal plans hash equal,
    /// different plans almost surely differ.  The executor keys its
    /// rec-independent static cache on this (plan node ids are arena
    /// indices, so tables cached for one plan must never serve another);
    /// the hash walks the arena directly, with no intermediate rendering.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.nodes.hash(&mut hasher);
        self.root.hash(&mut hasher);
        hasher.finish()
    }

    /// All node ids whose operator is [`Operator::RecInput`].
    pub fn rec_inputs(&self) -> Vec<PlanNodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.op, Operator::RecInput))
            .map(|(id, _)| id)
            .collect()
    }

    /// The ids of every node that (transitively) consumes one of the
    /// `sources` — i.e. the operators a `∪` placed at the sources must be
    /// pushed through.
    pub fn dependents_of(&self, sources: &[PlanNodeId]) -> Vec<PlanNodeId> {
        let mut tainted = vec![false; self.nodes.len()];
        for &s in sources {
            tainted[s] = true;
        }
        // Nodes are appended in construction order, so inputs always have
        // smaller ids than their consumers; a single forward pass suffices.
        let mut out = Vec::new();
        for (id, node) in self.iter() {
            if tainted[id] {
                continue;
            }
            if node.inputs.iter().any(|&i| tainted[i]) {
                tainted[id] = true;
                out.push(id);
            }
        }
        out
    }

    /// The **seed-column-aware µ/µ∆ form** of a recursion-body plan, used by
    /// the batched multi-source fixpoint driver
    /// ([`Executor::run_fixpoint_batched`](crate::Executor::run_fixpoint_batched)):
    /// the recursion input becomes a two-column `(`[`SEED_COLUMN`]`, item)`
    /// relation and every rec-dependent projection is rewritten to carry the
    /// seed column through, so each output row still names the seed it
    /// originated from.
    ///
    /// Returns `None` when the plan is not *seed-local* — when some
    /// rec-dependent operator could mix rows of different seeds (an
    /// aggregation, a row numbering, a conditional on a rec-dependent
    /// condition, a join of two rec-dependent arms, a set operation between
    /// a rec-dependent and a rec-independent arm) or when the plan
    /// constructs nodes (batching would merge the per-seed fresh
    /// identities).  For a seed-local plan, running the body over the union
    /// of per-seed rows and regrouping by the seed column is exactly the
    /// per-seed evaluation — the structural fact the batched ≡ per-seed
    /// property test exercises.
    pub fn seed_carried(&self) -> Option<Plan> {
        let root = self.root?;
        let mut dependent = vec![false; self.nodes.len()];
        for id in self.rec_inputs() {
            dependent[id] = true;
        }
        for id in self.dependents_of(&self.rec_inputs()) {
            dependent[id] = true;
        }
        // A rec-independent root means the body ignores its input: every
        // seed would compute the same constant set, and the output would
        // carry no seed column to group by.  Not worth batching.
        if !dependent[root] {
            return None;
        }
        for (id, node) in self.iter() {
            // Constructors create fresh node identities per *run*; one
            // batched run must not merge the distinct identities N per-seed
            // runs would create.  Nested fixpoints re-drive their own runs
            // and drop every column but `item`.  Both disqualify the plan
            // wherever they appear.
            if matches!(
                node.op,
                Operator::Construct(_) | Operator::Mu | Operator::MuDelta
            ) {
                return None;
            }
            if !dependent[id] {
                continue;
            }
            let seed_local = match &node.op {
                // Per-row operators (and set operators over full rows):
                // an output row derives from exactly one input row, so the
                // carried seed column stays attached to it.
                Operator::RecInput
                | Operator::Project(_)
                | Operator::Select { .. }
                | Operator::Distinct
                | Operator::Step { .. }
                | Operator::AttrValue(_)
                | Operator::StringValue
                | Operator::IdLookup
                | Operator::Fun { .. } => true,
                // ∪ / ∖ over `(seed, item)` rows are the per-seed set
                // operations — but only when both arms carry the seed
                // column (a rec-independent arm has no seed to group by).
                Operator::Union | Operator::Difference => node.inputs.iter().all(|&i| dependent[i]),
                // A join against rec-independent data carries the one seed
                // column through; joining two rec-dependent arms would pair
                // rows of *different* seeds.
                Operator::Join { .. } | Operator::Cross => {
                    node.inputs.iter().filter(|&&i| dependent[i]).count() <= 1
                }
                // The branch taken must not depend on the recursion input
                // (a rec-dependent condition aggregates over all seeds at
                // once), and both branches must carry the seed column.
                Operator::IfThenElse => {
                    !dependent[node.inputs[0]]
                        && dependent[node.inputs[1]]
                        && dependent[node.inputs[2]]
                }
                // Aggregation and row numbering look at the whole input
                // relation — rows of every seed at once.
                Operator::Count { .. } | Operator::RowTag | Operator::RowNum => false,
                // Leaves are never rec-dependent; constructors and nested
                // fixpoints were rejected above.
                Operator::Literal(_)
                | Operator::DocRoot(_)
                | Operator::Construct(_)
                | Operator::Mu
                | Operator::MuDelta => false,
            };
            if !seed_local {
                return None;
            }
        }
        let mut out = self.clone();
        for (id, node) in out.nodes.iter_mut().enumerate() {
            if dependent[id] {
                if let Operator::Project(renames) = &mut node.op {
                    renames.insert(0, (SEED_COLUMN.to_string(), SEED_COLUMN.to_string()));
                }
            }
        }
        Some(out)
    }

    /// `true` when any operator of the plan is an [`Operator::IdLookup`].
    /// Such plans resolve `id()` against one context document per run; the
    /// batched dispatcher uses this to insist that all seeds of a batch
    /// live in the same document (per-seed runs follow each seed's own).
    pub fn contains_id_lookup(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.op, Operator::IdLookup))
    }

    /// `true` when any operator of the plan is an [`Operator::Construct`].
    /// Construction mints fresh node identities — the one operator that
    /// *mutates* the store — so such plans cannot be sharded across threads
    /// over a shared store view; the parallel batched driver checks this
    /// and falls back to the sequential path.
    pub fn contains_construct(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.op, Operator::Construct(_)))
    }

    /// Render the plan as an indented tree rooted at the plan root (shared
    /// sub-DAGs are printed once per reference).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root {
            self.render_node(root, 0, &mut out);
        }
        out
    }

    fn render_node(&self, id: PlanNodeId, indent: usize, out: &mut String) {
        let node = &self.nodes[id];
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&node.op.name());
        out.push('\n');
        for &input in &node.inputs {
            self.render_node(input, indent + 1, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushability_matches_table_1() {
        assert!(Operator::Project(vec![]).union_pushable());
        assert!(Operator::Select {
            column: "item".into(),
            value: "x".into()
        }
        .union_pushable());
        assert!(Operator::Join {
            left: "a".into(),
            right: "b".into()
        }
        .union_pushable());
        assert!(Operator::Cross.union_pushable());
        assert!(Operator::Union.union_pushable());
        assert!(Operator::RowTag.union_pushable());
        assert!(Operator::Step {
            axis: Axis::Child,
            test: NodeTest::AnyElement
        }
        .union_pushable());
        assert!(Operator::Mu.union_pushable());
        assert!(Operator::MuDelta.union_pushable());

        assert!(!Operator::Distinct.union_pushable());
        assert!(!Operator::Difference.union_pushable());
        assert!(!Operator::Count { group_by: None }.union_pushable());
        assert!(!Operator::RowNum.union_pushable());
        assert!(!Operator::Construct("a".into()).union_pushable());
    }

    #[test]
    fn dependents_follow_the_dag() {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let doc = plan.add(Operator::DocRoot("d.xml".into()), vec![]);
        let step = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::AnyElement,
            },
            vec![rec],
        );
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![step, doc],
        );
        plan.set_root(join);

        let dependents = plan.dependents_of(&[rec]);
        assert_eq!(dependents, vec![step, join]);
        // The doc scan is independent of the recursion input.
        assert!(!dependents.contains(&doc));
        assert_eq!(plan.rec_inputs(), vec![rec]);
        assert!(plan.render().contains("⋈"));
    }

    #[test]
    fn seed_carried_rewrites_projections_and_rejects_mixers() {
        // A step chain with a predicate-style projection: batchable, and the
        // rec-dependent projections gain the seed column.
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let step = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::AnyElement,
            },
            vec![rec],
        );
        let keep = plan.add(
            Operator::Project(vec![
                ("node".into(), "item".into()),
                ("item".into(), "item".into()),
            ]),
            vec![step],
        );
        let attr = plan.add(Operator::AttrValue("code".into()), vec![keep]);
        let select = plan.add(
            Operator::Select {
                column: "item".into(),
                value: "c1".into(),
            },
            vec![attr],
        );
        let back = plan.add(
            Operator::Project(vec![("item".into(), "node".into())]),
            vec![select],
        );
        plan.set_root(back);
        let carried = plan.seed_carried().expect("seed-local plan batches");
        for id in [keep, back] {
            let Operator::Project(renames) = &carried.node(id).op else {
                panic!("projection expected");
            };
            assert_eq!(
                renames[0],
                (SEED_COLUMN.to_string(), SEED_COLUMN.to_string())
            );
        }
        // The rewrite changes the plan, so the fingerprints differ (the
        // executor's static cache must not confuse the two forms).
        assert_ne!(plan.fingerprint(), carried.fingerprint());

        // A rec-dependent aggregation mixes rows across seeds.
        let mut counted = Plan::new();
        let rec = counted.add(Operator::RecInput, vec![]);
        let count = counted.add(Operator::Count { group_by: None }, vec![rec]);
        counted.set_root(count);
        assert!(counted.seed_carried().is_none());

        // A union with a rec-independent arm has no seed column to carry.
        let mut mixed = Plan::new();
        let rec = mixed.add(Operator::RecInput, vec![]);
        let step = mixed.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::AnyElement,
            },
            vec![rec],
        );
        let lit = mixed.add(Operator::Literal(vec!["x".into()]), vec![]);
        let union = mixed.add(Operator::Union, vec![step, lit]);
        mixed.set_root(union);
        assert!(mixed.seed_carried().is_none());

        // A rec-independent root ignores its seeds entirely.
        let mut constant = Plan::new();
        let _rec = constant.add(Operator::RecInput, vec![]);
        let doc = constant.add(Operator::DocRoot("d.xml".into()), vec![]);
        constant.set_root(doc);
        assert!(constant.seed_carried().is_none());

        // Constructors create per-run identities; batching would merge them.
        let mut constructed = Plan::new();
        let rec = constructed.add(Operator::RecInput, vec![]);
        let cons = constructed.add(Operator::Construct("a".into()), vec![rec]);
        constructed.set_root(cons);
        assert!(constructed.seed_carried().is_none());
        assert!(!constructed.contains_id_lookup());
    }

    #[test]
    fn render_shows_operator_tree() {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let count = plan.add(Operator::Count { group_by: None }, vec![rec]);
        plan.set_root(count);
        let rendered = plan.render();
        assert!(rendered.starts_with("count"));
        assert!(rendered.contains("rec-input"));
    }
}
