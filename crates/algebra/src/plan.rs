//! Plan DAGs over the Table-1 algebra dialect.

use std::fmt;
use std::hash::{Hash, Hasher};

use xqy_xdm::{Axis, NodeTest};

/// Index of a node inside a [`Plan`]'s arena.
pub type PlanNodeId = usize;

/// A comparison / arithmetic kind for the generic `⊚` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunKind {
    /// Equality comparison.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Greater-than.
    Gt,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
}

/// The relational algebra operators of Table 1 in the paper.
///
/// Every variant documents whether a `∪` placed below it may be pushed up
/// through it (the "Push?" column of Table 1); see
/// [`Operator::union_pushable`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operator {
    /// The recursion variable's input relation (the `$x` leaf of a recursion
    /// body plan).  This is where the `∪` of the distributivity check is
    /// initially placed.
    RecInput,
    /// A literal relation (constant table), e.g. the empty sequence `()` or
    /// a string constant.
    Literal(Vec<String>),
    /// Scan of a document registered under a URI; produces the document's
    /// root node.
    DocRoot(String),
    /// π — projection onto (and renaming of) columns.
    Project(Vec<(String, String)>),
    /// σ — selection: keep rows whose column equals the given string.
    Select {
        /// Column inspected.
        column: String,
        /// Literal the column is compared against.
        value: String,
    },
    /// ⋈ — join on equality between one column of each input.
    Join {
        /// Column of the left input.
        left: String,
        /// Column of the right input.
        right: String,
    },
    /// × — Cartesian product.
    Cross,
    /// δ — duplicate elimination.
    Distinct,
    /// ∪ — union.
    Union,
    /// \ — difference.
    Difference,
    /// count — aggregation (optionally grouped); blocks union push-up.
    Count {
        /// Optional grouping column.
        group_by: Option<String>,
    },
    /// ⊚ — generic arithmetic/comparison operator over two columns.
    Fun {
        /// Operation kind.
        kind: FunKind,
        /// Left operand column.
        left: String,
        /// Right operand column.
        right: String,
    },
    /// # — unique row tagging.
    RowTag,
    /// ϱ — ordered row numbering; blocks union push-up.
    RowNum,
    /// XPath step join `α::n` along an axis with a node test.
    Step {
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
    },
    /// Attribute-value access: extend node rows with the string value of the
    /// named attribute (rows without the attribute are dropped).
    AttrValue(String),
    /// String-value access: extend node rows with their string value.
    StringValue,
    /// ID lookup join (the `id ref ⋈` micro-plan of Figure 9(a)): map a
    /// column of ID strings to the element nodes carrying those IDs.
    IdLookup,
    /// Conditional: inputs are (condition, then-branch, else-branch).  The
    /// condition's effective-boolean-value aggregation is represented by a
    /// `Count` wrapped around the condition plan by the compiler, so the
    /// conditional node itself lets a `∪` pass (distributing a union into
    /// both branches is sound when the condition does not change).
    IfThenElse,
    /// ε — node constructor; blocks union push-up (fresh identities).
    Construct(String),
    /// µ — the Naïve fixpoint operator: input 0 is the seed plan, input 1 the
    /// recursion body plan (whose `RecInput` leaf is fed back each round).
    Mu,
    /// µ∆ — the Delta fixpoint operator (same inputs as µ).
    MuDelta,
}

impl Operator {
    /// The "Push?" column of Table 1: may a `∪` directly below this operator
    /// be pushed up through it?
    pub fn union_pushable(&self) -> bool {
        match self {
            // ⊙ / ⊗ rows of Table 1.
            Operator::Project(_)
            | Operator::Select { .. }
            | Operator::Join { .. }
            | Operator::Cross
            | Operator::Union
            | Operator::Fun { .. }
            | Operator::RowTag
            | Operator::Step { .. }
            | Operator::AttrValue(_)
            | Operator::StringValue
            | Operator::IdLookup
            | Operator::IfThenElse
            | Operator::Mu
            | Operator::MuDelta => true,
            // "−" rows: these need their complete input to produce output.
            Operator::Distinct
            | Operator::Difference
            | Operator::Count { .. }
            | Operator::RowNum
            | Operator::Construct(_) => false,
            // Leaves never sit above a ∪.
            Operator::RecInput | Operator::Literal(_) | Operator::DocRoot(_) => false,
        }
    }

    /// Short operator name for plan rendering.
    pub fn name(&self) -> String {
        match self {
            Operator::RecInput => "rec-input".into(),
            Operator::Literal(_) => "literal".into(),
            Operator::DocRoot(uri) => format!("doc({uri})"),
            Operator::Project(_) => "π".into(),
            Operator::Select { column, value } => format!("σ[{column}='{value}']"),
            Operator::Join { left, right } => format!("⋈[{left}={right}]"),
            Operator::Cross => "×".into(),
            Operator::Distinct => "δ".into(),
            Operator::Union => "∪".into(),
            Operator::Difference => "\\".into(),
            Operator::Count { .. } => "count".into(),
            Operator::Fun { kind, .. } => format!("⊚{kind:?}"),
            Operator::RowTag => "#".into(),
            Operator::RowNum => "ϱ".into(),
            Operator::Step { axis, test } => format!("{}::{}", axis.name(), test),
            Operator::AttrValue(name) => format!("@{name}"),
            Operator::StringValue => "string()".into(),
            Operator::IdLookup => "id()".into(),
            Operator::IfThenElse => "if".into(),
            Operator::Construct(name) => format!("ε<{name}>"),
            Operator::Mu => "µ".into(),
            Operator::MuDelta => "µ∆".into(),
        }
    }
}

/// One node of the plan DAG: an operator plus its input plan nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanNode {
    /// The operator.
    pub op: Operator,
    /// Indices of the input nodes (0, 1 or 2 of them).
    pub inputs: Vec<PlanNodeId>,
}

/// A DAG-shaped algebraic plan, stored as an arena of [`PlanNode`]s with a
/// designated root.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    root: Option<PlanNodeId>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Add an operator with the given inputs; returns its id.
    pub fn add(&mut self, op: Operator, inputs: Vec<PlanNodeId>) -> PlanNodeId {
        let id = self.nodes.len();
        self.nodes.push(PlanNode { op, inputs });
        id
    }

    /// Designate `id` as the plan root.
    pub fn set_root(&mut self, id: PlanNodeId) {
        self.root = Some(id);
    }

    /// The root node id.
    pub fn root(&self) -> Option<PlanNodeId> {
        self.root
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the plan holds no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: PlanNodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PlanNodeId, &PlanNode)> {
        self.nodes.iter().enumerate()
    }

    /// A structural fingerprint of the plan: equal plans hash equal,
    /// different plans almost surely differ.  The executor keys its
    /// rec-independent static cache on this (plan node ids are arena
    /// indices, so tables cached for one plan must never serve another);
    /// the hash walks the arena directly, with no intermediate rendering.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.nodes.hash(&mut hasher);
        self.root.hash(&mut hasher);
        hasher.finish()
    }

    /// All node ids whose operator is [`Operator::RecInput`].
    pub fn rec_inputs(&self) -> Vec<PlanNodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.op, Operator::RecInput))
            .map(|(id, _)| id)
            .collect()
    }

    /// The ids of every node that (transitively) consumes one of the
    /// `sources` — i.e. the operators a `∪` placed at the sources must be
    /// pushed through.
    pub fn dependents_of(&self, sources: &[PlanNodeId]) -> Vec<PlanNodeId> {
        let mut tainted = vec![false; self.nodes.len()];
        for &s in sources {
            tainted[s] = true;
        }
        // Nodes are appended in construction order, so inputs always have
        // smaller ids than their consumers; a single forward pass suffices.
        let mut out = Vec::new();
        for (id, node) in self.iter() {
            if tainted[id] {
                continue;
            }
            if node.inputs.iter().any(|&i| tainted[i]) {
                tainted[id] = true;
                out.push(id);
            }
        }
        out
    }

    /// Render the plan as an indented tree rooted at the plan root (shared
    /// sub-DAGs are printed once per reference).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root {
            self.render_node(root, 0, &mut out);
        }
        out
    }

    fn render_node(&self, id: PlanNodeId, indent: usize, out: &mut String) {
        let node = &self.nodes[id];
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&node.op.name());
        out.push('\n');
        for &input in &node.inputs {
            self.render_node(input, indent + 1, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushability_matches_table_1() {
        assert!(Operator::Project(vec![]).union_pushable());
        assert!(Operator::Select {
            column: "item".into(),
            value: "x".into()
        }
        .union_pushable());
        assert!(Operator::Join {
            left: "a".into(),
            right: "b".into()
        }
        .union_pushable());
        assert!(Operator::Cross.union_pushable());
        assert!(Operator::Union.union_pushable());
        assert!(Operator::RowTag.union_pushable());
        assert!(Operator::Step {
            axis: Axis::Child,
            test: NodeTest::AnyElement
        }
        .union_pushable());
        assert!(Operator::Mu.union_pushable());
        assert!(Operator::MuDelta.union_pushable());

        assert!(!Operator::Distinct.union_pushable());
        assert!(!Operator::Difference.union_pushable());
        assert!(!Operator::Count { group_by: None }.union_pushable());
        assert!(!Operator::RowNum.union_pushable());
        assert!(!Operator::Construct("a".into()).union_pushable());
    }

    #[test]
    fn dependents_follow_the_dag() {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let doc = plan.add(Operator::DocRoot("d.xml".into()), vec![]);
        let step = plan.add(
            Operator::Step {
                axis: Axis::Child,
                test: NodeTest::AnyElement,
            },
            vec![rec],
        );
        let join = plan.add(
            Operator::Join {
                left: "item".into(),
                right: "item".into(),
            },
            vec![step, doc],
        );
        plan.set_root(join);

        let dependents = plan.dependents_of(&[rec]);
        assert_eq!(dependents, vec![step, join]);
        // The doc scan is independent of the recursion input.
        assert!(!dependents.contains(&doc));
        assert_eq!(plan.rec_inputs(), vec![rec]);
        assert!(plan.render().contains("⋈"));
    }

    #[test]
    fn render_shows_operator_tree() {
        let mut plan = Plan::new();
        let rec = plan.add(Operator::RecInput, vec![]);
        let count = plan.add(Operator::Count { group_by: None }, vec![rec]);
        plan.set_root(count);
        let rendered = plan.render();
        assert!(rendered.starts_with("count"));
        assert!(rendered.contains("rec-input"));
    }
}
